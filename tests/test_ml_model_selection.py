"""Unit tests for splitting utilities and the few-shot protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    cross_val_f1,
    sample_few_shot,
    stratified_kfold_indices,
    train_test_split,
)
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.errors import ValidationError


class TestTrainTestSplit:
    def test_sizes(self, blob_data):
        X, y, _, _ = blob_data
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(X_te) == pytest.approx(0.25 * len(X), abs=2)
        assert len(X_tr) + len(X_te) == len(X)

    def test_stratified_keeps_all_classes(self, blob_data):
        X, y, _, _ = blob_data
        _, _, _, y_te = train_test_split(X, y, test_size=0.2, stratify=True, random_state=0)
        assert set(y_te.tolist()) == set(y.tolist())

    def test_deterministic(self, blob_data):
        X, y, _, _ = blob_data
        a = train_test_split(X, y, random_state=1)[1]
        b = train_test_split(X, y, random_state=1)[1]
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_test_size(self, blob_data):
        X, y, _, _ = blob_data
        with pytest.raises(ValidationError):
            train_test_split(X, y, test_size=1.5)


class TestStratifiedKFold:
    def test_folds_partition(self):
        y = np.array([0, 0, 0, 1, 1, 1, 2, 2, 2, 2])
        splits = stratified_kfold_indices(y, n_splits=2, random_state=0)
        assert len(splits) == 2
        test_union = np.sort(np.concatenate([te for _, te in splits]))
        np.testing.assert_array_equal(test_union, np.arange(10))

    def test_train_test_disjoint(self):
        y = np.arange(12) % 3
        for train, test in stratified_kfold_indices(y, n_splits=3, random_state=0):
            assert len(np.intersect1d(train, test)) == 0

    def test_rejects_one_split(self):
        with pytest.raises(ValidationError):
            stratified_kfold_indices(np.zeros(4), n_splits=1)


class TestSampleFewShot:
    def test_exact_counts(self, blob_data):
        X, y, _, _ = blob_data
        X_few, y_few, idx = sample_few_shot(X, y, shots=3, random_state=0)
        assert len(X_few) == 3 * len(set(y.tolist()))
        for label in set(y.tolist()):
            assert np.sum(y_few == label) == 3

    def test_rare_class_contributes_everything(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0] * 8 + [1] * 2)
        _, y_few, _ = sample_few_shot(X, y, shots=5, random_state=0)
        assert np.sum(y_few == 1) == 2
        assert np.sum(y_few == 0) == 5

    def test_indices_consistent(self, blob_data):
        X, y, _, _ = blob_data
        X_few, y_few, idx = sample_few_shot(X, y, shots=2, random_state=0)
        np.testing.assert_array_equal(X[idx], X_few)
        np.testing.assert_array_equal(y[idx], y_few)

    def test_rejects_zero_shots(self, blob_data):
        X, y, _, _ = blob_data
        with pytest.raises(ValidationError):
            sample_few_shot(X, y, shots=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 1000))
    def test_counts_property(self, shots, seed):
        gen = np.random.default_rng(seed)
        y = gen.integers(0, 3, 60)
        X = gen.standard_normal((60, 2))
        _, y_few, idx = sample_few_shot(X, y, shots=shots, random_state=seed)
        assert len(np.unique(idx)) == len(idx)  # no duplicates
        for label in np.unique(y):
            assert np.sum(y_few == label) == min(shots, np.sum(y == label))


class TestCrossValF1:
    def test_high_on_separable(self, blob_data):
        X, y, _, _ = blob_data
        score = cross_val_f1(
            lambda: DecisionTreeClassifier(random_state=0), X, y,
            n_splits=3, random_state=0,
        )
        assert score > 0.9
