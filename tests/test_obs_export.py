"""Tests for event logging and run-bundle export (repro.obs.export)."""

import json

import numpy as np
import pytest

from repro.obs.export import (
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    RunRecorder,
    get_event_log,
    run_dir_name,
    set_event_log,
)
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError


class TestEventLog:
    def test_emit_and_jsonl(self):
        log = EventLog()
        log.emit("fs.feature_decision", feature=3, p_value=0.01, variant=True)
        log.emit("drift.observe", jaccard=0.5)
        assert len(log) == 2
        lines = log.to_jsonl().splitlines()
        first = json.loads(lines[0])
        assert first == {
            "kind": "fs.feature_decision", "feature": 3,
            "p_value": 0.01, "variant": True,
        }
        assert json.loads(lines[1])["kind"] == "drift.observe"

    def test_numpy_values_serialize(self):
        log = EventLog()
        log.emit(
            "e",
            i=np.int64(4),
            f=np.float32(0.5),
            arr=np.array([1, 2]),
            b=np.bool_(True),
        )
        parsed = json.loads(log.to_jsonl())
        assert parsed == {"kind": "e", "i": 4, "f": 0.5, "arr": [1, 2], "b": True}

    def test_null_log_discards(self):
        log = NullEventLog()
        log.emit("anything", x=1)
        assert len(log) == 0 and not log.enabled

    def test_default_global_is_null(self):
        assert get_event_log() is NULL_EVENT_LOG

    def test_set_event_log_validates(self):
        with pytest.raises(ValidationError):
            set_event_log(42)


class TestRunDirName:
    def test_deterministic_sorted_and_none_skipped(self):
        name = run_dir_name("runtime", seed=0, dataset="5gc", preset=None)
        assert name == "runtime-dataset=5gc-seed=0"
        assert run_dir_name("counts") == "counts"


class TestRunRecorder:
    def test_requires_some_destination(self):
        with pytest.raises(ValidationError):
            RunRecorder()

    def test_installs_and_restores_globals(self, tmp_path):
        rec = RunRecorder(tmp_path / "run")
        with rec:
            assert get_tracer() is rec.tracer
            assert get_metrics() is rec.metrics
            assert get_event_log() is rec.events
        assert get_tracer() is not rec.tracer
        assert not get_metrics().enabled
        assert not get_event_log().enabled

    def test_writes_all_four_artifacts(self, tmp_path):
        run_dir = tmp_path / "runs" / "demo"
        with RunRecorder(run_dir, manifest={"seed": 3}) as rec:
            with rec.tracer.span("op", n=1):
                pass
            rec.metrics.counter("hits").inc(2)
            rec.events.emit("ping", ok=True)
        trace = json.loads((run_dir / "trace.json").read_text())
        assert trace["spans"][0]["name"] == "op"
        metrics = json.loads((run_dir / "metrics.json").read_text())
        assert metrics["hits"]["value"] == 2
        events = [
            json.loads(line)
            for line in (run_dir / "events.jsonl").read_text().splitlines()
        ]
        assert events == [{"kind": "ping", "ok": True}]
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest == {"seed": 3}

    def test_no_write_on_exception(self, tmp_path):
        run_dir = tmp_path / "boom"
        with pytest.raises(RuntimeError):
            with RunRecorder(run_dir):
                raise RuntimeError("fail")
        assert not run_dir.exists()
        # and the globals are still restored
        assert not get_metrics().enabled

    def test_standalone_metrics_path(self, tmp_path):
        path = tmp_path / "deep" / "metrics.json"
        with RunRecorder(metrics_path=path) as rec:
            rec.metrics.gauge("g").set(1.0)
        assert json.loads(path.read_text())["g"]["value"] == 1.0
        assert not (tmp_path / "trace.json").exists()
