"""Shared fixtures: tiny-but-structured datasets, cached per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    FiveGCConfig,
    FiveGIPCConfig,
    make_5gc,
    make_5gipc,
)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test (no cross-test coupling)."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_5gc():
    """A small 5GC benchmark shared (read-only) across tests."""
    return make_5gc(
        FiveGCConfig(n_source=480, n_target=360, feature_scale=0.15),
        random_state=0,
    )


@pytest.fixture(scope="session")
def tiny_5gipc():
    """A small 5GIPC benchmark shared (read-only) across tests."""
    return make_5gipc(
        FiveGIPCConfig(sample_scale=0.08, feature_scale=0.6), random_state=0
    )


@pytest.fixture(scope="session")
def tenant_root(tmp_path_factory, tiny_5gc):
    """Three tiny fitted tenant artifacts + the test matrix to score.

    Session-scoped because fitting pipelines dominates the serve-daemon
    tests' cost; treat the directory as read-only (copy bundles into a
    test-local tmp_path before mutating them).
    """
    from repro.core import FSGANPipeline, ReconstructionConfig
    from repro.core.artifacts import save_artifact
    from repro.ml import MLPClassifier

    root = tmp_path_factory.mktemp("tenants")
    X_few, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
    names = []
    for i in range(3):
        pipe = FSGANPipeline(
            lambda: MLPClassifier(hidden_sizes=(16,), epochs=8, random_state=i),
            reconstruction_config=ReconstructionConfig(
                strategy="gan", epochs=2, noise_dim=2, hidden_size=8),
            random_state=i,
        ).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        name = f"tenant-{i:02d}"
        save_artifact(pipe, str(root / f"{name}.npz"))
        names.append(name)
    return root, names, X_test


@pytest.fixture(scope="session")
def blob_data():
    """Well-separated 4-class Gaussian blobs: (X_train, y_train, X_test, y_test)."""
    gen = np.random.default_rng(7)
    centers = np.array(
        [[2.0, 0.0, 1.0, -1.0], [-2.0, 1.0, -1.0, 0.0],
         [0.0, -2.0, 2.0, 1.0], [1.0, 2.0, -2.0, -2.0]]
    )
    X_train, y_train, X_test, y_test = [], [], [], []
    for c, center in enumerate(centers):
        X_train.append(center + 0.4 * gen.standard_normal((40, 4)))
        y_train.extend([c] * 40)
        X_test.append(center + 0.4 * gen.standard_normal((15, 4)))
        y_test.extend([c] * 15)
    return (
        np.vstack(X_train),
        np.array(y_train),
        np.vstack(X_test),
        np.array(y_test),
    )


@pytest.fixture(scope="session")
def binary_blob_data(blob_data):
    """Two-class variant of the blob data."""
    X_train, y_train, X_test, y_test = blob_data
    return X_train, (y_train >= 2).astype(int), X_test, (y_test >= 2).astype(int)
