"""Tests for the wide-scale FS discovery paths (ISSUE 7 / ROADMAP item 4).

Covers the four tentpole optimisations — shared-memory fan-out (lifecycle
tested here, bit-identity in ``test_causal_engine.py``), candidate-pool
pruning with the exactness guarantee, budgeted/anytime search with
coverage, and the float32 statistics path with float64 borderline
verification — plus the synthetic wide generator and the ``--wide``
benchmark runner built on them.
"""

import numpy as np
import pytest

from repro.causal import FNodeDiscovery
from repro.causal.shm import (
    SHM_AVAILABLE,
    SharedMatrices,
    attach_arrays,
    create_shared_matrices,
)
from repro.core.config import FSConfig
from repro.core.feature_separation import FeatureSeparator
from repro.experiments.bench import make_wide_pair, run_bench_wide
from repro.utils.errors import ConfigurationError, ValidationError


@pytest.fixture(scope="module")
def scaled_pair(tiny_5gc):
    from repro.ml import MinMaxScaler

    X_few, _, _, _ = tiny_5gc.few_shot_split(10, random_state=0)
    scaler = MinMaxScaler().fit(tiny_5gc.X_source)
    return scaler.transform(tiny_5gc.X_source), scaler.transform(X_few)


@pytest.fixture(scope="module")
def baseline(scaled_pair):
    Xs, Xt = scaled_pair
    return FNodeDiscovery().discover(Xs, Xt)


class TestSharedMemoryLifecycle:
    pytestmark = pytest.mark.skipif(
        not SHM_AVAILABLE, reason="shared memory unavailable"
    )

    def test_roundtrip_is_exact_and_readonly(self, rng):
        arrays = {"Xs": rng.standard_normal((40, 7)), "Xt": rng.standard_normal((9, 7))}
        with SharedMatrices(arrays) as shared:
            attached = attach_arrays(shared.meta())
            for key, original in arrays.items():
                np.testing.assert_array_equal(attached[key], original)
                assert not attached[key].flags.writeable

    def test_close_unlinks_and_is_idempotent(self, rng):
        shared = SharedMatrices({"Xs": rng.standard_normal((5, 3))})
        name = shared.meta()["Xs"]["name"]
        shared.close()
        shared.close()  # second close must not raise
        with pytest.raises(FileNotFoundError):
            attach_arrays({"Xs": {"name": name, "shape": (5, 3), "dtype": "float64"}})

    def test_create_returns_handle_or_none(self, rng):
        shared = create_shared_matrices({"Xs": rng.standard_normal((5, 3))})
        assert shared is not None
        shared.close()

    def test_create_returns_none_when_unavailable(self, rng, monkeypatch):
        import repro.causal.shm as shm_mod

        monkeypatch.setattr(shm_mod, "SHM_AVAILABLE", False)
        assert create_shared_matrices({"Xs": rng.standard_normal((5, 3))}) is None

    def test_discovery_falls_back_when_shm_creation_fails(
        self, scaled_pair, baseline, monkeypatch
    ):
        import repro.causal.fnode as fnode_mod

        monkeypatch.setattr(
            fnode_mod, "create_shared_matrices", lambda arrays: None
        )
        Xs, Xt = scaled_pair
        result = FNodeDiscovery(n_jobs=2, use_shared_memory=True).discover(Xs, Xt)
        np.testing.assert_array_equal(baseline.p_values, result.p_values)
        assert baseline.n_tests == result.n_tests


class TestPruning:
    def test_exact_mode_preserves_variant_decisions(self, scaled_pair, baseline):
        Xs, Xt = scaled_pair
        for prune_k in (1, 2, 3):
            pruned = FNodeDiscovery(prune_k=prune_k, prune_exact=True).discover(
                Xs, Xt
            )
            np.testing.assert_array_equal(
                baseline.variant_indices, pruned.variant_indices
            )

    def test_exact_mode_on_wide_generator_across_seeds(self):
        for seed in range(3):
            Xs, Xt = make_wide_pair(72, random_state=seed)
            full = FNodeDiscovery().discover(Xs, Xt)
            pruned = FNodeDiscovery(prune_k=2, prune_exact=True).discover(Xs, Xt)
            np.testing.assert_array_equal(
                full.variant_indices, pruned.variant_indices
            )

    def test_approximate_mode_over_reports_only(self, scaled_pair, baseline):
        # skipping the fallback phase can only miss clearing subsets, so the
        # approximate variant set is a superset of the exact one
        Xs, Xt = scaled_pair
        approx = FNodeDiscovery(prune_k=1, prune_exact=False).discover(Xs, Xt)
        assert set(baseline.variant_indices) <= set(approx.variant_indices)

    def test_prune_k_validation(self):
        with pytest.raises(ValidationError):
            FNodeDiscovery(prune_k=0)


class TestBudgetedSearch:
    def test_variant_sets_shrink_monotonically_with_budget(self, scaled_pair):
        # more tests can only find more clearing subsets, so the variant set
        # at a larger budget is a subset of any smaller budget's
        Xs, Xt = scaled_pair
        previous = None
        for budget in (0, 10, 50, 200, 100000):
            result = FNodeDiscovery(budget=budget).discover(Xs, Xt)
            assert result.n_tests <= Xs.shape[1] + budget
            if previous is not None:
                assert set(result.variant_indices) <= set(previous.variant_indices)
            previous = result

    def test_unlimited_budget_matches_unbudgeted_decisions(
        self, scaled_pair, baseline
    ):
        Xs, Xt = scaled_pair
        result = FNodeDiscovery(budget=10**9).discover(Xs, Xt)
        np.testing.assert_array_equal(
            baseline.variant_indices, result.variant_indices
        )
        assert result.coverage == 1.0

    def test_coverage_reports_completed_fraction(self, scaled_pair):
        Xs, Xt = scaled_pair
        starved = FNodeDiscovery(budget=0).discover(Xs, Xt)
        assert starved.coverage == 0.0
        partial = FNodeDiscovery(budget=30).discover(Xs, Xt)
        assert 0.0 < partial.coverage < 1.0
        full = FNodeDiscovery().discover(Xs, Xt)
        assert full.coverage == 1.0

    def test_wall_clock_budget_runs_and_reports_coverage(self, scaled_pair):
        Xs, Xt = scaled_pair
        result = FNodeDiscovery(budget_seconds=120.0).discover(Xs, Xt)
        assert 0.0 <= result.coverage <= 1.0

    def test_budget_validation(self):
        with pytest.raises(ValidationError):
            FNodeDiscovery(budget=-1)
        with pytest.raises(ValidationError):
            FNodeDiscovery(budget_seconds=0.0)


class TestFloat32Path:
    def test_variant_sets_match_float64_across_seeds(self):
        for seed in range(4):
            Xs, Xt = make_wide_pair(64, random_state=seed)
            f64 = FNodeDiscovery(stats_dtype="float64").discover(Xs, Xt)
            f32 = FNodeDiscovery(stats_dtype="float32").discover(Xs, Xt)
            np.testing.assert_array_equal(f64.variant_indices, f32.variant_indices)

    def test_variant_sets_match_on_5gc(self, scaled_pair, baseline):
        Xs, Xt = scaled_pair
        f32 = FNodeDiscovery(stats_dtype="float32").discover(Xs, Xt)
        np.testing.assert_array_equal(baseline.variant_indices, f32.variant_indices)

    def test_borderline_pvalues_are_verified_in_float64(self, scaled_pair):
        from repro.causal.engine import CIEngine

        Xs, Xt = scaled_pair
        engine = CIEngine(Xs, Xt, stats_dtype="float32", verify_alpha=0.01)
        exact = CIEngine(Xs, Xt)
        ps32 = engine.marginal_pvalues()
        ps64 = exact.marginal_pvalues()
        near = np.abs(ps32 - 0.01) <= 0.005
        # inside the verification band the float32 path must return the
        # float64 answer exactly — that is the decision-equality mechanism
        np.testing.assert_array_equal(ps32[near], ps64[near])

    def test_stats_dtype_validation(self):
        from repro.causal.engine import CIEngine

        with pytest.raises(ValidationError):
            CIEngine(np.zeros((5, 2)), np.zeros((4, 2)), stats_dtype="float16")
        with pytest.raises(ValidationError):
            CIEngine(
                np.zeros((5, 2)), np.zeros((4, 2)),
                stats_dtype="float32", multi_rhs=True,
            )


class TestMultiRhsLegacyMode:
    def test_bit_identical_to_default_path(self, scaled_pair, baseline):
        Xs, Xt = scaled_pair
        legacy = FNodeDiscovery(multi_rhs=True).discover(Xs, Xt)
        np.testing.assert_array_equal(baseline.p_values, legacy.p_values)
        assert baseline.parent_sets == legacy.parent_sets
        assert baseline.n_tests == legacy.n_tests


class TestWideGenerator:
    def test_exact_width_and_determinism(self):
        for width in (1, 7, 8, 21, 96):
            Xs, Xt = make_wide_pair(width, random_state=3)
            assert Xs.shape[1] == Xt.shape[1] == width
            Xs2, Xt2 = make_wide_pair(width, random_state=3)
            np.testing.assert_array_equal(Xs, Xs2)
            np.testing.assert_array_equal(Xt, Xt2)

    def test_discovery_finds_parents_not_children(self):
        Xs, Xt = make_wide_pair(48, random_state=0)
        result = FNodeDiscovery().discover(Xs, Xt)
        variant = set(result.variant_indices.tolist())
        parents = set(range(0, 48, 8))
        # every drifted parent is an intervention target; its children are
        # separated by conditioning on it, so most must not be reported
        assert parents <= variant
        children = set(range(48)) - parents - {c for c in range(48) if c % 8 >= 6}
        assert len(variant & children) < len(children) / 2


class TestRunBenchWide:
    def test_record_shape_and_equivalence(self, tmp_path):
        out = tmp_path / "BENCH_fs.json"
        records = run_bench_wide(
            (24,), fs_rounds=1, n_jobs=1, out=str(out)
        )
        assert len(records) == 1
        record = records[0]
        assert record["dataset"] == "wide"
        assert record["preset"] == "24"
        assert record["equivalent"] is True
        assert record["coverage"] == 1.0
        assert record["before"]["fs_seconds"] > 0
        assert record["after"]["fs_seconds"] > 0
        import json

        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.bench.fs/v1"
        assert "wide/24/seed0" in doc["records"]


class TestFSConfigWideFields:
    def test_defaults_are_backwards_compatible(self):
        config = FSConfig()
        assert config.prune_k is None
        assert config.budget is None
        assert config.stats_dtype == "float64"
        assert config.use_shared_memory is True

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FSConfig(prune_k=0)
        with pytest.raises(ConfigurationError):
            FSConfig(budget=-5)
        with pytest.raises(ConfigurationError):
            FSConfig(budget_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            FSConfig(stats_dtype="float16")
        with pytest.raises(ConfigurationError, match="got 0"):
            FSConfig(n_jobs=0)
        with pytest.raises(ConfigurationError, match="got -3"):
            FSConfig(n_jobs=-3)

    def test_separator_passes_wide_settings_through(self, scaled_pair):
        Xs, Xt = scaled_pair
        sep = FeatureSeparator(
            FSConfig(prune_k=2, stats_dtype="float32", budget=100)
        ).fit(Xs, Xt)
        assert 0.0 <= sep.result_.coverage <= 1.0
        state = sep.state_dict()
        loaded = FeatureSeparator().load_state_dict(state)
        assert loaded.result_.coverage == sep.result_.coverage
