"""Unit tests for the causal graph structure and the PC algorithm."""

import numpy as np
import pytest

from repro.causal import CausalGraph, pc_algorithm, pc_skeleton
from repro.utils.errors import GraphError


class TestCausalGraph:
    def test_complete_graph_edge_count(self):
        graph = CausalGraph.complete(["a", "b", "c", "d"])
        assert graph.n_edges() == 6

    def test_add_remove(self):
        graph = CausalGraph(["a", "b"])
        graph.add_undirected_edge("a", "b")
        assert graph.has_edge("a", "b")
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")

    def test_orient(self):
        graph = CausalGraph(["a", "b"])
        graph.add_undirected_edge("a", "b")
        graph.orient("a", "b")
        assert graph.is_directed("a", "b")
        assert not graph.is_directed("b", "a")
        assert graph.parents("b") == {"a"}
        assert graph.children("a") == {"b"}

    def test_orient_missing_edge_fails(self):
        graph = CausalGraph(["a", "b"])
        with pytest.raises(GraphError):
            graph.orient("a", "b")

    def test_no_self_loops(self):
        graph = CausalGraph(["a"])
        with pytest.raises(GraphError):
            graph.add_undirected_edge("a", "a")

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphError):
            CausalGraph(["a", "a"])

    def test_unknown_node_rejected(self):
        graph = CausalGraph(["a"])
        with pytest.raises(GraphError):
            graph.neighbors("zz")

    def test_v_structure_orientation(self):
        # a - c - b with a, b nonadjacent and c not in sepset(a, b)
        graph = CausalGraph(["a", "b", "c"])
        graph.add_undirected_edge("a", "c")
        graph.add_undirected_edge("b", "c")
        graph.orient_v_structures({frozenset(("a", "b")): set()})
        assert graph.is_directed("a", "c")
        assert graph.is_directed("b", "c")

    def test_meek_rule_one(self):
        # c → a, a - b, c not adjacent to b  =>  a → b
        graph = CausalGraph(["a", "b", "c"])
        graph.add_undirected_edge("c", "a")
        graph.orient("c", "a")
        graph.add_undirected_edge("a", "b")
        graph.apply_meek_rules()
        assert graph.is_directed("a", "b")

    def test_to_networkx(self):
        graph = CausalGraph(["a", "b", "c"])
        graph.add_undirected_edge("a", "b")
        graph.add_undirected_edge("b", "c")
        graph.orient("b", "c")
        g = graph.to_networkx()
        assert g.has_edge("a", "b") and g.has_edge("b", "a")  # undirected pair
        assert g.has_edge("b", "c") and not g.has_edge("c", "b")


def chain_data(rng, n=1500):
    """x0 → x1 → x2 linear-Gaussian chain."""
    x0 = rng.standard_normal(n)
    x1 = 0.9 * x0 + 0.4 * rng.standard_normal(n)
    x2 = 0.9 * x1 + 0.4 * rng.standard_normal(n)
    return np.column_stack([x0, x1, x2])


class TestPCAlgorithm:
    def test_skeleton_of_chain(self, rng):
        data = chain_data(rng)
        graph, sepsets, n_tests = pc_skeleton(data, ["x0", "x1", "x2"], alpha=0.01)
        assert graph.has_edge("x0", "x1")
        assert graph.has_edge("x1", "x2")
        assert not graph.has_edge("x0", "x2")
        assert sepsets[frozenset(("x0", "x2"))] == {"x1"}
        assert n_tests > 0

    def test_collider_orientation(self, rng):
        n = 2000
        x0 = rng.standard_normal(n)
        x2 = rng.standard_normal(n)
        x1 = x0 + x2 + 0.3 * rng.standard_normal(n)
        data = np.column_stack([x0, x1, x2])
        result = pc_algorithm(data, ["x0", "x1", "x2"], alpha=0.01)
        assert result.graph.is_directed("x0", "x1")
        assert result.graph.is_directed("x2", "x1")

    def test_independent_nodes_no_edges(self, rng):
        data = rng.standard_normal((800, 4))
        result = pc_algorithm(data, alpha=0.001)
        assert result.graph.n_edges() <= 1  # allow one false positive

    def test_exogenous_orients_outward(self, rng):
        n = 1500
        f = rng.standard_normal(n)
        x = 0.8 * f + 0.5 * rng.standard_normal(n)
        data = np.column_stack([x, f])
        result = pc_algorithm(
            data, ["x", "F"], alpha=0.01, exogenous={"F"}
        )
        assert result.graph.is_directed("F", "x")

    def test_max_cond_size_limits_tests(self, rng):
        data = chain_data(rng)
        _, _, n_small = pc_skeleton(data, list("abc"), max_cond_size=0)
        _, _, n_large = pc_skeleton(data, list("abc"), max_cond_size=1)
        assert n_small <= n_large
