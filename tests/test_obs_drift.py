"""Streaming drift observability (repro.obs.drift) and plan integration."""

import numpy as np
import pytest

from repro.core import FSGANPipeline, ReconstructionConfig
from repro.ml import MLPClassifier
from repro.obs.drift import FeatureDriftTracker
from repro.obs.export import EventLog, set_event_log
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.utils.errors import ValidationError


@pytest.fixture()
def collectors():
    """A live registry + event log installed for the duration of one test."""
    registry = MetricsRegistry()
    events = EventLog()
    prev_reg = set_metrics(registry)
    prev_log = set_event_log(events)
    try:
        yield registry, events
    finally:
        set_metrics(prev_reg)
        set_event_log(prev_log)


def _reference(rng, n_rows=2000, n_features=4):
    return rng.standard_normal((n_rows, n_features))


class TestFeatureDriftTracker:
    def test_warmup_returns_none(self, rng, collectors):
        tracker = FeatureDriftTracker(_reference(rng), min_rows=256)
        assert tracker.update(rng.standard_normal((100, 4))) is None
        assert tracker.last_scores is None

    def test_stable_stream_stays_quiet(self, rng, collectors):
        registry, events = collectors
        tracker = FeatureDriftTracker(_reference(rng), min_rows=256)
        for _ in range(8):
            tracker.update(rng.standard_normal((128, 4)))
        assert not tracker.alarmed
        assert tracker.last_scores["psi_max"] < 0.1
        assert not [e for e in events.events if e["kind"] == "drift.alarm"]
        assert registry.gauge("serve.psi_max").value < 0.1

    def test_synthetic_drift_alarms_within_k_batches(self, rng, collectors):
        """The PR's acceptance schedule: stable traffic, then a sustained
        mean shift — the alarm must fire within K batches of onset."""
        registry, events = collectors
        tracker = FeatureDriftTracker(
            _reference(rng), min_rows=256, window_rows=1024
        )
        for _ in range(6):  # pre-drift: in-distribution traffic
            tracker.update(rng.standard_normal((128, 4)))
        assert not tracker.alarmed
        onset = tracker.batches
        K = 12
        for _ in range(K):  # drift onset: feature 2 shifts by 2 sigma
            batch = rng.standard_normal((128, 4))
            batch[:, 2] += 2.0
            tracker.update(batch)
            if tracker.alarmed:
                break
        assert tracker.alarmed, f"no alarm within {K} batches of onset"
        assert tracker.batches - onset <= K

        alarms = [e for e in events.events if e["kind"] == "drift.alarm"]
        assert len(alarms) == 1
        assert alarms[0]["source"] == "serve"
        assert 2 in alarms[0]["features"]
        assert alarms[0]["psi_max"] > 0.25

        # the gauges carry the live scores
        assert registry.gauge("serve.psi_max").value > 0.25
        assert registry.gauge("serve.ks_max").value > 0.0
        assert registry.gauge("serve.psi", feature=2).value > 0.25
        assert registry.counter("serve.drift_alarms_total").value == 1

    def test_alarm_clears_on_falling_edge(self, rng, collectors):
        _, events = collectors
        tracker = FeatureDriftTracker(
            _reference(rng), min_rows=128, window_rows=256
        )
        for _ in range(4):
            batch = rng.standard_normal((128, 4))
            batch[:, 0] += 3.0
            tracker.update(batch)
        assert tracker.alarmed
        # window decays fast (256 rows), so clean traffic clears the alarm
        for _ in range(40):
            tracker.update(rng.standard_normal((128, 4)))
            if not tracker.alarmed:
                break
        assert not tracker.alarmed
        kinds = [e["kind"] for e in events.events]
        assert kinds.count("drift.alarm") == 1
        assert kinds.count("drift.clear") == 1

    def test_silent_without_collectors(self, rng):
        # no registry / event log installed: updates still score, nothing
        # is published, nothing raises
        tracker = FeatureDriftTracker(_reference(rng), min_rows=128)
        batch = rng.standard_normal((256, 4))
        batch[:, 1] += 3.0
        scores = tracker.update(batch)
        assert scores["alarmed"]
        assert tracker.alarmed

    def test_validation(self, rng):
        ref = _reference(rng)
        with pytest.raises(ValidationError):
            FeatureDriftTracker(ref, psi_threshold=0.0)
        with pytest.raises(ValidationError):
            FeatureDriftTracker(ref, min_rows=0)
        with pytest.raises(ValidationError):
            FeatureDriftTracker(ref, min_rows=512, window_rows=256)


def _fit(tiny_5gc):
    X_few, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
    pipe = FSGANPipeline(
        lambda: MLPClassifier(hidden_sizes=(16,), epochs=8, random_state=0),
        reconstruction_config=ReconstructionConfig(
            strategy="gan", epochs=2, noise_dim=2, hidden_size=8),
        random_state=0,
    ).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
    return pipe, X_test


class TestPlanDriftIntegration:
    def test_compile_track_drift_attaches_tracker(self, tiny_5gc):
        pipe, X_test = _fit(tiny_5gc)
        plan = pipe.compile(track_drift=True,
                            drift_options={"min_rows": 32})
        assert plan.drift_tracker is not None
        assert plan.drift_tracker.n_features == X_test.shape[1]
        plan.predict_proba(X_test[:64])
        assert plan.drift_tracker.batches == 1
        assert plan.drift_tracker.last_scores is not None

    def test_tracking_preserves_bit_identity(self, tiny_5gc):
        pipe, X_test = _fit(tiny_5gc)
        plan = pipe.compile(track_drift=True,
                            drift_options={"min_rows": 32})
        expected = pipe.predict_proba(X_test[:48])
        np.testing.assert_array_equal(plan.predict_proba(X_test[:48]),
                                      expected)

    def test_released_cache_falls_back_to_persisted_reference(self, tiny_5gc):
        pipe, X_test = _fit(tiny_5gc)
        pipe.release_training_cache()
        plan = pipe.compile(track_drift=True, drift_options={"min_rows": 32})
        assert plan.drift_tracker is not None
        plan.predict_proba(X_test[:64])
        assert plan.drift_tracker.last_scores is not None

    def test_compile_track_drift_needs_some_reference(self, tiny_5gc):
        pipe, _ = _fit(tiny_5gc)
        pipe.release_training_cache()
        pipe.drift_reference_ = None  # a legacy artifact restores to this
        with pytest.raises(ValidationError, match="drift reference"):
            pipe.compile(track_drift=True)

    def test_instrumented_transform_matches_fast_path(self, tiny_5gc):
        # the metrics-enabled branch of InferencePlan.transform must not
        # perturb the numbers the fast path produces
        pipe, X_test = _fit(tiny_5gc)
        expected = pipe.compile().predict_proba(X_test[:32])
        plan = pipe.compile()
        previous = set_metrics(MetricsRegistry())
        try:
            got = plan.predict_proba(X_test[:32])
        finally:
            set_metrics(previous)
        np.testing.assert_array_equal(got, expected)
