"""Unit tests for the Gaussian mixture model and FastICA."""

import numpy as np
import pytest

from repro.ml import FastICA, GaussianMixture, split_domains_by_gmm
from repro.utils.errors import NotFittedError, ValidationError


def two_cluster_data(rng, n1=200, n2=80, d=3):
    a = rng.standard_normal((n1, d)) + 5.0
    b = rng.standard_normal((n2, d)) - 5.0
    return np.vstack([a, b])


class TestGaussianMixture:
    def test_recovers_two_clusters(self, rng):
        X = two_cluster_data(rng)
        gmm = GaussianMixture(2, random_state=0).fit(X)
        labels = gmm.predict(X)
        # each true cluster maps to a single component
        assert len(set(labels[:200])) == 1
        assert len(set(labels[200:])) == 1
        assert labels[0] != labels[-1]

    def test_means_near_truth(self, rng):
        X = two_cluster_data(rng)
        gmm = GaussianMixture(2, random_state=0).fit(X)
        means = np.sort(gmm.means_[:, 0])
        np.testing.assert_allclose(means, [-5.0, 5.0], atol=0.5)

    def test_weights_reflect_sizes(self, rng):
        X = two_cluster_data(rng, n1=300, n2=100)
        gmm = GaussianMixture(2, random_state=0).fit(X)
        np.testing.assert_allclose(np.sort(gmm.weights_), [0.25, 0.75], atol=0.05)

    def test_posterior_rows_sum_to_one(self, rng):
        X = two_cluster_data(rng)
        gmm = GaussianMixture(2, random_state=0).fit(X)
        np.testing.assert_allclose(gmm.predict_proba(X).sum(axis=1), 1.0)

    def test_score_higher_on_fit_data(self, rng):
        X = two_cluster_data(rng)
        gmm = GaussianMixture(2, random_state=0).fit(X)
        assert gmm.score(X) > gmm.score(X + 20.0)

    def test_sampling_matches_means(self, rng):
        X = two_cluster_data(rng)
        gmm = GaussianMixture(2, random_state=0).fit(X)
        samples, comps = gmm.sample(500, random_state=1)
        assert samples.shape == (500, 3)
        assert set(comps.tolist()) == {0, 1}

    def test_needs_enough_samples(self):
        with pytest.raises(ValidationError):
            GaussianMixture(5).fit(np.zeros((3, 2)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GaussianMixture(2).predict(np.zeros((2, 2)))

    def test_single_component_degenerates_to_gaussian(self, rng):
        X = rng.standard_normal((100, 2)) + 3
        gmm = GaussianMixture(1, random_state=0).fit(X)
        np.testing.assert_allclose(gmm.means_[0], X.mean(axis=0), atol=1e-6)


class TestSplitDomains:
    def test_largest_cluster_first(self, rng):
        X = two_cluster_data(rng, n1=300, n2=100)
        groups = split_domains_by_gmm(X, n_domains=2, random_state=0)
        assert len(groups[0]) > len(groups[1])
        assert len(groups[0]) + len(groups[1]) == 400

    def test_indices_partition(self, rng):
        X = two_cluster_data(rng)
        groups = split_domains_by_gmm(X, n_domains=2, random_state=0)
        all_idx = np.sort(np.concatenate(groups))
        np.testing.assert_array_equal(all_idx, np.arange(len(X)))


class TestFastICA:
    def test_recovers_independent_sources(self, rng):
        n = 2000
        s1 = rng.uniform(-1, 1, n)  # non-Gaussian sources
        s2 = np.sign(rng.standard_normal(n)) * rng.uniform(0.5, 1.0, n)
        S = np.column_stack([s1, s2])
        A = np.array([[1.0, 0.6], [0.4, 1.0]])
        X = S @ A.T
        ica = FastICA(2, random_state=0).fit(X)
        S_hat = ica.transform(X)
        # each recovered component should correlate strongly with one source
        corr = np.abs(np.corrcoef(S.T, S_hat.T)[:2, 2:])
        assert corr.max(axis=1).min() > 0.9

    def test_round_trip(self, rng):
        X = rng.standard_normal((200, 4)) @ rng.standard_normal((4, 4))
        ica = FastICA(random_state=0).fit(X)
        back = ica.inverse_transform(ica.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-6)

    def test_components_whitened(self, rng):
        X = rng.standard_normal((500, 3)) * np.array([5.0, 1.0, 0.2])
        S = FastICA(random_state=0).fit_transform(X)
        cov = np.cov(S, rowvar=False)
        np.testing.assert_allclose(cov, np.eye(S.shape[1]), atol=0.1)

    def test_rank_deficient_input(self, rng):
        base = rng.standard_normal((100, 2))
        X = np.column_stack([base, base[:, 0] + base[:, 1]])  # rank 2
        ica = FastICA(random_state=0).fit(X)
        assert ica.unmixing_.shape[0] == 2

    def test_rejects_component_mismatch(self, rng):
        ica = FastICA(2, random_state=0).fit(rng.standard_normal((50, 3)))
        with pytest.raises(ValidationError):
            ica.inverse_transform(np.zeros((5, 3)))

    def test_zero_variance_rejected(self):
        with pytest.raises(ValidationError):
            FastICA().fit(np.zeros((10, 3)))
