"""Estimator protocol: params, state round trips, and the kind registry."""

import numpy as np
import pytest

from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.estimator import (
    Estimator,
    get_estimator_class,
    pack_estimator,
    param_from_jsonable,
    param_to_jsonable,
    register_estimator,
    registered_kinds,
    unpack_estimator,
)
from repro.utils.errors import ArtifactError, ValidationError


def _roundtrip(est):
    return unpack_estimator(pack_estimator(est))


class TestRegistry:
    def test_known_kinds_resolve(self):
        for kind in ("minmax_scaler", "mlp", "random_forest", "cgan",
                     "fsgan_pipeline", "fs+gan", "protonet"):
            cls = get_estimator_class(kind)
            assert issubclass(cls, Estimator)
            assert cls._estimator_kind == kind

    def test_registered_kinds_is_sorted_and_nonempty(self):
        kinds = registered_kinds()
        assert kinds == sorted(kinds)
        assert "fsgan_adapter" in kinds

    def test_unknown_kind_raises(self):
        with pytest.raises((ArtifactError, ValidationError, KeyError)):
            get_estimator_class("definitely-not-a-kind")

    def test_duplicate_kind_rejected(self):
        with pytest.raises(Exception):
            @register_estimator("minmax_scaler")
            class Dup(Estimator):  # pragma: no cover - definition must fail
                pass


class TestParamCodec:
    def test_dataclass_configs_survive(self):
        fs = FSConfig(alpha=0.07, max_parents=2)
        back = param_from_jsonable(param_to_jsonable(fs))
        assert isinstance(back, FSConfig)
        assert back.alpha == 0.07 and back.max_parents == 2

        rc = ReconstructionConfig(strategy="vae", epochs=3, noise_dim=7)
        back = param_from_jsonable(param_to_jsonable(rc))
        assert isinstance(back, ReconstructionConfig)
        assert (back.strategy, back.epochs, back.noise_dim) == ("vae", 3, 7)

    def test_numpy_scalars_and_generators(self):
        assert param_to_jsonable(np.float64(1.5)) == 1.5
        assert param_to_jsonable(np.int64(4)) == 4
        assert param_to_jsonable(np.random.default_rng(0)) is None


class TestGetParamsRoundTrip:
    def test_params_are_constructor_ready(self):
        from repro.ml.mlp import MLPClassifier

        est = MLPClassifier(hidden_sizes=(8, 4), epochs=3, random_state=5)
        params = est.get_params()
        clone = type(est).from_params(
            {k: param_from_jsonable(param_to_jsonable(v))
             for k, v in params.items()}
        )
        assert clone.hidden_sizes == (8, 4)
        assert clone.epochs == 3

    def test_model_factory_excluded_and_stubbed(self):
        from repro.ml.mlp import MLPClassifier
        from repro.core.pipeline import FSGANPipeline

        pipe = FSGANPipeline(lambda: MLPClassifier())
        assert "model_factory" not in pipe.get_params()
        restored = FSGANPipeline.from_params(pipe.get_params())
        with pytest.raises(ArtifactError):
            restored.model_factory()


class TestStateRoundTrips:
    def test_unfitted_estimator_raises(self):
        from repro.ml.preprocessing import MinMaxScaler
        from repro.utils.errors import NotFittedError

        with pytest.raises(NotFittedError):
            pack_estimator(MinMaxScaler())

    def test_scaler_roundtrip_bitwise(self, rng):
        from repro.ml.preprocessing import MinMaxScaler

        X = rng.normal(size=(30, 6))
        scaler = MinMaxScaler().fit(X)
        clone = _roundtrip(scaler)
        np.testing.assert_array_equal(clone.transform(X), scaler.transform(X))

    def test_tree_ensemble_roundtrips(self, blob_data):
        from repro.ml.gradient_boosting import GradientBoostingClassifier
        from repro.ml.random_forest import RandomForestClassifier

        X_train, y_train, X_test, _ = blob_data
        for est in (
            RandomForestClassifier(n_estimators=5, max_depth=4, random_state=0),
            GradientBoostingClassifier(n_estimators=4, max_depth=3,
                                       random_state=0),
        ):
            est.fit(X_train, y_train)
            clone = _roundtrip(est)
            np.testing.assert_array_equal(
                clone.predict_proba(X_test), est.predict_proba(X_test))

    def test_network_estimator_roundtrips(self, blob_data):
        from repro.ml.mlp import MLPClassifier

        X_train, y_train, X_test, _ = blob_data
        est = MLPClassifier(hidden_sizes=(12,), epochs=8,
                            random_state=3).fit(X_train, y_train)
        clone = _roundtrip(est)
        np.testing.assert_array_equal(
            clone.predict_proba(X_test), est.predict_proba(X_test))

    def test_gan_roundtrip_restores_rng_stream(self, rng):
        from repro.gan.cgan import ConditionalGAN

        X_inv = rng.normal(size=(60, 6))
        X_var = np.tanh(rng.normal(size=(60, 3)))
        gan = ConditionalGAN(noise_dim=2, hidden_size=8, epochs=2,
                             batch_size=32, random_state=0,
                             conditional=False).fit(X_inv, X_var)
        clone = _roundtrip(gan)
        # internal stream: same draws without an explicit random_state
        np.testing.assert_array_equal(
            clone.generate(X_inv[:5], n_draws=2),
            gan.generate(X_inv[:5], n_draws=2))

    def test_separator_warm_state_roundtrips(self, rng):
        from repro.core.config import FSConfig
        from repro.core.feature_separation import FeatureSeparator
        from repro.experiments.bench import make_wide_pair

        Xs, Xt = make_wide_pair(23, n_source=200, n_target=80, random_state=7)
        sep = FeatureSeparator(FSConfig(warm_mode="confirm")).fit(Xs, Xt[:56])
        assert sep.warm_state_ is not None
        clone = _roundtrip(sep)
        res, cres = sep.result_, clone.result_
        np.testing.assert_array_equal(cres.variant_indices, res.variant_indices)
        np.testing.assert_array_equal(cres.p_values, res.p_values)
        np.testing.assert_array_equal(
            cres.marginal_p_values, res.marginal_p_values)
        assert cres.coverage == res.coverage
        # the restored warm state drives an identical incremental refit
        warm = clone.warm_state_
        assert warm is not None
        assert warm.source_fingerprint == sep.warm_state_.source_fingerprint
        cold = FeatureSeparator(FSConfig()).fit(Xs, Xt)
        refit = FeatureSeparator(FSConfig(warm_mode="confirm")).fit(
            Xs, Xt, warm=warm)
        np.testing.assert_array_equal(
            refit.result_.variant_indices, cold.result_.variant_indices)
        assert refit.result_.n_tests < cold.result_.n_tests

    def test_budgeted_coverage_survives_roundtrip(self, rng):
        from repro.core.config import FSConfig
        from repro.core.feature_separation import FeatureSeparator
        from repro.experiments.bench import make_wide_pair

        Xs, Xt = make_wide_pair(23, n_source=200, n_target=80, random_state=7)
        sep = FeatureSeparator(FSConfig(budget=2)).fit(Xs, Xt)
        assert 0.0 <= sep.result_.coverage < 1.0
        clone = _roundtrip(sep)
        assert clone.result_.coverage == sep.result_.coverage
        np.testing.assert_array_equal(
            clone.result_.variant_indices, sep.result_.variant_indices)

    def test_warm_artifact_fresh_interpreter(self, rng, tmp_path):
        import subprocess
        import sys
        import textwrap

        from repro.core.artifacts import save_artifact
        from repro.core.config import FSConfig
        from repro.core.feature_separation import FeatureSeparator
        from repro.experiments.bench import make_wide_pair

        Xs, Xt = make_wide_pair(23, n_source=200, n_target=80, random_state=7)
        sep = FeatureSeparator(FSConfig(warm_mode="confirm")).fit(Xs, Xt[:56])
        path = tmp_path / "sep.npz"
        save_artifact(sep, path)
        np.savez(tmp_path / "data.npz", Xs=Xs, Xt=Xt)
        cold = FeatureSeparator(FSConfig()).fit(Xs, Xt)
        script = textwrap.dedent("""
            import sys
            import numpy as np
            from repro.core.artifacts import load_artifact
            from repro.core.config import FSConfig
            from repro.core.feature_separation import FeatureSeparator

            data = np.load(sys.argv[2])
            sep = load_artifact(sys.argv[1]).estimator
            assert sep.warm_state_ is not None
            refit = FeatureSeparator(FSConfig(warm_mode="confirm")).fit(
                data["Xs"], data["Xt"], warm=sep.warm_state_)
            print(",".join(map(str, refit.result_.variant_indices.tolist())))
        """)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path),
             str(tmp_path / "data.npz")],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        got = [int(s) for s in proc.stdout.strip().split(",") if s]
        assert got == cold.result_.variant_indices.tolist()

    def test_prefix_isolation(self, rng):
        from repro.ml.preprocessing import MinMaxScaler, StandardScaler

        X = rng.normal(size=(20, 4))
        a, b = MinMaxScaler().fit(X), StandardScaler().fit(X)
        arrays = {}
        arrays.update(pack_estimator(a, "a."))
        arrays.update(pack_estimator(b, "b."))
        ra = unpack_estimator(arrays, "a.")
        rb = unpack_estimator(arrays, "b.")
        np.testing.assert_array_equal(ra.transform(X), a.transform(X))
        np.testing.assert_array_equal(rb.transform(X), b.transform(X))


class TestExportPlan:
    def test_pipeline_plan_lists_stages(self, tiny_5gc):
        from repro.core import FSGANPipeline, ReconstructionConfig
        from repro.ml import MLPClassifier

        X_few, _, _, _ = tiny_5gc.few_shot_split(5, random_state=0)
        pipe = FSGANPipeline(
            lambda: MLPClassifier(hidden_sizes=(8,), epochs=3, random_state=0),
            reconstruction_config=ReconstructionConfig(
                epochs=1, noise_dim=2, hidden_size=8),
            random_state=0,
        ).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        plan = pipe.export_plan()
        stages = [s["stage"] if isinstance(s, dict) else s
                  for s in plan["stages"]]
        assert plan["kind"] == "fsgan_pipeline"
        assert len(stages) == 5
