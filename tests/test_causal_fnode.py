"""Unit tests for F-node intervention-target discovery."""

import numpy as np
import pytest

from repro.causal import FNodeDiscovery, FNodeResult, discover_targets_pc
from repro.utils.errors import ValidationError


def make_two_domain_data(rng, n_s=1000, n_t=120):
    """Five-node system: z (root) → x1, x1 → x2; x3, x4 independent.

    Target-domain interventions: shift x1 (the true target).  The child x2
    shifts marginally through x1; z, x3, x4 are untouched.
    """
    def sample(n, intervene):
        z = rng.standard_normal(n)
        x1 = 0.9 * z + 0.4 * rng.standard_normal(n)
        if intervene:
            x1 = x1 + 3.0
        x2 = 0.9 * x1 + 0.4 * rng.standard_normal(n)
        x3 = rng.standard_normal(n)
        x4 = rng.standard_normal(n)
        return np.column_stack([z, x1, x2, x3, x4])

    return sample(n_s, False), sample(n_t, True)


class TestFNodeDiscovery:
    def test_finds_true_target_only(self, rng):
        X_s, X_t = make_two_domain_data(rng)
        result = FNodeDiscovery(alpha=0.01).discover(X_s, X_t)
        assert 1 in result.variant_indices  # the intervened node
        assert 2 not in result.variant_indices  # child cleared by conditioning
        assert 0 not in result.variant_indices  # parent cleared by empty set
        assert 3 not in result.variant_indices
        assert 4 not in result.variant_indices

    def test_no_drift_no_targets(self, rng):
        X = rng.standard_normal((800, 6))
        X_t = rng.standard_normal((100, 6))
        result = FNodeDiscovery(alpha=0.001).discover(X, X_t)
        assert result.n_variant <= 1  # at most a false positive

    def test_result_partition(self, rng):
        X_s, X_t = make_two_domain_data(rng)
        result = FNodeDiscovery().discover(X_s, X_t)
        merged = np.sort(
            np.concatenate([result.variant_indices, result.invariant_indices])
        )
        np.testing.assert_array_equal(merged, np.arange(X_s.shape[1]))

    def test_variant_mask(self, rng):
        X_s, X_t = make_two_domain_data(rng)
        result = FNodeDiscovery().discover(X_s, X_t)
        mask = result.variant_mask(X_s.shape[1])
        assert mask.sum() == result.n_variant

    def test_feature_count_mismatch(self, rng):
        with pytest.raises(ValidationError):
            FNodeDiscovery().discover(
                rng.standard_normal((50, 3)), rng.standard_normal((10, 4))
            )

    def test_single_feature(self, rng):
        result = FNodeDiscovery().discover(
            rng.standard_normal((200, 1)), rng.standard_normal((30, 1)) + 3.0
        )
        assert result.n_variant == 1

    def test_power_grows_with_target_samples(self, tiny_5gc):
        """More shots → more variant features found (§VI-C progression)."""
        from repro.ml import MinMaxScaler

        scaler = MinMaxScaler().fit(tiny_5gc.X_source)
        Xs = scaler.transform(tiny_5gc.X_source)
        counts = []
        for shots in (1, 10):
            X_few, _, _, _ = tiny_5gc.few_shot_split(shots, random_state=0)
            result = FNodeDiscovery().discover(Xs, scaler.transform(X_few))
            counts.append(result.n_variant)
        assert counts[0] <= counts[1]

    def test_recovers_scm_ground_truth(self, tiny_5gc):
        from repro.ml import MinMaxScaler

        scaler = MinMaxScaler().fit(tiny_5gc.X_source)
        Xs = scaler.transform(tiny_5gc.X_source)
        X_few, _, _, _ = tiny_5gc.few_shot_split(10, random_state=0)
        result = FNodeDiscovery().discover(Xs, scaler.transform(X_few))
        truth = set(tiny_5gc.true_variant_indices.tolist())
        flagged = set(result.variant_indices.tolist())
        recall = len(flagged & truth) / len(truth)
        precision = len(flagged & truth) / max(1, len(flagged))
        assert recall > 0.6
        assert precision > 0.6

    def test_max_parents_zero_is_marginal_test(self, rng):
        X_s, X_t = make_two_domain_data(rng)
        result = FNodeDiscovery(max_parents=0).discover(X_s, X_t)
        # without conditioning, the child of the target is also flagged
        assert 1 in result.variant_indices
        assert 2 in result.variant_indices


class TestDiscoverTargetsPC:
    def test_small_system(self, rng):
        X_s, X_t = make_two_domain_data(rng, n_s=800, n_t=150)
        result, pc_result = discover_targets_pc(X_s, X_t, alpha=0.01)
        assert isinstance(result, FNodeResult)
        assert 1 in result.variant_indices
        assert 3 not in result.variant_indices
        # the F-node must only have outgoing edges
        from repro.causal import F_NODE

        assert pc_result.graph.parents(F_NODE) == set()

    def test_feature_names(self, rng):
        X_s, X_t = make_two_domain_data(rng, n_s=500, n_t=100)
        names = ["z", "x1", "x2", "x3", "x4"]
        result, pc_result = discover_targets_pc(
            X_s, X_t, alpha=0.01, feature_names=names
        )
        assert set(pc_result.graph.nodes) == set(names) | {"F"}

    def test_name_length_checked(self, rng):
        X_s, X_t = make_two_domain_data(rng, n_s=200, n_t=50)
        with pytest.raises(ValidationError):
            discover_targets_pc(X_s, X_t, feature_names=["a", "b"])
