"""Unit tests for the nn layers, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Dense,
    Dropout,
    GradientReversal,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.utils.errors import ValidationError


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_input_gradient(layer, x, training=True, atol=1e-5):
    """Compare layer.backward against finite differences of sum(output)."""
    out = layer.forward(x, training=training)
    analytic = layer.backward(np.ones_like(out))
    numeric = numerical_gradient(
        lambda: layer.forward(x, training=training).sum(), x
    )
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(5, 3, random_state=0)
        out = layer.forward(rng.standard_normal((7, 5)))
        assert out.shape == (7, 3)

    def test_input_gradient(self, rng):
        layer = Dense(4, 3, random_state=0)
        check_input_gradient(layer, rng.standard_normal((5, 4)))

    def test_weight_gradient(self, rng):
        layer = Dense(4, 3, random_state=0)
        x = rng.standard_normal((5, 4))
        layer.forward(x)
        layer.backward(np.ones((5, 3)))
        analytic = layer.grads["W"].copy()
        numeric = numerical_gradient(lambda: layer.forward(x).sum(), layer.params["W"])
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_bias_gradient(self, rng):
        layer = Dense(4, 3, random_state=0)
        x = rng.standard_normal((5, 4))
        layer.forward(x)
        layer.backward(np.ones((5, 3)))
        numeric = numerical_gradient(lambda: layer.forward(x).sum(), layer.params["b"])
        np.testing.assert_allclose(layer.grads["b"], numeric, atol=1e-5)

    def test_rejects_wrong_width(self, rng):
        layer = Dense(4, 3, random_state=0)
        with pytest.raises(ValidationError, match="expected 4"):
            layer.forward(rng.standard_normal((2, 5)))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValidationError):
            Dense(0, 3)


@pytest.mark.parametrize(
    "layer_factory",
    [ReLU, lambda: LeakyReLU(0.2), Tanh, Sigmoid],
    ids=["relu", "leaky", "tanh", "sigmoid"],
)
def test_activation_gradients(layer_factory, rng):
    layer = layer_factory()
    x = rng.standard_normal((6, 4)) + 0.1  # avoid kinks at exactly 0
    check_input_gradient(layer, x)


class TestActivationValues:
    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_leaky_slope(self):
        out = LeakyReLU(0.1).forward(np.array([[-10.0, 10.0]]))
        np.testing.assert_allclose(out, [[-1.0, 10.0]])

    def test_leaky_rejects_negative_slope(self):
        with pytest.raises(ValidationError):
            LeakyReLU(-0.1)

    def test_sigmoid_bounds(self, rng):
        # values may round to exactly 0.0/1.0 in float64 at extreme logits;
        # the BCE loss clips, so [0, 1] closure is the right contract here
        out = Sigmoid().forward(rng.standard_normal((10, 3)) * 100)
        assert np.all(out >= 0) and np.all(out <= 1) and np.all(np.isfinite(out))

    def test_sigmoid_no_overflow(self):
        out = Sigmoid().forward(np.array([[-1e6, 1e6]]))
        assert np.all(np.isfinite(out))


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5, random_state=0)
        x = rng.standard_normal((4, 3))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_scales_at_training(self, rng):
        layer = Dropout(0.5, random_state=0)
        x = np.ones((1000, 10))
        out = layer.forward(x, training=True)
        # inverted dropout preserves the expectation
        assert abs(out.mean() - 1.0) < 0.1
        kept = out != 0
        np.testing.assert_allclose(out[kept], 2.0)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, random_state=0)
        x = rng.standard_normal((8, 4))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_rejects_rate_one(self):
        with pytest.raises(ValidationError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        layer = BatchNorm1d(4)
        x = rng.standard_normal((100, 4)) * 5 + 3
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_used_at_inference(self, rng):
        layer = BatchNorm1d(3, momentum=0.0)  # running stats = last batch
        x = rng.standard_normal((50, 3)) * 2 + 1
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-2)

    def test_training_gradient(self, rng):
        layer = BatchNorm1d(3)
        x = rng.standard_normal((10, 3))
        out = layer.forward(x, training=True)
        analytic = layer.backward(np.ones_like(out))
        # finite differences through the batch statistics
        numeric = numerical_gradient(
            lambda: layer.forward(x, training=True).sum(), x
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_rejects_wrong_width(self, rng):
        layer = BatchNorm1d(3)
        with pytest.raises(ValidationError):
            layer.forward(rng.standard_normal((5, 4)), training=True)


class TestGradientReversal:
    def test_identity_forward(self, rng):
        x = rng.standard_normal((3, 2))
        np.testing.assert_array_equal(GradientReversal(0.5).forward(x), x)

    def test_flips_and_scales_gradient(self):
        layer = GradientReversal(0.5)
        layer.forward(np.zeros((2, 2)))
        grad = layer.backward(np.ones((2, 2)))
        np.testing.assert_allclose(grad, -0.5)


class TestSequential:
    def test_composes(self, rng):
        net = Sequential([Dense(4, 8, random_state=0), ReLU(), Dense(8, 2, random_state=1)])
        out = net.forward(rng.standard_normal((5, 4)))
        assert out.shape == (5, 2)

    def test_end_to_end_gradient(self, rng):
        net = Sequential([Dense(3, 5, random_state=0), Tanh(), Dense(5, 2, random_state=1)])
        x = rng.standard_normal((4, 3))
        check_input_gradient(net, x, training=False)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Sequential([])

    def test_n_parameters(self):
        net = Sequential([Dense(4, 8, random_state=0), ReLU(), Dense(8, 2, random_state=1)])
        assert net.n_parameters() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_state_dict_roundtrip(self, rng):
        net1 = Sequential([Dense(3, 4, random_state=0), ReLU(), Dense(4, 2, random_state=1)])
        net2 = Sequential([Dense(3, 4, random_state=5), ReLU(), Dense(4, 2, random_state=6)])
        x = rng.standard_normal((5, 3))
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_array_equal(net1.forward(x), net2.forward(x))

    def test_state_dict_shape_mismatch(self):
        net1 = Sequential([Dense(3, 4, random_state=0)])
        net2 = Sequential([Dense(3, 5, random_state=0)])
        with pytest.raises(ValidationError, match="shape mismatch"):
            net2.load_state_dict(net1.state_dict())
