"""Tests for the metrics registry (repro.obs.metrics)."""

import json
import math

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_metrics,
    set_metrics,
)
from repro.utils.errors import ValidationError


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValidationError):
            Counter().inc(-1)


class TestGauge:
    def test_set_keeps_last_value(self):
        g = Gauge()
        assert g.value is None
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(v)
        assert h.count == 100
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_percentile_bounds_validated(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValidationError):
            h.percentile(101)

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Histogram().percentile(50))

    def test_summary_keys(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert set(s) == {"count", "sum", "mean", "min", "max", "p50", "p90", "p99"}
        assert s["p50"] <= s["p90"] <= s["p99"]

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0}


class TestRegistry:
    def test_lazy_creation_and_reuse(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        assert reg.counter("hits") is c
        assert reg.counter("hits").value == 1
        assert reg.names() == ["hits"]

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValidationError):
            reg.histogram("x")

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1.0)
        data = json.loads(reg.to_json())
        assert data["n"] == {"type": "counter", "value": 3}
        assert data["g"] == {"type": "gauge", "value": 0.5}
        assert data["h"]["type"] == "histogram" and data["h"]["count"] == 1


class TestBoundedHistogram:
    def test_memory_bounded_past_cutoff(self):
        h = Histogram()
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h.values) <= 4096
        assert not h.exact

    def test_exact_below_cutoff(self):
        h = Histogram()
        for v in range(100):
            h.observe(float(v))
        assert h.exact
        assert h.values == [float(v) for v in range(100)]

    def test_approx_summary_flags_itself(self):
        h = Histogram()
        for v in range(5000):
            h.observe(float(v))
        d = h.to_dict()
        assert d["type"] == "histogram"
        assert d["approx"] is True
        # exact even in reservoir mode
        assert d["min"] == 0.0 and d["max"] == 4999.0
        assert d["count"] == 5000 and d["sum"] == sum(range(5000))


class TestLabeledFamilies:
    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.histogram("stage_seconds", stage="scale")
        b = reg.histogram("stage_seconds", stage="merge")
        assert a is not b
        assert reg.histogram("stage_seconds", stage="scale") is a

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert (reg.counter("hits", a=1, b=2)
                is reg.counter("hits", b=2, a=1))

    def test_type_conflict_across_labels_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", stage="scale")
        with pytest.raises(ValidationError):
            reg.gauge("x", stage="merge")

    def test_collect_groups_series_by_family(self):
        reg = MetricsRegistry()
        reg.counter("hits", path="/a").inc(1)
        reg.counter("hits", path="/b").inc(2)
        reg.gauge("depth").set(3.0)
        collected = reg.collect()
        assert [(family, type_name) for family, type_name, _ in collected] == [
            ("depth", "gauge"), ("hits", "counter")
        ]
        hits = dict(
            (labels["path"], metric.value)
            for labels, metric in collected[1][2]
        )
        assert hits == {"/a": 1, "/b": 2}
        # the gauge's single unlabeled series
        assert collected[0][2][0][0] == {}

    def test_labeled_series_serialize_with_suffix(self):
        reg = MetricsRegistry()
        reg.counter("hits", path="/a").inc()
        data = json.loads(reg.to_json())
        assert data["hits{path=/a}"] == {"type": "counter", "value": 1}


class TestNullRegistry:
    def test_default_global_is_null(self):
        assert get_metrics() is NULL_REGISTRY
        assert not get_metrics().enabled

    def test_null_metrics_discard_everything(self):
        reg = NullRegistry()
        reg.counter("a").inc(5)
        reg.gauge("b").set(1.0)
        reg.histogram("c").observe(2.0)
        assert reg.counter("a").value == 0
        assert reg.gauge("b").value is None
        assert reg.histogram("c").count == 0
        # shared singletons: no allocation per call site, labels included
        assert reg.counter("a") is reg.counter("zzz")
        assert reg.histogram("c", stage="scale") is reg.histogram("c")

    def test_set_metrics_installs_and_restores(self):
        reg = MetricsRegistry()
        previous = set_metrics(reg)
        try:
            assert get_metrics() is reg
        finally:
            set_metrics(previous)
        assert get_metrics() is NULL_REGISTRY

    def test_set_metrics_validates(self):
        with pytest.raises(ValidationError):
            set_metrics(object())
