"""Versioned artifact store: round trips, migration, integrity, wrappers.

Includes the cross-process contract: every registered baseline and ml model
is saved in this process and reloaded in a **fresh interpreter** with no
training configuration, and must reproduce its predictions exactly.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import FSGANPipeline, ReconstructionConfig
from repro.core.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    AdapterBundle,
    ArtifactStore,
    load_artifact,
    save_artifact,
)
from repro.core.persistence import load_adapter, save_adapter
from repro.ml import MLPClassifier
from repro.utils.errors import ArtifactError, ValidationError

SRC = str(Path(__file__).resolve().parents[1] / "src")


def fast_mlp():
    return MLPClassifier(hidden_sizes=(16,), epochs=8, random_state=0)


@pytest.fixture(scope="module")
def fitted_pipeline(tiny_5gc):
    X_few, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
    pipe = FSGANPipeline(
        fast_mlp,
        reconstruction_config=ReconstructionConfig(
            epochs=2, noise_dim=2, hidden_size=8),
        random_state=0,
    ).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
    return pipe, X_test[:16]


class TestSaveLoad:
    def test_pipeline_roundtrip_bit_identical(self, fitted_pipeline, tmp_path):
        pipe, X = fitted_pipeline
        path = save_artifact(
            pipe, tmp_path / "pipe.npz",
            provenance={"dataset": "5gc", "seed": 0},
        )
        expected = pipe.predict_proba(X)
        loaded = load_artifact(path)
        assert loaded.kind == "fsgan_pipeline"
        assert loaded.provenance == {"dataset": "5gc", "seed": 0}
        assert loaded.manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert loaded.manifest["plan"]["stages"][0]["stage"] == "scale"
        np.testing.assert_array_equal(
            loaded.estimator.predict_proba(X), expected)

    def test_sidecar_manifest_written(self, fitted_pipeline, tmp_path):
        pipe, _ = fitted_pipeline
        path = save_artifact(pipe, tmp_path / "pipe.npz")
        sidecar = json.loads(
            (tmp_path / "pipe.npz.manifest.json").read_text())
        assert sidecar["kind"] == "fsgan_pipeline"
        assert sidecar["content_hash"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact file"):
            load_artifact(tmp_path / "nope.npz")

    def test_non_artifact_npz_raises(self, tmp_path):
        np.savez(tmp_path / "junk.npz", x=np.zeros(3))
        with pytest.raises(ArtifactError, match="not a repro artifact"):
            load_artifact(tmp_path / "junk.npz")

    def test_corrupted_payload_fails_hash_check(self, fitted_pipeline,
                                                tmp_path):
        pipe, _ = fitted_pipeline
        path = save_artifact(pipe, tmp_path / "pipe.npz")
        data = dict(np.load(path, allow_pickle=False))
        victim = next(k for k in data
                      if data[k].dtype == np.float64 and data[k].size)
        data[victim] = data[victim] + 1e-3
        np.savez_compressed(path, **data)
        with pytest.raises(ArtifactError, match="content hash mismatch"):
            load_artifact(path)
        # integrity checking is opt-out for trusted stores
        load_artifact(path, verify_hash=False)

    def test_future_schema_version_rejected(self, fitted_pipeline, tmp_path):
        from repro.core.estimator import decode_json, encode_json

        pipe, _ = fitted_pipeline
        path = save_artifact(pipe, tmp_path / "pipe.npz")
        data = dict(np.load(path, allow_pickle=False))
        manifest = decode_json(data["__manifest__"])
        manifest["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        data["__manifest__"] = encode_json(manifest)
        np.savez_compressed(path, **data)
        with pytest.raises(ArtifactError, match="schema version"):
            load_artifact(path)


class TestArtifactStore:
    def test_save_load_list(self, fitted_pipeline, tmp_path):
        pipe, X = fitted_pipeline
        store = ArtifactStore(tmp_path / "store")
        store.save("adapter", AdapterBundle.from_pipeline(pipe),
                   provenance={"seed": 0})
        store.save("pipeline", pipe)
        expected = pipe.predict_proba(X)

        listing = store.list()
        assert set(listing) == {"adapter", "pipeline"}
        assert listing["adapter"]["kind"] == "fsgan_adapter"
        assert listing["pipeline"]["kind"] == "fsgan_pipeline"
        np.testing.assert_array_equal(
            store.load("pipeline").estimator.predict_proba(X), expected)

    def test_empty_store_lists_nothing(self, tmp_path):
        assert ArtifactStore(tmp_path / "absent").list() == {}


class TestLegacyV1Migration:
    def _write_v1(self, pipeline, path):
        """The original ``save_adapter`` layout, byte for byte."""
        model = pipeline.reconstructor_.model_
        meta = {
            "format_version": 1,
            "fs_config": {
                "alpha": pipeline.fs_config.alpha,
                "max_parents": pipeline.fs_config.max_parents,
                "max_cond_size": pipeline.fs_config.max_cond_size,
                "min_correlation": pipeline.fs_config.min_correlation,
            },
            "reconstruction": {
                "strategy": pipeline.reconstruction_config.strategy,
                "noise_dim": model.noise_dim,
                "hidden_size": model.hidden_size,
                "conditional": model.conditional,
                "n_classes": model.n_classes_,
                "n_invariant": model.n_invariant_,
                "n_variant": model.n_variant_,
            },
            "n_features": pipeline.separator_.n_features_,
        }
        arrays = {
            "meta_json": np.frombuffer(
                json.dumps(meta).encode(), dtype=np.uint8),
            "scaler_min": pipeline.scaler_.data_min_,
            "scaler_max": pipeline.scaler_.data_max_,
            "variant_indices": pipeline.separator_.variant_indices_,
            "invariant_indices": pipeline.separator_.invariant_indices_,
            "p_values": pipeline.separator_.result_.p_values,
        }
        for key, value in model.generator_.state_dict().items():
            arrays[f"generator.{key}"] = value
        for key, value in model.discriminator_.state_dict().items():
            arrays[f"discriminator.{key}"] = value
        np.savez_compressed(path, **arrays)

    def test_v1_file_loads_as_adapter_bundle(self, fitted_pipeline, tmp_path):
        pipe, X = fitted_pipeline
        path = tmp_path / "v1.npz"
        self._write_v1(pipe, path)
        loaded = load_artifact(path)
        assert isinstance(loaded.estimator, AdapterBundle)
        assert loaded.manifest["schema_version"] == 1
        assert loaded.manifest["migrated"] is True
        bundle = loaded.estimator
        np.testing.assert_array_equal(
            bundle.scaler_.transform(X), pipe.scaler_.transform(X))
        # generator weights restored exactly (v1 carries no RNG state)
        g_in = np.random.default_rng(0).standard_normal(
            (4, pipe.reconstructor_.model_.n_invariant_
             + pipe.reconstructor_.model_.noise_dim))
        np.testing.assert_array_equal(
            bundle.reconstructor_.model_.generator_.forward(
                g_in, training=False),
            pipe.reconstructor_.model_.generator_.forward(
                g_in, training=False))

    def test_v1_grafts_via_load_adapter(self, fitted_pipeline, tiny_5gc,
                                        tmp_path):
        pipe, X = fitted_pipeline
        path = tmp_path / "v1.npz"
        self._write_v1(pipe, path)
        host = FSGANPipeline(fast_mlp, random_state=0)
        host.model_ = pipe.model_  # deployment: model already on the host
        with pytest.warns(DeprecationWarning):
            load_adapter(path, host)
        # v1 carries no RNG state; align the noise streams before comparing
        host.reconstructor_.model_._rng = np.random.default_rng(123)
        pipe.reconstructor_.model_._rng = np.random.default_rng(123)
        np.testing.assert_array_equal(host.transform(X), pipe.transform(X))


class TestDeprecatedWrappers:
    def test_save_load_adapter_still_work(self, fitted_pipeline, tmp_path):
        pipe, X = fitted_pipeline
        with pytest.warns(DeprecationWarning):
            save_adapter(pipe, tmp_path / "adapter.npz")
        host = FSGANPipeline(fast_mlp, random_state=0)
        host.model_ = pipe.model_
        with pytest.warns(DeprecationWarning):
            load_adapter(tmp_path / "adapter.npz", host)
        np.testing.assert_array_equal(
            host.predict_proba(X), pipe.predict_proba(X))

    def test_save_adapter_requires_fitted(self, tmp_path):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValidationError, match="fitted"):
                save_adapter(FSGANPipeline(fast_mlp), tmp_path / "a.npz")

    def test_load_adapter_missing_file(self, fitted_pipeline, tmp_path):
        pipe, _ = fitted_pipeline
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValidationError, match="no adapter file"):
                load_adapter(tmp_path / "missing.npz", pipe)

    def test_load_adapter_rejects_wrong_width_pipeline(
            self, fitted_pipeline, blob_data, tmp_path):
        pipe, _ = fitted_pipeline
        with pytest.warns(DeprecationWarning):
            save_adapter(pipe, tmp_path / "adapter.npz")
        X_train, y_train, _, _ = blob_data  # 4 features vs the 5GC width
        host = FSGANPipeline(fast_mlp, random_state=0)
        host.model_ = fast_mlp().fit(X_train, y_train)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ArtifactError, match="features"):
                load_adapter(tmp_path / "adapter.npz", host)

    def test_load_adapter_rejects_non_adapter_artifact(
            self, fitted_pipeline, tmp_path):
        pipe, _ = fitted_pipeline
        save_artifact(pipe, tmp_path / "pipe.npz")  # full pipeline, not adapter
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ArtifactError):
                load_adapter(tmp_path / "pipe.npz", pipe)


def _score(est, X):
    """Same dispatch as the child interpreter below."""
    if hasattr(est, "predict_proba"):
        return est.predict_proba(X)
    if hasattr(est, "transform"):
        return est.transform(X)
    return est.predict(X)


_CHILD = """
import sys
import numpy as np
from repro.core.artifacts import ArtifactStore

store = ArtifactStore(sys.argv[1])
batch = np.load(sys.argv[2], allow_pickle=False)
out = {}
for name in store.list():
    est = store.load(name).estimator
    X = batch[name]
    if hasattr(est, "predict_proba"):
        out[name] = est.predict_proba(X)
    elif hasattr(est, "transform"):
        out[name] = est.transform(X)
    else:
        out[name] = est.predict(X)
np.savez(sys.argv[3], **out)
"""


class TestFreshProcessRoundTrip:
    """Satellite contract: every registered baseline and ml model survives
    a save → fresh-interpreter load → predict cycle with exact equality."""

    @pytest.fixture(scope="class")
    def saved_estimators(self, tiny_5gc, blob_data, tmp_path_factory):
        from repro.baselines import ALL_METHODS, build_method
        from repro.ml import (
            DecisionTreeClassifier,
            FastICA,
            GaussianMixture,
            GradientBoostingClassifier,
            MinMaxScaler,
            RandomForestClassifier,
            StandardScaler,
        )

        root = tmp_path_factory.mktemp("bundles")
        store = ArtifactStore(root / "store")
        X_few, y_few, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
        Xb_train, yb_train, Xb_test, _ = blob_data

        kwargs = {
            "fine-tune": dict(hidden_sizes=(16,), epochs=5,
                              fine_tune_epochs=5),
            "dann": dict(hidden_size=16, embed_dim=8, epochs=4),
            "scl": dict(hidden_size=16, embed_dim=8, epochs=4),
            "matchnet": dict(hidden_size=16, embed_dim=8, episodes=15),
            "protonet": dict(hidden_size=16, embed_dim=8, episodes=15),
            "cmt": dict(n_augment_per_class=5),
            "fs+gan": dict(reconstruction_config=ReconstructionConfig(
                epochs=2, noise_dim=2, hidden_size=8)),
        }
        batches, expected = {}, {}
        for name in ALL_METHODS:
            method = build_method(name, fast_mlp, random_state=0,
                                  **kwargs.get(name, {}))
            method.fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few, y_few)
            key = name.replace("+", "_").replace("&", "_")
            store.save(key, method)
            batches[key] = X_test[:8]
            expected[key] = _score(method, X_test[:8])

        ml_models = {
            "ml_tree": DecisionTreeClassifier(max_depth=4, random_state=0),
            "ml_rf": RandomForestClassifier(n_estimators=4, max_depth=3,
                                            random_state=0),
            "ml_gbm": GradientBoostingClassifier(n_estimators=3, max_depth=2,
                                                 random_state=0),
            "ml_mlp": fast_mlp(),
            "ml_gmm": GaussianMixture(2, random_state=0),
            "ml_ica": FastICA(2, random_state=0),
            "ml_minmax": MinMaxScaler(),
            "ml_standard": StandardScaler(),
        }
        for key, est in ml_models.items():
            if key in ("ml_gmm", "ml_ica", "ml_minmax", "ml_standard"):
                est.fit(Xb_train)
            else:
                est.fit(Xb_train, yb_train)
            store.save(key, est)
            batches[key] = Xb_test[:8]
            expected[key] = _score(est, Xb_test[:8])

        np.savez(root / "batches.npz", **batches)
        return store, root, expected

    def test_all_estimators_identical_in_fresh_process(self,
                                                       saved_estimators):
        store, root, expected = saved_estimators
        env = dict(os.environ, PYTHONPATH=SRC)
        got_path = root / "got.npz"
        subprocess.run(
            [sys.executable, "-c", _CHILD, str(store.root),
             str(root / "batches.npz"), str(got_path)],
            check=True, env=env, timeout=600,
        )
        got = np.load(got_path, allow_pickle=False)
        assert set(got.files) == set(expected)
        for key in expected:
            np.testing.assert_array_equal(got[key], expected[key], err_msg=key)
