"""Tests for the core contribution: FeatureSeparator, VariantReconstructor,
FSModel and FSGANPipeline."""

import numpy as np
import pytest

from repro.core import (
    FSConfig,
    FSGANPipeline,
    FSModel,
    FeatureSeparator,
    ReconstructionConfig,
    VariantReconstructor,
)
from repro.ml import MLPClassifier, MinMaxScaler, macro_f1
from repro.utils.errors import ConfigurationError, NotFittedError, ValidationError


def fast_mlp():
    return MLPClassifier(hidden_sizes=(64,), epochs=40, random_state=0)


@pytest.fixture(scope="module")
def fitted_separator(tiny_5gc):
    scaler = MinMaxScaler().fit(tiny_5gc.X_source)
    Xs = scaler.transform(tiny_5gc.X_source)
    X_few, _, _, _ = tiny_5gc.few_shot_split(5, random_state=0)
    sep = FeatureSeparator(FSConfig())
    sep.fit(Xs, scaler.transform(X_few))
    return sep, Xs


class TestFSConfig:
    def test_defaults_valid(self):
        FSConfig()

    def test_alpha_bounds(self):
        with pytest.raises(ConfigurationError):
            FSConfig(alpha=0.0)

    def test_reconstruction_strategy_checked(self):
        with pytest.raises(ConfigurationError):
            ReconstructionConfig(strategy="diffusion")

    def test_paper_configs(self):
        assert ReconstructionConfig.paper_5gc().noise_dim == 30
        assert ReconstructionConfig.paper_5gipc().noise_dim == 15
        assert ReconstructionConfig.paper_5gc().epochs == 500


class TestFeatureSeparator:
    def test_split_merge_round_trip(self, fitted_separator):
        sep, Xs = fitted_separator
        X_inv, X_var = sep.split(Xs)
        merged = sep.merge(X_inv, X_var)
        np.testing.assert_array_equal(merged, Xs)

    def test_split_widths(self, fitted_separator):
        sep, Xs = fitted_separator
        X_inv, X_var = sep.split(Xs)
        assert X_inv.shape[1] + X_var.shape[1] == Xs.shape[1]
        assert X_var.shape[1] == sep.n_variant_

    def test_merge_validates_widths(self, fitted_separator):
        sep, Xs = fitted_separator
        X_inv, X_var = sep.split(Xs)
        with pytest.raises(ValidationError):
            sep.merge(X_inv[:, :-1], X_var)
        with pytest.raises(ValidationError):
            sep.merge(X_inv[:-1], X_var)

    def test_split_before_fit(self):
        with pytest.raises(NotFittedError):
            FeatureSeparator().split(np.zeros((2, 3)))

    def test_split_wrong_width(self, fitted_separator):
        sep, Xs = fitted_separator
        with pytest.raises(ValidationError):
            sep.split(np.zeros((2, Xs.shape[1] + 1)))


class TestVariantReconstructor:
    def test_empty_variant_set_is_legal(self):
        rec = VariantReconstructor(ReconstructionConfig(epochs=1))
        rec.fit(np.zeros((10, 4)), np.zeros((10, 0)))
        out = rec.reconstruct(np.zeros((3, 4)))
        assert out.shape == (3, 0)

    def test_gan_requires_labels(self, rng):
        rec = VariantReconstructor(ReconstructionConfig(strategy="gan", epochs=1))
        with pytest.raises(ValidationError, match="labels"):
            rec.fit(rng.standard_normal((10, 4)), rng.standard_normal((10, 2)))

    @pytest.mark.parametrize("strategy", ["gan", "nocond", "vae", "autoencoder"])
    def test_all_strategies_fit_and_reconstruct(self, strategy, rng):
        rec = VariantReconstructor(
            ReconstructionConfig(strategy=strategy, epochs=3, hidden_size=16,
                                 noise_dim=2),
            random_state=0,
        )
        X_inv = rng.standard_normal((40, 6))
        X_var = np.tanh(rng.standard_normal((40, 3)))
        y = rng.integers(0, 2, 40)
        rec.fit(X_inv, X_var, y)
        out = rec.reconstruct(X_inv[:5])
        assert out.shape == (5, 3)


class TestFSModel:
    def test_beats_srconly_under_drift(self, tiny_5gc):
        X_few, _, X_test, y_test = tiny_5gc.few_shot_split(5, random_state=0)
        scaler = MinMaxScaler().fit(tiny_5gc.X_source)
        src = fast_mlp().fit(scaler.transform(tiny_5gc.X_source), tiny_5gc.y_source)
        srconly = macro_f1(y_test, src.predict(scaler.transform(X_test)))

        fs = FSModel(fast_mlp).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        fs_f1 = macro_f1(y_test, fs.predict(X_test))
        assert fs_f1 > srconly + 0.05

    def test_n_variant_exposed(self, tiny_5gc):
        X_few, _, _, _ = tiny_5gc.few_shot_split(5, random_state=0)
        fs = FSModel(fast_mlp).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        assert fs.n_variant_ > 0

    def test_rejects_non_callable(self):
        with pytest.raises(ValidationError):
            FSModel(model_factory="not callable")


class TestFSGANPipeline:
    @pytest.fixture(scope="class")
    def fitted_pipeline(self, tiny_5gc):
        X_few, _, _, _ = tiny_5gc.few_shot_split(5, random_state=0)
        pipe = FSGANPipeline(
            fast_mlp,
            reconstruction_config=ReconstructionConfig(epochs=300, hidden_size=128,
                                                        noise_dim=6),
            random_state=0,
        )
        pipe.fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        return pipe

    def test_transform_preserves_invariant_features(self, fitted_pipeline, tiny_5gc):
        _, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
        X_hat = fitted_pipeline.transform(X_test[:10])
        Xt = fitted_pipeline.scaler_.transform(X_test[:10])
        inv = fitted_pipeline.separator_.invariant_indices_
        np.testing.assert_array_equal(X_hat[:, inv], Xt[:, inv])

    def test_transform_replaces_variant_features(self, fitted_pipeline, tiny_5gc):
        _, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
        X_hat = fitted_pipeline.transform(X_test[:10])
        Xt = fitted_pipeline.scaler_.transform(X_test[:10])
        var = fitted_pipeline.separator_.variant_indices_
        assert not np.allclose(X_hat[:, var], Xt[:, var])
        # GAN output is tanh-bounded
        assert np.all(np.abs(X_hat[:, var]) <= 1.0)

    def test_predict_beats_srconly(self, fitted_pipeline, tiny_5gc):
        _, _, X_test, y_test = tiny_5gc.few_shot_split(5, random_state=0)
        src_pred = fitted_pipeline.model_.predict(
            fitted_pipeline.scaler_.transform(X_test)
        )
        srconly = macro_f1(y_test, src_pred)
        ours = macro_f1(y_test, fitted_pipeline.predict(X_test))
        assert ours > srconly + 0.05

    def test_predict_proba(self, fitted_pipeline, tiny_5gc):
        _, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
        proba = fitted_pipeline.predict_proba(X_test[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_predict_source_high(self, fitted_pipeline, tiny_5gc):
        f1 = macro_f1(
            tiny_5gc.y_source, fitted_pipeline.predict_source(tiny_5gc.X_source)
        )
        assert f1 > 0.9

    def test_refit_adapter_keeps_model(self, fitted_pipeline, tiny_5gc):
        model_before = fitted_pipeline.model_
        X_few2, _, _, _ = tiny_5gc.few_shot_split(10, random_state=7)
        fitted_pipeline.refit_adapter(X_few2)
        assert fitted_pipeline.model_ is model_before  # never retrained

    def test_feature_count_mismatch(self, tiny_5gc):
        pipe = FSGANPipeline(fast_mlp)
        with pytest.raises(ValidationError):
            pipe.fit(
                tiny_5gc.X_source,
                tiny_5gc.y_source,
                tiny_5gc.X_target[:, :-1][:10],
            )
