"""Unit tests for the generative substrate: conditional GAN, CVAE, vanilla AE."""

import numpy as np
import pytest

from repro.gan import ConditionalGAN, ConditionalVAE, VanillaAutoencoder
from repro.ml import one_hot
from repro.utils.errors import NotFittedError, ValidationError


@pytest.fixture(scope="module")
def recon_problem():
    """X_var is a noisy linear-tanh function of X_inv plus class effects."""
    gen = np.random.default_rng(3)
    n, d_inv, d_var, k = 600, 12, 5, 3
    y = gen.integers(0, k, n)
    X_inv = 0.6 * gen.standard_normal((n, d_inv))
    W = 0.5 * gen.standard_normal((d_inv, d_var))
    class_eff = 0.7 * gen.standard_normal((k, d_var))
    X_var = np.tanh(X_inv @ W + class_eff[y] + 0.15 * gen.standard_normal((n, d_var)))
    return X_inv, X_var, y


class TestConditionalGAN:
    def test_output_shape_and_range(self, recon_problem):
        X_inv, X_var, y = recon_problem
        gan = ConditionalGAN(noise_dim=4, hidden_size=32, epochs=5, random_state=0)
        gan.fit(X_inv, X_var, one_hot(y))
        out = gan.generate(X_inv[:10])
        assert out.shape == (10, X_var.shape[1])
        assert np.all(np.abs(out) <= 1.0)  # tanh output

    def test_learns_marginal_statistics(self, recon_problem):
        X_inv, X_var, y = recon_problem
        gan = ConditionalGAN(noise_dim=4, hidden_size=64, epochs=150, random_state=0)
        gan.fit(X_inv, X_var, one_hot(y))
        out = gan.generate(X_inv)
        np.testing.assert_allclose(out.mean(axis=0), X_var.mean(axis=0), atol=0.25)
        np.testing.assert_allclose(out.std(axis=0), X_var.std(axis=0), atol=0.3)

    def test_reconstruction_tracks_conditional(self, recon_problem):
        X_inv, X_var, y = recon_problem
        gan = ConditionalGAN(noise_dim=4, hidden_size=64, epochs=150, random_state=0)
        gan.fit(X_inv, X_var, one_hot(y))
        out = gan.generate(X_inv)
        # generated values must correlate with the true conditional targets
        corr = np.mean(
            [np.corrcoef(out[:, j], X_var[:, j])[0, 1] for j in range(X_var.shape[1])]
        )
        assert corr > 0.3

    def test_history_recorded(self, recon_problem):
        X_inv, X_var, y = recon_problem
        gan = ConditionalGAN(noise_dim=2, hidden_size=16, epochs=3, random_state=0)
        gan.fit(X_inv, X_var, one_hot(y))
        assert len(gan.history_["d_loss"]) == 3
        assert len(gan.history_["g_loss"]) == 3

    def test_conditional_requires_labels(self, recon_problem):
        X_inv, X_var, _ = recon_problem
        gan = ConditionalGAN(epochs=1)
        with pytest.raises(ValidationError, match="y_onehot"):
            gan.fit(X_inv, X_var)

    def test_unconditional_mode(self, recon_problem):
        X_inv, X_var, _ = recon_problem
        gan = ConditionalGAN(
            noise_dim=2, hidden_size=16, epochs=2, conditional=False, random_state=0
        )
        gan.fit(X_inv, X_var)
        assert gan.generate(X_inv[:5]).shape == (5, X_var.shape[1])

    def test_discriminate_scores_in_unit_interval(self, recon_problem):
        X_inv, X_var, y = recon_problem
        gan = ConditionalGAN(noise_dim=2, hidden_size=16, epochs=2, random_state=0)
        gan.fit(X_inv, X_var, one_hot(y))
        scores = gan.discriminate(X_inv[:20], X_var[:20], one_hot(y)[:20])
        assert scores.shape == (20,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_n_draws_averages(self, recon_problem):
        X_inv, X_var, y = recon_problem
        gan = ConditionalGAN(noise_dim=4, hidden_size=16, epochs=2, random_state=0)
        gan.fit(X_inv, X_var, one_hot(y))
        one = gan.generate(X_inv[:5], n_draws=1, random_state=0)
        many = gan.generate(X_inv[:5], n_draws=20, random_state=0)
        assert one.shape == many.shape

    def test_generate_before_fit(self):
        with pytest.raises(NotFittedError):
            ConditionalGAN().generate(np.zeros((2, 3)))

    def test_row_mismatch_rejected(self, recon_problem):
        X_inv, X_var, y = recon_problem
        with pytest.raises(ValidationError):
            ConditionalGAN(epochs=1).fit(X_inv[:10], X_var[:9], one_hot(y[:9]))

    def test_wrong_inference_width_rejected(self, recon_problem):
        X_inv, X_var, y = recon_problem
        gan = ConditionalGAN(noise_dim=2, hidden_size=16, epochs=1, random_state=0)
        gan.fit(X_inv, X_var, one_hot(y))
        with pytest.raises(ValidationError):
            gan.generate(np.zeros((2, X_inv.shape[1] + 1)))


class TestConditionalVAE:
    def test_beats_trivial_baseline(self, recon_problem):
        X_inv, X_var, y = recon_problem
        vae = ConditionalVAE(latent_dim=4, hidden_size=64, epochs=120, random_state=0)
        vae.fit(X_inv, X_var)
        out = vae.generate(X_inv)
        mse = np.mean((out - X_var) ** 2)
        trivial = np.mean((X_var.mean(axis=0) - X_var) ** 2)
        assert mse < trivial

    def test_loss_decreases(self, recon_problem):
        X_inv, X_var, _ = recon_problem
        vae = ConditionalVAE(latent_dim=4, hidden_size=32, epochs=40, random_state=0)
        vae.fit(X_inv, X_var)
        assert vae.history_[-1] < vae.history_[0]

    def test_generate_shape(self, recon_problem):
        X_inv, X_var, _ = recon_problem
        vae = ConditionalVAE(latent_dim=2, hidden_size=16, epochs=2, random_state=0)
        vae.fit(X_inv, X_var)
        assert vae.generate(X_inv[:7]).shape == (7, X_var.shape[1])

    def test_rejects_bad_beta(self):
        with pytest.raises(ValidationError):
            ConditionalVAE(beta=-1.0)


class TestVanillaAutoencoder:
    def test_reconstruction_quality(self, recon_problem):
        X_inv, X_var, _ = recon_problem
        ae = VanillaAutoencoder(hidden_size=64, epochs=120, random_state=0)
        ae.fit(X_inv, X_var)
        out = ae.generate(X_inv)
        mse = np.mean((out - X_var) ** 2)
        trivial = np.mean((X_var.mean(axis=0) - X_var) ** 2)
        assert mse < 0.7 * trivial

    def test_deterministic_generation(self, recon_problem):
        X_inv, X_var, _ = recon_problem
        ae = VanillaAutoencoder(hidden_size=16, epochs=2, random_state=0)
        ae.fit(X_inv, X_var)
        np.testing.assert_array_equal(ae.generate(X_inv[:4]), ae.generate(X_inv[:4]))

    def test_loss_decreases(self, recon_problem):
        X_inv, X_var, _ = recon_problem
        ae = VanillaAutoencoder(hidden_size=32, epochs=30, random_state=0)
        ae.fit(X_inv, X_var)
        assert ae.history_[-1] < ae.history_[0]

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            VanillaAutoencoder().generate(np.zeros((2, 3)))
