"""Tests for the 5GC / 5GIPC benchmark generators and DriftBenchmark."""

import numpy as np
import pytest

from repro.datasets import (
    FiveGCConfig,
    FiveGIPCConfig,
    build_5gc_scm,
    build_5gipc_scm,
    make_5gc,
    make_5gipc,
    make_5gipc_multitarget,
)
from repro.datasets.fivegc import CLASS_NAMES as FIVEGC_CLASSES
from repro.utils.errors import ValidationError


class TestFiveGCSchema:
    def test_paper_scale_feature_count(self):
        scm, _, groups = build_5gc_scm(FiveGCConfig())
        assert scm.n_features == 442  # the paper's metric count

    def test_sixteen_classes(self):
        assert len(FIVEGC_CLASSES) == 16
        assert FIVEGC_CLASSES[0] == "normal"
        assert sum("amf" in name for name in FIVEGC_CLASSES) == 5

    def test_schema_deterministic(self):
        cfg = FiveGCConfig(feature_scale=0.2)
        scm1, iv1, _ = build_5gc_scm(cfg)
        scm2, iv2, _ = build_5gc_scm(cfg)
        assert scm1.feature_names == scm2.feature_names
        assert iv1 == iv2

    def test_groups_partition_features(self):
        scm, _, groups = build_5gc_scm(FiveGCConfig(feature_scale=0.2))
        all_ids = sorted(i for ids in groups.values() for i in ids)
        # group index omits only the per-VNF load drivers (3 nodes)
        assert len(all_ids) == scm.n_features - 3

    def test_interventions_are_real(self):
        _, interventions, _ = build_5gc_scm(FiveGCConfig(feature_scale=0.2))
        assert len(interventions) > 0
        assert all(not iv.is_identity() for iv in interventions)

    def test_intervention_strength_scales_shift(self):
        _, iv1, _ = build_5gc_scm(FiveGCConfig(feature_scale=0.2, intervention_strength=1.0))
        _, iv2, _ = build_5gc_scm(FiveGCConfig(feature_scale=0.2, intervention_strength=2.0))
        assert abs(iv2[0].shift) == pytest.approx(2 * abs(iv1[0].shift))

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            FiveGCConfig(n_source=2)
        with pytest.raises(ValidationError):
            FiveGCConfig(feature_scale=0.0)

    def test_scaled_config(self):
        small = FiveGCConfig().scaled(0.2)
        assert small.n_source < 3645
        with pytest.raises(ValidationError):
            FiveGCConfig().scaled(0.0)


class TestFiveGCBenchmark:
    def test_shapes(self, tiny_5gc):
        assert tiny_5gc.X_source.shape[0] == tiny_5gc.y_source.shape[0]
        assert tiny_5gc.X_target.shape[1] == tiny_5gc.X_source.shape[1]
        assert len(tiny_5gc.feature_names) == tiny_5gc.n_features

    def test_all_classes_present(self, tiny_5gc):
        assert set(tiny_5gc.y_source.tolist()) == set(range(16))
        assert set(tiny_5gc.y_target.tolist()) == set(range(16))

    def test_drift_exists(self, tiny_5gc):
        """The true variant features must actually shift between domains."""
        variant = tiny_5gc.true_variant_indices
        src = tiny_5gc.X_source[:, variant]
        tgt = tiny_5gc.X_target[:, variant]
        shift = np.abs(src.mean(axis=0) - tgt.mean(axis=0)) / (src.std(axis=0) + 1e-9)
        assert shift.mean() > 0.5

    def test_invariant_features_stable(self, tiny_5gc):
        invariant = np.setdiff1d(
            np.arange(tiny_5gc.n_features), tiny_5gc.true_variant_indices
        )
        src = tiny_5gc.X_source[:, invariant]
        tgt = tiny_5gc.X_target[:, invariant]
        shift = np.abs(src.mean(axis=0) - tgt.mean(axis=0)) / (src.std(axis=0) + 1e-9)
        # invariant features shift far less than variant ones on average
        assert np.median(shift) < 0.3

    def test_reproducible(self):
        cfg = FiveGCConfig(n_source=64, n_target=64, feature_scale=0.12)
        a = make_5gc(cfg, random_state=9)
        b = make_5gc(cfg, random_state=9)
        np.testing.assert_array_equal(a.X_source, b.X_source)
        np.testing.assert_array_equal(a.y_target, b.y_target)

    def test_few_shot_split_counts(self, tiny_5gc):
        X_few, y_few, X_test, y_test = tiny_5gc.few_shot_split(5, random_state=0)
        assert len(X_few) == 5 * 16
        assert len(X_few) + len(X_test) == len(tiny_5gc.X_target)
        for c in range(16):
            assert np.sum(y_few == c) == 5

    def test_few_shot_split_disjoint(self, tiny_5gc):
        X_few, _, X_test, _ = tiny_5gc.few_shot_split(1, random_state=0)
        # no row of X_few may appear in X_test
        joined = np.vstack([X_few, X_test])
        assert len(np.unique(joined, axis=0)) == len(joined)


class TestFiveGIPCBenchmark:
    def test_paper_scale_feature_count(self):
        scm, _, _ = build_5gipc_scm(FiveGIPCConfig())
        assert scm.n_features == 121  # 5 VNFs × 24 metrics + traffic root

    def test_binary_labels(self, tiny_5gipc):
        assert set(tiny_5gipc.y_source.tolist()) == {0, 1}
        assert tiny_5gipc.class_names == ["normal", "faulty"]

    def test_fault_type_metadata(self, tiny_5gipc):
        types = tiny_5gipc.metadata["y_target_fault_type"]
        assert len(types) == len(tiny_5gipc.y_target)
        # binarization consistency
        np.testing.assert_array_equal((types > 0).astype(int), tiny_5gipc.y_target)

    def test_class_imbalance_matches_paper_shape(self, tiny_5gipc):
        """Normal dominates, packet_loss/delay are the most common faults."""
        types = tiny_5gipc.metadata["y_source_fault_type"]
        counts = np.bincount(types, minlength=5)
        assert counts[0] == counts.max()  # normal majority

    def test_few_shot_split_stratifies_by_fault_type(self, tiny_5gipc):
        X_few, y_few, _, _ = tiny_5gipc.few_shot_split(1, random_state=0)
        # 1 shot per fault type = 5 samples (normal + 4 fault types)
        assert len(X_few) == 5
        assert np.sum(y_few == 0) == 1
        assert np.sum(y_few == 1) == 4

    def test_multitarget_shares_source(self):
        cfg = FiveGIPCConfig(sample_scale=0.05, feature_scale=0.5)
        b1, b2 = make_5gipc_multitarget(cfg, random_state=0)
        np.testing.assert_array_equal(b1.X_source, b2.X_source)
        assert not np.array_equal(b1.X_target, b2.X_target)

    def test_multitarget_variant_overlap(self):
        cfg = FiveGIPCConfig(sample_scale=0.05, feature_scale=0.5)
        b1, b2 = make_5gipc_multitarget(cfg, random_state=0)
        s1 = set(b1.true_variant_indices.tolist())
        s2 = set(b2.true_variant_indices.tolist())
        jaccard = len(s1 & s2) / len(s1 | s2)
        assert jaccard > 0.5  # the paper's "majority common" property

    def test_drift_profile_validated(self):
        with pytest.raises(ValidationError):
            FiveGIPCConfig(drift_profile=5)
