"""Tests for the bounded streaming sketches (repro.obs.sketch)."""

import math

import numpy as np
import pytest

from repro.obs.sketch import DistributionSketch, QuantileSketch
from repro.utils.errors import ValidationError


class TestQuantileSketchExactPath:
    def test_small_n_is_exact(self):
        sk = QuantileSketch()
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
        for v in values:
            sk.add(v)
        assert sk.exact
        for q in (0, 10, 25, 50, 75, 90, 100):
            assert sk.percentile(q) == float(np.percentile(values, q))

    def test_count_sum_min_max(self):
        sk = QuantileSketch()
        for v in (2.0, -1.0, 5.0):
            sk.add(v)
        assert sk.count == 3
        assert sk.total == 6.0
        assert sk.minimum == -1.0
        assert sk.maximum == 5.0

    def test_empty_percentile_is_nan(self):
        assert math.isnan(QuantileSketch().percentile(50))

    def test_percentile_bounds_validated(self):
        sk = QuantileSketch()
        sk.add(1.0)
        with pytest.raises(ValidationError):
            sk.percentile(-1)
        with pytest.raises(ValidationError):
            sk.percentile(100.5)


class TestQuantileSketchReservoir:
    def test_memory_stays_bounded(self):
        sk = QuantileSketch(exact_limit=100, capacity=100, seed=0)
        for v in range(100_000):
            sk.add(float(v))
        assert not sk.exact
        assert sk.count == 100_000
        assert sk.sample_size <= 100

    def test_extremes_stay_exact_past_cutoff(self):
        sk = QuantileSketch(exact_limit=50, capacity=50, seed=0)
        for v in range(10_000):
            sk.add(float(v))
        assert sk.percentile(0) == 0.0
        assert sk.percentile(100) == 9999.0

    def test_quantile_error_bound(self):
        # rank error of a k-sample reservoir is O(1/sqrt(k)); at the
        # default capacity 4096 the documented expectation is ~2% of
        # rank — enforced here as a conservative 3% bound against the
        # exact quantiles of a known stream.
        rng = np.random.default_rng(7)
        values = rng.standard_normal(200_000)
        sk = QuantileSketch(seed=0)  # defaults: exact_limit=capacity=4096
        for v in values:
            sk.add(float(v))
        n = len(values)
        ordered = np.sort(values)
        for q in (10, 50, 90, 99):
            approx = sk.percentile(q)
            # convert the value error back into rank space
            rank = np.searchsorted(ordered, approx) / n
            assert abs(rank - q / 100) < 0.03, f"p{q}: rank off by {rank - q / 100}"

    def test_deterministic_given_seed(self):
        def build():
            sk = QuantileSketch(exact_limit=64, capacity=64, seed=42)
            for v in range(5000):
                sk.add(float(v))
            return sk

        assert build().percentile(50) == build().percentile(50)

    def test_to_dict_flags_approximation(self):
        sk = QuantileSketch(exact_limit=10, capacity=10, seed=0)
        for v in range(8):
            sk.add(float(v))
        assert "approx" not in sk.to_dict()
        for v in range(100):
            sk.add(float(v))
        d = sk.to_dict()
        assert d["approx"] is True
        assert d["sample_size"] <= 10
        assert d["count"] == 108


class TestDistributionSketch:
    def test_no_drift_gives_small_psi(self, rng):
        ref = rng.standard_normal((2000, 4))
        sk = DistributionSketch(ref)
        sk.update(rng.standard_normal((2000, 4)))
        psi = sk.psi()
        assert psi.shape == (4,)
        assert np.all(psi < 0.1)

    def test_shift_raises_psi_on_affected_feature_only(self, rng):
        ref = rng.standard_normal((2000, 3))
        sk = DistributionSketch(ref)
        live = rng.standard_normal((2000, 3))
        live[:, 1] += 2.0  # shift feature 1 by 2 sigma
        sk.update(live)
        psi = sk.psi()
        assert psi[1] > 0.25
        assert psi[0] < 0.1 and psi[2] < 0.1

    def test_ks_tracks_shift(self, rng):
        ref = rng.standard_normal((2000, 2))
        sk = DistributionSketch(ref)
        live = rng.standard_normal((1000, 2))
        live[:, 0] += 1.5
        sk.update(live)
        ks = sk.ks()
        assert ks[0] > ks[1]
        assert ks[0] > 0.3

    def test_decay_halves_window(self, rng):
        sk = DistributionSketch(rng.standard_normal((500, 2)))
        sk.update(rng.standard_normal((400, 2)))
        before = sk.rows
        sk.decay(0.5)
        # per-bin integer truncation can drop a few rows below the half
        assert sk.rows == pytest.approx(before / 2, abs=sk.n_bins)

    def test_rejects_wrong_width(self, rng):
        sk = DistributionSketch(rng.standard_normal((100, 3)))
        with pytest.raises(ValidationError):
            sk.update(rng.standard_normal((10, 4)))
