"""Unit tests for the conditional-independence tests."""

import numpy as np
import pytest

from repro.causal import fisher_z_test, g_squared_test, regression_invariance_test
from repro.utils.errors import ValidationError


class TestFisherZ:
    def test_independent_high_p(self, rng):
        data = rng.standard_normal((500, 2))
        assert fisher_z_test(data, 0, 1) > 0.01

    def test_dependent_low_p(self, rng):
        x = rng.standard_normal(500)
        data = np.column_stack([x, x + 0.2 * rng.standard_normal(500)])
        assert fisher_z_test(data, 0, 1) < 1e-6

    def test_conditioning_on_common_cause(self, rng):
        z = rng.standard_normal(800)
        x = z + 0.5 * rng.standard_normal(800)
        y = z + 0.5 * rng.standard_normal(800)
        data = np.column_stack([x, y, z])
        assert fisher_z_test(data, 0, 1) < 1e-4          # marginally dependent
        assert fisher_z_test(data, 0, 1, (2,)) > 0.01    # independent given Z

    def test_collider_conditioning_induces_dependence(self, rng):
        x = rng.standard_normal(800)
        y = rng.standard_normal(800)
        c = x + y + 0.2 * rng.standard_normal(800)
        data = np.column_stack([x, y, c])
        assert fisher_z_test(data, 0, 1) > 0.01
        assert fisher_z_test(data, 0, 1, (2,)) < 1e-4

    def test_too_small_sample_returns_one(self, rng):
        data = rng.standard_normal((5, 4))
        assert fisher_z_test(data, 0, 1, (2, 3)) == 1.0

    def test_rejects_overlapping_indices(self, rng):
        data = rng.standard_normal((50, 3))
        with pytest.raises(ValidationError):
            fisher_z_test(data, 0, 0)
        with pytest.raises(ValidationError):
            fisher_z_test(data, 0, 1, (0,))

    def test_rejects_bad_index(self, rng):
        with pytest.raises(ValidationError):
            fisher_z_test(rng.standard_normal((50, 2)), 0, 5)

    def test_constant_column_independent(self, rng):
        data = np.column_stack([np.ones(100), rng.standard_normal(100)])
        assert fisher_z_test(data, 0, 1) == 1.0


class TestGSquared:
    def test_independent(self, rng):
        x = rng.integers(0, 2, 1000)
        y = rng.integers(0, 3, 1000)
        assert g_squared_test(x, y) > 0.01

    def test_dependent(self, rng):
        x = rng.integers(0, 2, 1000)
        y = np.where(rng.random(1000) < 0.9, x, 1 - x)
        assert g_squared_test(x, y) < 1e-6

    def test_conditional_independence(self, rng):
        z = rng.integers(0, 2, 2000)
        flip = lambda v, p: np.where(rng.random(len(v)) < p, v, 1 - v)  # noqa: E731
        x = flip(z, 0.85)
        y = flip(z, 0.85)
        assert g_squared_test(x, y) < 1e-4
        assert g_squared_test(x, y, z) > 0.01

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            g_squared_test(np.zeros(3, dtype=int), np.zeros(4, dtype=int))


class TestRegressionInvariance:
    def test_same_distribution_high_p(self, rng):
        xs = rng.standard_normal(600)
        xt = rng.standard_normal(60)
        assert regression_invariance_test(xs, xt) > 0.01

    def test_shifted_target_low_p(self, rng):
        xs = rng.standard_normal(600)
        xt = rng.standard_normal(60) + 3.0
        assert regression_invariance_test(xs, xt) < 1e-4

    def test_scale_change_detected(self, rng):
        xs = rng.standard_normal(600)
        xt = 4.0 * rng.standard_normal(100)
        assert regression_invariance_test(xs, xt) < 1e-3

    def test_conditioning_explains_parent_shift(self, rng):
        # child = 0.9 * parent + noise; only the parent is intervened
        z_s = rng.standard_normal(800)
        x_s = 0.9 * z_s + 0.3 * rng.standard_normal(800)
        z_t = rng.standard_normal(80) + 3.0
        x_t = 0.9 * z_t + 0.3 * rng.standard_normal(80)
        # marginally the child looks shifted
        assert regression_invariance_test(x_s, x_t) < 1e-3
        # conditionally on its parent it is invariant
        p = regression_invariance_test(x_s, x_t, z_s[:, None], z_t[:, None])
        assert p > 0.01

    def test_intervened_child_stays_dependent(self, rng):
        z_s = rng.standard_normal(800)
        x_s = 0.9 * z_s + 0.3 * rng.standard_normal(800)
        z_t = rng.standard_normal(80)
        x_t = 0.9 * z_t + 0.3 * rng.standard_normal(80) + 2.5  # own shift
        p = regression_invariance_test(x_s, x_t, z_s[:, None], z_t[:, None])
        assert p < 1e-3

    def test_tiny_target_sample_conservative(self, rng):
        xs = rng.standard_normal(600)
        xt = rng.standard_normal(1)
        assert regression_invariance_test(xs, xt) == 1.0

    def test_constant_columns(self):
        assert regression_invariance_test(np.ones(100), np.ones(10)) == 1.0
        assert regression_invariance_test(np.ones(100), np.zeros(10)) == 0.0

    def test_mismatched_conditioning_rejected(self, rng):
        with pytest.raises(ValidationError):
            regression_invariance_test(
                rng.standard_normal(10),
                rng.standard_normal(5),
                rng.standard_normal((4, 1)),
                rng.standard_normal((5, 1)),
            )

    def test_few_shot_power_grows_with_samples(self, rng):
        """Smaller shifts need more target samples — the paper's §VI-C effect."""
        xs = rng.standard_normal(2000)
        shift = 0.8
        p_small = np.median([
            regression_invariance_test(xs, rng.standard_normal(8) + shift)
            for _ in range(20)
        ])
        p_large = np.median([
            regression_invariance_test(xs, rng.standard_normal(120) + shift)
            for _ in range(20)
        ])
        assert p_large < p_small
