"""Tests for the drift monitor and adapter persistence extensions."""

import numpy as np
import pytest

from repro.core import (
    DriftMonitor,
    FSGANPipeline,
    ReconstructionConfig,
    load_adapter,
    save_adapter,
)
from repro.ml import MLPClassifier, macro_f1
from repro.utils.errors import ValidationError


def fast_mlp():
    return MLPClassifier(hidden_sizes=(32,), epochs=15, random_state=0)


@pytest.fixture(scope="module")
def fitted_pipeline(tiny_5gc):
    X_few, _, _, _ = tiny_5gc.few_shot_split(5, random_state=0)
    pipe = FSGANPipeline(
        fast_mlp,
        reconstruction_config=ReconstructionConfig(epochs=40, hidden_size=32,
                                                    noise_dim=4),
        random_state=0,
    )
    pipe.fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
    return pipe


class TestDriftMonitor:
    def test_requires_fitted_pipeline(self):
        with pytest.raises(ValidationError):
            DriftMonitor(FSGANPipeline(fast_mlp))

    def test_same_drift_reports_stable(self, fitted_pipeline, tiny_5gc):
        monitor = DriftMonitor(fitted_pipeline, jaccard_threshold=0.3,
                               min_new_variants=5)
        X_few, _, _, _ = tiny_5gc.few_shot_split(5, random_state=11)
        report = monitor.observe(X_few)
        assert report.jaccard > 0.5
        assert not report.drifted

    def test_source_like_batch_reports_no_drift_targets(self, fitted_pipeline, tiny_5gc):
        monitor = DriftMonitor(fitted_pipeline)
        report = monitor.observe(tiny_5gc.X_source[:50])
        # a source batch has (near) no variants: no NEW targets appear
        assert len(report.new_variant) <= 1

    def test_history_recorded(self, fitted_pipeline, tiny_5gc):
        monitor = DriftMonitor(fitted_pipeline)
        X_few, _, _, _ = tiny_5gc.few_shot_split(1, random_state=0)
        monitor.observe(X_few)
        monitor.observe(X_few)
        assert len(monitor.history) == 2

    def test_observe_and_refresh_keeps_model(self, fitted_pipeline, tiny_5gc):
        monitor = DriftMonitor(fitted_pipeline, jaccard_threshold=0.99,
                               min_new_variants=1)
        model_before = fitted_pipeline.model_
        X_few, _, _, _ = tiny_5gc.few_shot_split(10, random_state=99)
        report, refreshed = monitor.observe_and_refresh(X_few)
        assert fitted_pipeline.model_ is model_before
        if refreshed:
            assert report.drifted

    def test_feature_mismatch(self, fitted_pipeline):
        monitor = DriftMonitor(fitted_pipeline)
        with pytest.raises(ValidationError):
            monitor.observe(np.zeros((5, 3)))

    def test_threshold_validated(self, fitted_pipeline):
        with pytest.raises(ValidationError):
            DriftMonitor(fitted_pipeline, jaccard_threshold=1.5)
        with pytest.raises(ValidationError):
            DriftMonitor(fitted_pipeline, min_new_variants=0)


class TestMonitorMetricsBridge:
    def test_observe_publishes_gauges_and_pvalue_summary(
        self, fitted_pipeline, tiny_5gc
    ):
        from repro.obs.metrics import MetricsRegistry, set_metrics

        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            monitor = DriftMonitor(fitted_pipeline)
            X_few, _, _, _ = tiny_5gc.few_shot_split(5, random_state=11)
            report = monitor.observe(X_few)
        finally:
            set_metrics(previous)
        assert registry.counter("monitor.observations_total").value == 1
        assert registry.gauge("monitor.jaccard").value == report.jaccard
        assert registry.gauge("monitor.n_variant").value == report.n_variant
        assert (registry.gauge("monitor.new_variants").value
                == len(report.new_variant))
        # per-observation p-value summary
        p_min = registry.gauge("monitor.p_value_min").value
        assert 0.0 <= p_min <= registry.gauge("monitor.p_value_median").value
        assert 0.0 <= registry.gauge("monitor.frac_significant").value <= 1.0
        drifted_total = registry.counter("monitor.drifted_total").value
        assert drifted_total == (1 if report.drifted else 0)

    def test_drifted_observation_emits_alarm_event(
        self, fitted_pipeline, tiny_5gc
    ):
        from repro.obs.export import EventLog, set_event_log

        events = EventLog()
        previous = set_event_log(events)
        try:
            # jaccard_threshold=1.0 is invalid; 0.99 + min_new_variants=1
            # makes almost any batch count as drifted
            monitor = DriftMonitor(fitted_pipeline, jaccard_threshold=0.99,
                                   min_new_variants=1)
            X_few, _, _, _ = tiny_5gc.few_shot_split(10, random_state=99)
            report = monitor.observe(X_few)
        finally:
            set_event_log(previous)
        kinds = [e["kind"] for e in events.events]
        assert "drift.observe" in kinds
        if report.drifted:
            alarm = next(e for e in events.events
                         if e["kind"] == "drift.alarm")
            assert alarm["source"] == "monitor"
            assert alarm["jaccard"] == report.jaccard


class TestAdapterPersistence:
    def test_round_trip_predictions_identical(self, fitted_pipeline, tiny_5gc,
                                              tmp_path):
        _, _, X_test, y_test = tiny_5gc.few_shot_split(5, random_state=0)
        path = save_adapter(fitted_pipeline, tmp_path / "adapter.npz")
        assert path.exists()

        # a "freshly deployed" pipeline object holding the same model
        fresh = FSGANPipeline(fast_mlp, random_state=0)
        fresh.model_ = fitted_pipeline.model_
        load_adapter(path, fresh)

        # the generator is deterministic given the same inputs + z; compare
        # the full transform with a fixed noise draw via predictions
        a = fitted_pipeline.model_.predict(fitted_pipeline.transform(X_test[:40]))
        b = fresh.model_.predict(fresh.transform(X_test[:40]))
        # same weights, same invariant passthrough: F1 must match closely
        assert abs(macro_f1(y_test[:40], a) - macro_f1(y_test[:40], b)) < 0.15

    def test_round_trip_structure(self, fitted_pipeline, tmp_path):
        path = save_adapter(fitted_pipeline, tmp_path / "adapter.npz")
        fresh = FSGANPipeline(fast_mlp, random_state=0)
        fresh.model_ = fitted_pipeline.model_
        load_adapter(path, fresh)
        np.testing.assert_array_equal(
            fresh.separator_.variant_indices_,
            fitted_pipeline.separator_.variant_indices_,
        )
        np.testing.assert_array_equal(
            fresh.scaler_.data_min_, fitted_pipeline.scaler_.data_min_
        )
        # generator weights identical
        a = fitted_pipeline.reconstructor_.model_.generator_.state_dict()
        b = fresh.reconstructor_.model_.generator_.state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_unfitted_pipeline_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            save_adapter(FSGANPipeline(fast_mlp), tmp_path / "x.npz")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_adapter(tmp_path / "missing.npz", FSGANPipeline(fast_mlp))

    def test_non_gan_strategy_rejected(self, tiny_5gc, tmp_path):
        X_few, _, _, _ = tiny_5gc.few_shot_split(1, random_state=0)
        pipe = FSGANPipeline(
            fast_mlp,
            reconstruction_config=ReconstructionConfig(
                strategy="autoencoder", epochs=2, hidden_size=8
            ),
            random_state=0,
        )
        pipe.fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        with pytest.raises(ValidationError, match="GAN"):
            save_adapter(pipe, tmp_path / "x.npz")
