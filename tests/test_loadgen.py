"""Load generator: deterministic traffic, both loops, capture replay."""

import numpy as np
import pytest

from repro.experiments.loadgen import (
    _poisson_schedule,
    build_requests,
    replay_capture,
    run_loadgen,
)
from repro.serve import DaemonConfig, ServeDaemon
from repro.utils.errors import ValidationError

CAP = 64


def _daemon(root, **overrides):
    defaults = dict(root=str(root), port=None, micro_batch_rows=CAP)
    defaults.update(overrides)
    return ServeDaemon(DaemonConfig(**defaults))


class TestTrafficGeneration:
    def test_schedule_is_seeded(self):
        a = _poisson_schedule(100.0, 1.0, seed=7)
        b = _poisson_schedule(100.0, 1.0, seed=7)
        c = _poisson_schedule(100.0, 1.0, seed=8)
        assert a == b and a != c
        assert all(0 < t < 1.0 for t in a)
        # a 100 req/s process over 1 s lands near 100 arrivals
        assert 50 < len(a) < 200

    def test_requests_are_seeded_and_cyclic(self, rng):
        X = rng.standard_normal((20, 4))
        reqs = build_requests(X, ["a", "b"], count=50,
                              rows_per_request=(1, 6), seed=3)
        again = build_requests(X, ["a", "b"], count=50,
                               rows_per_request=(1, 6), seed=3)
        assert len(reqs) == 50
        for (ta, xa), (tb, xb) in zip(reqs, again):
            assert ta == tb
            np.testing.assert_array_equal(xa, xb)
        assert {t for t, _ in reqs} == {"a", "b"}
        assert all(1 <= x.shape[0] <= 6 for _, x in reqs)

    def test_validation(self, rng):
        X = rng.standard_normal((20, 4))
        with pytest.raises(ValidationError, match="tenant"):
            build_requests(X, [], count=5)
        with pytest.raises(ValidationError, match="rows_per_request"):
            build_requests(X, ["a"], count=5, rows_per_request=(3, 2))
        with pytest.raises(ValidationError, match="mode"):
            run_loadgen(object(), X, ["a"], mode="sideways")


class TestRunLoadgen:
    def test_open_loop_with_capture_replays_exactly(self, tenant_root):
        root, names, X_test = tenant_root
        with _daemon(root) as daemon:
            result = run_loadgen(
                daemon, X_test, names, mode="open", duration=0.8,
                rate=150.0, clients=6, seed=0, capture=True,
            )
        assert result["errors"] == 0
        assert result["requests"] == result["offered_requests"]
        latency = result["latency"]
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert sum(s["requests"] for s in result["per_tenant"].values()) \
            == result["requests"]
        diff = replay_capture(root, result["capture"], micro_batch_rows=CAP)
        assert diff == 0.0

    def test_closed_loop_saturates(self, tenant_root):
        root, names, X_test = tenant_root
        with _daemon(root) as daemon:
            result = run_loadgen(
                daemon, X_test, names[:1], mode="closed", duration=0.5,
                clients=3, seed=1,
            )
        assert result["errors"] == 0
        assert result["requests"] > 0
        assert result["rows_per_sec"] > 0
        assert "offered_rate" not in result

    def test_http_target(self, tenant_root):
        root, names, X_test = tenant_root
        with _daemon(root, port=0) as daemon:
            result = run_loadgen(
                daemon.url, X_test, names, mode="open", duration=0.5,
                rate=60.0, clients=4, seed=2, capture=True,
            )
            assert result["errors"] == 0
            diff = replay_capture(root, result["capture"],
                                  micro_batch_rows=CAP)
        assert diff == 0.0

    def test_errors_are_counted_not_raised(self, tenant_root):
        root, _, X_test = tenant_root
        with _daemon(root) as daemon:
            result = run_loadgen(
                daemon, X_test, ["ghost-tenant"], mode="open",
                duration=0.3, rate=30.0, clients=2, seed=0,
            )
        assert result["requests"] == 0
        assert result["errors"] > 0
        assert "first_error" in result


class TestReplayCapture:
    def test_rejects_gappy_capture(self, tenant_root):
        root, names, X_test = tenant_root
        with _daemon(root) as daemon:
            result = run_loadgen(
                daemon, X_test, names[:1], mode="open", duration=0.4,
                rate=60.0, clients=2, seed=0, capture=True,
            )
        capture = [c for c in result["capture"] if c[1] != 0]  # drop seq 0
        if not capture:
            pytest.skip("tiny run produced a single request")
        with pytest.raises(ValidationError, match="seq"):
            replay_capture(root, capture, micro_batch_rows=CAP)

    def test_detects_tampered_proba(self, tenant_root):
        root, names, X_test = tenant_root
        with _daemon(root) as daemon:
            result = run_loadgen(
                daemon, X_test, names[:1], mode="open", duration=0.4,
                rate=60.0, clients=2, seed=0, capture=True,
            )
        capture = result["capture"]
        tenant, seq, rows, proba = capture[0]
        capture[0] = (tenant, seq, rows, proba + 1e-9)
        diff = replay_capture(root, capture, micro_batch_rows=CAP)
        assert diff > 0.0
