"""Suite registry: hook resolution, shared record shape, per-suite oracles."""

import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

from repro.experiments.bench_registry import (
    SUITES,
    BenchRecord,
    check_record_shape,
    get_suite,
    suite_for_schema,
    _resolve,
)


def _record(**overrides):
    base = BenchRecord(
        suite="serve", dataset="5gc", preset="smoke", seed=0,
        before={"serve_seconds": 2.0, "rows_per_sec": 100.0},
        after={"serve_seconds": 1.0, "rows_per_sec": 200.0},
        speedup=2.0, equivalent=True,
        extras={"max_abs_diff": 0.0},
    ).to_dict()
    base.update(overrides)
    return base


class TestRegistry:
    def test_every_suite_declares_hooks(self):
        for suite in SUITES.values():
            assert suite.cli and suite.oracle
            assert callable(_resolve(suite.cli))
            assert callable(_resolve(suite.oracle))

    def test_unknown_suite_and_bad_hook(self):
        with pytest.raises(KeyError, match="unknown bench suite"):
            get_suite("nope")
        with pytest.raises(ValueError, match="module:function"):
            _resolve("no-colon")

    def test_suite_for_schema_round_trips(self):
        for suite in SUITES.values():
            assert suite_for_schema(suite.schema) is suite
        assert suite_for_schema("other/v9") is None


class TestSharedShape:
    def test_sound_record_passes(self):
        assert check_record_shape(_record()) == []

    def test_missing_fields_reported(self):
        record = _record()
        record.pop("before")
        record.pop("speedup")
        problems = check_record_shape(record)
        assert any("before" in p for p in problems)
        assert any("speedup" in p for p in problems)

    def test_bad_speedup_and_equivalence(self):
        assert check_record_shape(_record(speedup=0.0))
        assert check_record_shape(_record(equivalent=False))


class TestServeOracle:
    def test_accepts_committed_records(self):
        suite = get_suite("serve")
        with open(REPO / "BENCH_serve.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema"] == suite.schema
        assert "5gc/sustained/seed0" in doc["records"]
        for key, record in doc["records"].items():
            assert suite.check_record(record) == [], key

    def test_rejects_nonzero_diff(self):
        suite = get_suite("serve")
        problems = suite.check_record(_record(max_abs_diff=1e-12))
        assert any("max_abs_diff" in p for p in problems)

    def test_rejects_negative_telemetry(self):
        suite = get_suite("serve")
        record = _record(telemetry={"metrics_overhead": -0.01})
        assert any("telemetry" in p for p in suite.check_record(record))

    def test_sustained_needs_latency_trio(self):
        suite = get_suite("serve")
        record = _record(
            preset="sustained",
            before={"rows_per_sec": 100.0, "errors": 0},
            after={"rows_per_sec": 200.0, "errors": 0},
            open_loop={"latency": {"p50": 0.002, "p90": 0.001, "p99": 0.004}},
        )
        assert any("out of order" in p for p in suite.check_record(record))
        record["open_loop"]["latency"] = {}
        assert any("incomplete" in p for p in suite.check_record(record))
        record["open_loop"]["latency"] = {
            "p50": 0.001, "p90": 0.002, "p99": 0.004,
        }
        assert suite.check_record(record) == []

    def test_sustained_rejects_errors_and_zero_throughput(self):
        suite = get_suite("serve")
        record = _record(
            preset="sustained",
            before={"rows_per_sec": 0.0, "errors": 2},
            after={"rows_per_sec": 200.0, "errors": 0},
            open_loop={"latency": {"p50": 1e-3, "p90": 2e-3, "p99": 3e-3}},
        )
        problems = suite.check_record(record)
        assert any("rows_per_sec" in p for p in problems)
        assert any("errors" in p for p in problems)


class TestOtherOracles:
    def test_fs_oracle_on_committed_records(self):
        suite = get_suite("fs")
        with open(REPO / "BENCH_fs.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        for key, record in doc["records"].items():
            assert suite.check_record(record) == [], key

    def test_nn_oracle_on_committed_records(self):
        suite = get_suite("nn")
        with open(REPO / "BENCH_nn.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        for key, record in doc["records"].items():
            assert suite.check_record(record) == [], key

    def test_fs_oracle_flags_test_count_divergence(self):
        suite = get_suite("fs")
        record = _record(
            before={"fs_seconds": 2.0, "n_ci_tests": 100},
            after={"fs_seconds": 1.0, "n_ci_tests": 90},
        )
        assert any("CI test counts" in p for p in suite.check_record(record))
        record["after_mode"] = "per_feature+shm+prune_k=2+float32"
        assert suite.check_record(record) == []

    def test_adapt_oracle_on_committed_records(self):
        suite = get_suite("adapt")
        with open(REPO / "BENCH_adapt.json", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema"] == suite.schema
        for key, record in doc["records"].items():
            assert suite.check_record(record) == [], key

    def test_adapt_oracle_flags_inconsistencies(self):
        suite = get_suite("adapt")
        with open(REPO / "BENCH_adapt.json", encoding="utf-8") as fh:
            sound = next(iter(json.load(fh)["records"].values()))
        # a pre-onset alarm is a false positive, not a detection
        record = dict(sound, alarm_batch=sound["onset_batch"] - 1)
        assert any("precedes onset" in p for p in suite.check_record(record))
        record = dict(sound, before=dict(sound["before"], mode="confirm"))
        assert any("cold" in p for p in suite.check_record(record))
        record = dict(sound, detection_latency_batches=-2)
        assert any(
            "detection_latency" in p for p in suite.check_record(record)
        )
