"""ServeDaemon lifecycle and the HTTP wire format."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import DaemonConfig, PlanCache, ServeDaemon
from repro.serve.daemon import format_daemon_summary
from repro.utils.errors import ValidationError


def _config(root, **overrides):
    defaults = dict(root=str(root), port=0, micro_batch_rows=64,
                    cache_size=8, max_wait=0.0)
    defaults.update(overrides)
    return DaemonConfig(**defaults)


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return json.loads(resp.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.headers.get("Content-Type"), resp.read()


class TestLifecycle:
    def test_in_process_scoring(self, tenant_root):
        root, names, X_test = tenant_root
        with ServeDaemon(_config(root, port=None)) as daemon:
            assert daemon.url is None
            proba = daemon.score(names[0], X_test[:5])
            assert proba.shape[0] == 5
            np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_double_start_rejected(self, tenant_root):
        root, _, _ = tenant_root
        daemon = ServeDaemon(_config(root, port=None)).start()
        try:
            with pytest.raises(ValidationError, match="already started"):
                daemon.start()
        finally:
            daemon.stop()

    def test_stop_returns_stats_and_is_idempotent(self, tenant_root):
        root, names, X_test = tenant_root
        daemon = ServeDaemon(_config(root, port=None)).start()
        daemon.score(names[0], X_test[:3])
        stats = daemon.stop()
        assert stats["batcher"]["requests"] == 1
        assert stats["batcher"]["rows"] == 3
        assert names[0] in stats["cache"]["loaded"]
        assert "daemon.request_seconds" in stats["latency"]
        assert daemon.stop() == {}

    def test_submit_when_stopped_raises(self, tenant_root):
        root, names, X_test = tenant_root
        daemon = ServeDaemon(_config(root, port=None))
        with pytest.raises(ValidationError, match="not running"):
            daemon.submit(names[0], X_test[:1])

    def test_config_overrides_shortcut(self, tenant_root):
        root, _, _ = tenant_root
        daemon = ServeDaemon(root=str(root), port=None)
        assert daemon.config.root == str(root)
        with pytest.raises(ValidationError):
            ServeDaemon(DaemonConfig(), port=None)

    def test_summary_formats(self, tenant_root):
        root, names, X_test = tenant_root
        with ServeDaemon(_config(root, port=None)) as daemon:
            daemon.score(names[0], X_test[:2])
            stats = daemon.stats()
        text = format_daemon_summary(stats)
        assert "1 requests" in text and "cache:" in text
        assert format_daemon_summary({}) == "daemon served no requests"


class TestHTTP:
    def test_score_round_trip(self, tenant_root):
        root, names, X_test = tenant_root
        with ServeDaemon(_config(root)) as daemon:
            payload = _post(f"{daemon.url}/v1/score/{names[0]}",
                            {"x": X_test[:4].tolist()})
            direct = ServeDaemon(_config(root, port=None))
            with direct:
                expected = direct.score(names[0], X_test[:4])
        assert payload["tenant"] == names[0]
        assert payload["rows"] == 4 and payload["seq"] == 0
        np.testing.assert_array_equal(
            np.asarray(payload["proba"]), expected)
        assert len(payload["labels"]) == 4

    def test_health_tenants_stats_metrics(self, tenant_root):
        root, names, X_test = tenant_root
        with ServeDaemon(_config(root)) as daemon:
            daemon.score(names[0], X_test[:2])
            ctype, body = _get(f"{daemon.url}/healthz")
            assert json.loads(body) == {"status": "ok"}
            _, body = _get(f"{daemon.url}/v1/tenants")
            tenants = json.loads(body)
            assert tenants["known"] == names
            assert names[0] in tenants["loaded"]
            _, body = _get(f"{daemon.url}/v1/stats")
            assert json.loads(body)["batcher"]["requests"] == 1
            ctype, body = _get(f"{daemon.url}/metrics")
            assert ctype.startswith("text/plain")
            assert b"daemon_requests_total" in body

    def test_error_mapping(self, tenant_root):
        root, names, X_test = tenant_root
        with ServeDaemon(_config(root)) as daemon:
            cases = [
                (f"/v1/score/ghost", {"x": X_test[:1].tolist()}, 404),
                (f"/v1/score/{names[0]}", {"x": [[1.0, 2.0]]}, 400),
                (f"/v1/score/{names[0]}", {"y": 1}, 400),
                (f"/v1/score/{names[0]}", {"x": "not a matrix"}, 400),
                (f"/nope", {"x": []}, 404),
            ]
            for path, payload, expected in cases:
                with pytest.raises(urllib.error.HTTPError) as err:
                    _post(daemon.url + path, payload)
                assert err.value.code == expected, path
                assert "error" in json.loads(err.value.read())

    def test_get_unknown_route_404(self, tenant_root):
        root, _, _ = tenant_root
        with ServeDaemon(_config(root)) as daemon:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{daemon.url}/v1/unknown")
            assert err.value.code == 404

    def test_http_matches_in_process_bitwise(self, tenant_root):
        root, names, X_test = tenant_root
        with ServeDaemon(_config(root)) as daemon:
            via_http = np.asarray(_post(
                f"{daemon.url}/v1/score/{names[1]}",
                {"x": X_test[:6].tolist()})["proba"])
        cache = PlanCache(root, capacity=8, micro_batch_rows=64)
        executor = cache.get(names[1]).executor
        expected = executor.score([executor.check_request(X_test[:6])])[0]
        np.testing.assert_array_equal(via_http, expected)
