"""Unit + property tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    macro_f1,
    precision_recall_f1,
)
from repro.utils.errors import ValidationError

label_pairs = st.integers(2, 60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 4), min_size=n, max_size=n),
        st.lists(st.integers(0, 4), min_size=n, max_size=n),
    )
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy_score([1, 1, 0, 0], [1, 0, 0, 1]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy_score([], [])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy_score([1, 2], [1])


class TestConfusionMatrix:
    def test_values(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_row_sums_are_class_counts(self):
        y_true = [0, 0, 1, 2, 2, 2]
        cm = confusion_matrix(y_true, [0, 1, 1, 2, 0, 2])
        np.testing.assert_array_equal(cm.sum(axis=1), [2, 1, 3])

    def test_explicit_labels_order(self):
        cm = confusion_matrix([1, 0], [1, 0], labels=[1, 0])
        np.testing.assert_array_equal(cm, [[1, 0], [0, 1]])


class TestF1:
    def test_perfect_macro(self):
        assert macro_f1([0, 1, 2], [0, 1, 2]) == 1.0

    def test_known_binary_value(self):
        # TP=2, FP=1, FN=1 → P=2/3, R=2/3, F1=2/3
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert f1_score(y_true, y_pred, average="binary") == pytest.approx(2 / 3)

    def test_micro_equals_accuracy(self):
        y_true = [0, 1, 2, 2, 1]
        y_pred = [0, 2, 2, 1, 1]
        assert f1_score(y_true, y_pred, average="micro") == accuracy_score(y_true, y_pred)

    def test_weighted_vs_macro_on_imbalance(self):
        y_true = [0] * 9 + [1]
        y_pred = [0] * 10
        assert f1_score(y_true, y_pred, average="weighted") > macro_f1(y_true, y_pred)

    def test_unknown_average(self):
        with pytest.raises(ValidationError):
            f1_score([0, 1], [0, 1], average="nope")

    def test_binary_requires_two_classes(self):
        with pytest.raises(ValidationError):
            f1_score([0, 1, 2], [0, 1, 2], average="binary")

    @settings(max_examples=50, deadline=None)
    @given(label_pairs)
    def test_bounds_property(self, pair):
        y_true, y_pred = pair
        value = macro_f1(y_true, y_pred)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(label_pairs)
    def test_permutation_invariance(self, pair):
        y_true, y_pred = np.array(pair[0]), np.array(pair[1])
        perm = np.random.default_rng(0).permutation(len(y_true))
        assert macro_f1(y_true, y_pred) == pytest.approx(
            macro_f1(y_true[perm], y_pred[perm])
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=2, max_size=40))
    def test_perfect_prediction_is_one(self, labels):
        assert macro_f1(labels, labels) == 1.0


class TestPrecisionRecall:
    def test_all_zero_when_never_predicted(self):
        precision, recall, f1 = precision_recall_f1([0, 0, 1], [0, 0, 0])
        assert precision[1] == 0.0 and recall[1] == 0.0 and f1[1] == 0.0

    def test_report_contains_classes(self):
        report = classification_report([0, 1, 1], [0, 1, 0], target_names=["ok", "fault"])
        assert "ok" in report and "fault" in report and "macro avg" in report

    def test_report_rejects_bad_names(self):
        with pytest.raises(ValidationError):
            classification_report([0, 1], [0, 1], target_names=["one"])
