"""Warm-start incremental re-discovery tests (ISSUE 9).

Covers the persistent CI-statistics cache (:class:`CIStatCache`), the
serialized :class:`WarmState`, :meth:`FNodeDiscovery.rediscover` in both
``exact`` and ``confirm`` modes against the cold baseline across every
fan-out path, the guard-mismatch cold fallbacks, the ``fs.cache.*`` metric
export, the intra-level wall-clock deadline fix, the deduplicated
:func:`ks_pvalue` tails, and the ``--warm`` benchmark runner + oracle.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.causal import (
    CIStatCache,
    FNodeDiscovery,
    WarmState,
    matrix_fingerprint,
)
from repro.causal.ci_tests import KS_PVALUE_MODES, ks_pvalue
from repro.causal.engine import DEADLINE_CHUNK, CIEngine
from repro.core.config import FSConfig
from repro.core.feature_separation import FeatureSeparator
from repro.experiments.bench import check_fs_record, make_wide_pair, run_bench_warm
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.utils.errors import ConfigurationError, ValidationError

WIDTH = 39


def clone_warm(warm: WarmState) -> WarmState:
    """Isolated copy so tests cannot couple through the live cache."""
    return WarmState.from_state(warm.state_dict(include_residuals=True))


@pytest.fixture(scope="module")
def pair():
    return make_wide_pair(WIDTH, n_source=240, n_target=96, random_state=3)


@pytest.fixture(scope="module")
def warm_setup(pair):
    """(Xs, Xt, prior WarmState at 72 rows, cold result at 96 rows)."""
    Xs, Xt = pair
    prior = FNodeDiscovery()
    prior.discover(Xs, Xt[:72])
    cold = FNodeDiscovery().discover(Xs, Xt)
    return Xs, Xt, prior.warm_state_, cold


class TestMatrixFingerprint:
    def test_ignores_input_dtype_and_layout(self, rng):
        X = rng.standard_normal((20, 5))
        base = matrix_fingerprint(X)
        assert matrix_fingerprint(np.asfortranarray(X)) == base
        assert matrix_fingerprint(X.astype(np.float32).astype(np.float64)) != base
        assert matrix_fingerprint(X.copy()) == base

    def test_detects_any_change(self, rng):
        X = rng.standard_normal((20, 5))
        Y = X.copy()
        Y[13, 2] += 1e-12
        assert matrix_fingerprint(Y) != matrix_fingerprint(X)
        assert matrix_fingerprint(X[:19]) != matrix_fingerprint(X)


class TestKsPvalue:
    def test_exact_matches_scipy_asymp_bitwise(self, rng):
        for n, m in ((480, 120), (480, 24), (50, 7)):
            a, b = rng.standard_normal(n), 0.3 + rng.standard_normal(m)
            d, p_ref = scipy_stats.ks_2samp(a, b, method="asymp")
            assert float(ks_pvalue(d, n, m, mode="exact")) == p_ref

    def test_stephens_is_close_but_distinct(self, rng):
        a, b = rng.standard_normal(200), 0.2 + rng.standard_normal(60)
        d, _ = scipy_stats.ks_2samp(a, b, method="asymp")
        exact = float(ks_pvalue(d, 200, 60, mode="exact"))
        steph = float(ks_pvalue(d, 200, 60, mode="stephens"))
        assert 0.0 <= steph <= 1.0
        assert steph == pytest.approx(exact, abs=5e-3)

    def test_vectorized_and_mode_validation(self):
        d = np.array([0.1, 0.5, 0.9])
        out = ks_pvalue(d, 100, 30, mode="exact")
        assert out.shape == d.shape
        assert np.all(np.diff(out) < 0)  # larger D, smaller tail
        assert "exact" in KS_PVALUE_MODES
        with pytest.raises(ValidationError):
            ks_pvalue(0.3, 100, 30, mode="approximate")


class TestCIStatCache:
    def test_entry_accessors_and_counts(self, rng):
        cache = CIStatCache(ridge=1e-3, stats_dtype="float64",
                            source_fingerprint="fp")
        cols = (1, 4)
        factor = (rng.standard_normal((2, 2)), True)
        cache.put_factor(cols, factor)
        cache.put_beta(cols, 7, rng.standard_normal(2))
        cache.put_residual(cols, 7, rng.standard_normal(30))
        assert cache.n_entries == 3
        assert cache.get_factor(cols)[1] is True
        assert cache.get_beta(cols, 7).shape == (2,)
        assert cache.get_beta(cols, 8) is None
        assert cache.get_factor((9,)) is None

    def test_matches_and_invalidate(self):
        cache = CIStatCache(ridge=1e-3, stats_dtype="float32",
                            source_fingerprint="fp")
        cache.put_beta((0,), 1, np.zeros(1))
        assert cache.matches(ridge=1e-3, stats_dtype="float32",
                             source_fingerprint="fp")
        assert not cache.matches(ridge=1e-2, stats_dtype="float32",
                                 source_fingerprint="fp")
        assert not cache.matches(ridge=1e-3, stats_dtype="float32",
                                 source_fingerprint="other")
        assert cache.invalidate() == 1
        assert cache.n_entries == 0
        assert cache.invalidations == 1

    def test_state_roundtrip(self, rng):
        cache = CIStatCache(ridge=2e-3, stats_dtype="float32",
                            source_fingerprint="abc")
        cache.put_factor((2, 5), (rng.standard_normal((2, 2)), False))
        cache.put_beta((2, 5), 3, rng.standard_normal(2))
        cache.put_residual((2, 5), 3, rng.standard_normal(12))
        lean = CIStatCache.from_state(cache.state_dict())
        assert lean.matches(ridge=2e-3, stats_dtype="float32",
                            source_fingerprint="abc")
        np.testing.assert_array_equal(
            lean.get_factor((2, 5))[0], cache.get_factor((2, 5))[0])
        np.testing.assert_array_equal(
            lean.get_beta((2, 5), 3), cache.get_beta((2, 5), 3))
        assert lean.get_residual((2, 5), 3) is None  # dropped by default
        full = CIStatCache.from_state(cache.state_dict(include_residuals=True))
        np.testing.assert_array_equal(
            full.get_residual((2, 5), 3), cache.get_residual((2, 5), 3))

    def test_portable_roundtrip(self, rng):
        cache = CIStatCache(ridge=1e-3, stats_dtype="float64",
                            source_fingerprint="xyz")
        cache.put_factor((1,), (rng.standard_normal((1, 1)), True))
        back = CIStatCache.from_portable(cache.to_portable())
        assert back.source_fingerprint == "xyz"
        np.testing.assert_array_equal(
            back.get_factor((1,))[0], cache.get_factor((1,))[0])

    def test_multi_rhs_engine_rejects_cache(self, pair):
        Xs, Xt = pair
        cache = CIStatCache(ridge=1e-3, stats_dtype="float64")
        with pytest.raises(ValidationError):
            CIEngine(Xs, Xt, multi_rhs=True, stat_cache=cache)


class TestRediscover:
    def test_exact_mode_matches_cold(self, warm_setup):
        Xs, Xt, warm, cold = warm_setup
        res = FNodeDiscovery().rediscover(Xs, Xt, clone_warm(warm), mode="exact")
        np.testing.assert_array_equal(res.variant_indices, cold.variant_indices)
        assert res.coverage == 1.0

    def test_confirm_mode_matches_cold_with_fewer_tests(self, warm_setup):
        Xs, Xt, warm, cold = warm_setup
        res = FNodeDiscovery().rediscover(
            Xs, Xt, clone_warm(warm), mode="confirm")
        np.testing.assert_array_equal(res.variant_indices, cold.variant_indices)
        assert res.n_tests < cold.n_tests

    @pytest.mark.parametrize("shm", [False, True])
    def test_parallel_paths_match_cold(self, warm_setup, shm):
        Xs, Xt, warm, cold = warm_setup
        res = FNodeDiscovery(n_jobs=2, use_shared_memory=shm).rediscover(
            Xs, Xt, clone_warm(warm), mode="confirm")
        np.testing.assert_array_equal(res.variant_indices, cold.variant_indices)

    def test_identical_rerun_short_circuits(self, warm_setup):
        Xs, Xt, _, cold = warm_setup
        prior = FNodeDiscovery()
        prior.discover(Xs, Xt)
        res = FNodeDiscovery().rediscover(
            Xs, Xt, prior.warm_state_, mode="confirm")
        np.testing.assert_array_equal(res.variant_indices, cold.variant_indices)
        # nothing drifted: only the near-threshold marginals and one
        # confirmation test per variant feature re-run
        assert res.n_tests < cold.n_tests / 2

    def test_changed_source_falls_back_cold_and_invalidates(self, warm_setup):
        Xs, Xt, warm, _ = warm_setup
        warm = clone_warm(warm)
        assert warm.cache.n_entries > 0
        Xs2 = Xs + 0.01  # same shape, different bytes
        cold2 = FNodeDiscovery().discover(Xs2, Xt)
        res = FNodeDiscovery().rediscover(Xs2, Xt, warm, mode="confirm")
        np.testing.assert_array_equal(res.variant_indices, cold2.variant_indices)
        np.testing.assert_array_equal(res.p_values, cold2.p_values)
        assert res.n_tests == cold2.n_tests  # full cold work was re-done
        assert warm.cache.n_entries == 0
        assert warm.cache.invalidations > 0

    def test_param_mismatch_degrades_confirm_to_exact(self, warm_setup):
        Xs, Xt, warm, _ = warm_setup
        disc = FNodeDiscovery(alpha=0.05)  # differs from the producing run
        cold = FNodeDiscovery(alpha=0.05).discover(Xs, Xt)
        res = disc.rediscover(Xs, Xt, clone_warm(warm), mode="confirm")
        np.testing.assert_array_equal(res.variant_indices, cold.variant_indices)

    def test_budgeted_run_degrades_confirm_and_reports_coverage(self, warm_setup):
        Xs, Xt, warm, _ = warm_setup
        disc = FNodeDiscovery(budget=2)
        res = disc.rediscover(Xs, Xt, clone_warm(warm), mode="confirm")
        assert 0.0 <= res.coverage < 1.0

    def test_warm_state_accumulates_on_every_run(self, warm_setup):
        Xs, Xt, warm, _ = warm_setup
        disc = FNodeDiscovery()
        res = disc.rediscover(Xs, Xt, clone_warm(warm), mode="exact")
        state = disc.warm_state_
        assert state is not None
        assert state.priors is res
        assert state.n_features == WIDTH
        assert state.source_fingerprint == matrix_fingerprint(Xs)
        assert state.cache is not None and state.cache.n_entries > 0
        assert state.params == disc._params_key()

    def test_mode_and_warm_validation(self, warm_setup):
        Xs, Xt, warm, _ = warm_setup
        with pytest.raises(ValidationError):
            FNodeDiscovery().rediscover(Xs, Xt, clone_warm(warm), mode="fast")
        with pytest.raises(ValidationError):
            FNodeDiscovery().rediscover(Xs, Xt, None)

    def test_result_carries_marginal_p_values(self, warm_setup):
        Xs, Xt, _, cold = warm_setup
        assert cold.marginal_p_values is not None
        assert cold.marginal_p_values.shape == cold.p_values.shape
        # the best-p search can only raise p above the marginal
        assert np.all(cold.p_values >= cold.marginal_p_values - 1e-12)


class TestWarmMetrics:
    def test_fs_cache_counters_exported(self, warm_setup):
        Xs, Xt, warm, _ = warm_setup
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            FNodeDiscovery().rediscover(Xs, Xt, clone_warm(warm), mode="exact")
        finally:
            set_metrics(previous)
        names = registry.names()
        for kind in ("design", "beta", "warm"):
            assert f"fs.cache.hits_total{{cache={kind}}}" in names
            assert f"fs.cache.misses_total{{cache={kind}}}" in names
        assert "fs.cache.invalidated_total{cache=warm}" in names
        warm_hits = registry.counter("fs.cache.hits_total", cache="warm")
        assert warm_hits.value > 0  # the prior run's entries were reused

    def test_invalidations_counted(self, warm_setup):
        Xs, Xt, warm, _ = warm_setup
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            FNodeDiscovery().rediscover(
                Xs + 0.5, Xt, clone_warm(warm), mode="exact")
        finally:
            set_metrics(previous)
        dropped = registry.counter("fs.cache.invalidated_total", cache="warm")
        assert dropped.value > 0


class _FakeClock:
    """perf_counter advancing one second per call (deterministic deadlines)."""

    def __init__(self) -> None:
        self.now = 0.0

    def perf_counter(self) -> float:
        self.now += 1.0
        return self.now


class TestIntraLevelDeadline:
    def _engine(self, rng):
        # feature 0 genuinely variant (mean shift), 40 independent noise
        # candidates: no conditioning subset ever separates it, so a full
        # size-1 level is 40 subsets = two DEADLINE_CHUNK batches
        Xs = rng.standard_normal((200, 41))
        Xt = rng.standard_normal((60, 41))
        Xt[:, 0] += 3.0
        return CIEngine(Xs, Xt)

    def test_deadline_breaks_inside_a_level(self, rng, monkeypatch):
        import repro.causal.engine as engine_mod

        engine = self._engine(rng)
        clock = _FakeClock()
        monkeypatch.setattr(engine_mod.time, "perf_counter", clock.perf_counter)
        _, _, n_tests, _, completed = engine.search_feature(
            0, tuple(range(1, 41)), 0.0, alpha=0.01, max_cond_size=1,
            deadline=2.5,
        )
        assert not completed
        assert 0 < n_tests <= DEADLINE_CHUNK  # stopped after one batch

    def test_no_deadline_still_runs_single_batch(self, rng):
        engine = self._engine(rng)
        best_p, _, n_tests, _, completed = engine.search_feature(
            0, tuple(range(1, 41)), 0.0, alpha=0.01, max_cond_size=1,
        )
        assert completed
        assert n_tests == 40  # nothing separates: the whole level runs
        assert best_p < 0.01


class TestSeparatorWarmMode:
    def test_invalid_warm_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            FSConfig(warm_mode="fastest")

    def test_off_mode_runs_cold_but_still_captures_state(self, warm_setup):
        Xs, Xt, warm, cold = warm_setup
        sep = FeatureSeparator(FSConfig(warm_mode="off"))
        sep.fit(Xs, Xt, warm=clone_warm(warm))
        np.testing.assert_array_equal(
            sep.result_.variant_indices, cold.variant_indices)
        assert sep.result_.n_tests == cold.n_tests
        assert sep.warm_state_ is not None

    def test_fit_with_warm_matches_cold(self, warm_setup):
        Xs, Xt, warm, cold = warm_setup
        sep = FeatureSeparator(FSConfig(warm_mode="confirm"))
        sep.fit(Xs, Xt, warm=clone_warm(warm))
        np.testing.assert_array_equal(
            sep.result_.variant_indices, cold.variant_indices)
        assert sep.result_.n_tests < cold.n_tests


class TestBenchWarm:
    @pytest.fixture(scope="class")
    def record(self):
        records = run_bench_warm(
            (24,), n_jobs=1, fs_rounds=1,
            n_source=240, n_target=80, n_prior=56,
        )
        assert len(records) == 1
        return records[0]

    def test_record_is_equivalent_and_oracle_clean(self, record):
        assert record["equivalent"] is True
        assert record["dataset"] == "warm"
        assert record["speedup"] > 0
        assert record["after"]["n_ci_tests"] <= record["before"]["n_ci_tests"]
        assert check_fs_record(record) == []

    def test_oracle_flags_tampered_records(self, record):
        bad = dict(record)
        bad["serial_equal"] = False
        assert any("serial_equal" in p for p in check_fs_record(bad))
        bad = dict(record)
        bad["after"] = dict(record["after"],
                            n_ci_tests=record["before"]["n_ci_tests"] + 1)
        assert any("more tests" in p for p in check_fs_record(bad))

    def test_report_formats(self, record):
        from repro.experiments.reporting import format_bench_warm

        text = format_bench_warm([record])
        assert "Warm-start" in text and "yes" in text
