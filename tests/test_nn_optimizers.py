"""Unit tests for SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Dense, MSELoss, Sequential
from repro.utils.errors import ValidationError


def make_regression_problem(rng, n=64, d=5):
    X = rng.standard_normal((n, d))
    w = rng.standard_normal((d, 1))
    y = X @ w + 0.01 * rng.standard_normal((n, 1))
    return X, y


def train(optimizer_cls, rng, steps=300, **kwargs):
    X, y = make_regression_problem(rng)
    net = Sequential([Dense(5, 1, random_state=0)])
    opt = optimizer_cls(net.trainable_layers(), **kwargs)
    loss_fn = MSELoss()
    losses = []
    for _ in range(steps):
        pred = net.forward(X)
        losses.append(loss_fn.forward(pred, y))
        net.backward(loss_fn.backward())
        opt.step()
        opt.zero_grad()
    return losses


class TestSGD:
    def test_converges_on_linear_regression(self, rng):
        losses = train(SGD, rng, lr=0.05)
        assert losses[-1] < 0.01 * losses[0] + 1e-3

    def test_momentum_accelerates(self, rng):
        plain = train(SGD, rng, steps=60, lr=0.01)
        momentum = train(SGD, rng, steps=60, lr=0.01, momentum=0.9)
        assert momentum[-1] < plain[-1]

    def test_weight_decay_shrinks_weights(self, rng):
        net = Sequential([Dense(3, 1, random_state=0)])
        opt = SGD(net.trainable_layers(), lr=0.1, weight_decay=1.0)
        w0 = np.abs(net.layers[0].params["W"]).sum()
        for _ in range(20):
            opt.step()  # zero gradients: pure decay
        assert np.abs(net.layers[0].params["W"]).sum() < w0

    def test_rejects_bad_lr(self):
        with pytest.raises(ValidationError):
            SGD([], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValidationError):
            SGD([], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_linear_regression(self, rng):
        losses = train(Adam, rng, lr=0.05)
        assert losses[-1] < 0.01 * losses[0] + 1e-3

    def test_rejects_bad_betas(self):
        with pytest.raises(ValidationError):
            Adam([], lr=0.1, beta1=1.0)

    def test_zero_grad_resets(self, rng):
        net = Sequential([Dense(3, 1, random_state=0)])
        opt = Adam(net.trainable_layers(), lr=0.01)
        net.forward(rng.standard_normal((4, 3)))
        net.backward(np.ones((4, 1)))
        assert np.abs(net.layers[0].grads["W"]).sum() > 0
        opt.zero_grad()
        assert np.abs(net.layers[0].grads["W"]).sum() == 0

    def test_step_with_zero_grads_and_decay_moves_params(self, rng):
        net = Sequential([Dense(3, 1, random_state=0)])
        opt = Adam(net.trainable_layers(), lr=0.1, weight_decay=0.5)
        w0 = net.layers[0].params["W"].copy()
        opt.step()
        assert not np.allclose(net.layers[0].params["W"], w0)

    def test_ignores_parameterless_layers(self, rng):
        from repro.nn import ReLU

        opt = Adam([ReLU()], lr=0.01)
        opt.step()  # no parameters: must be a no-op, not an error
        assert opt.layers == []
