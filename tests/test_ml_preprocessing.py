"""Unit + property tests for scalers and encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import LabelEncoder, MinMaxScaler, OneHotEncoder, StandardScaler, one_hot
from repro.utils.errors import NotFittedError, ValidationError

finite_matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 20), st.integers(1, 6)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestMinMaxScaler:
    def test_range(self, rng):
        X = rng.standard_normal((50, 4)) * 10
        out = MinMaxScaler().fit_transform(X)
        assert out.min() >= -1.0 - 1e-12
        assert out.max() <= 1.0 + 1e-12
        np.testing.assert_allclose(out.min(axis=0), -1.0)
        np.testing.assert_allclose(out.max(axis=0), 1.0)

    def test_constant_feature_maps_to_midpoint(self):
        X = np.column_stack([np.full(5, 7.0), np.arange(5.0)])
        out = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_custom_range(self, rng):
        X = rng.standard_normal((20, 2))
        out = MinMaxScaler(feature_range=(0.0, 1.0)).fit_transform(X)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_rejects_degenerate_range(self):
        with pytest.raises(ValidationError):
            MinMaxScaler(feature_range=(1.0, 1.0))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform([[1.0]])

    def test_out_of_range_inputs_extrapolate(self):
        scaler = MinMaxScaler().fit([[0.0], [10.0]])
        assert scaler.transform([[20.0]])[0, 0] == pytest.approx(3.0)

    @settings(max_examples=30, deadline=None)
    @given(finite_matrices)
    def test_round_trip_property(self, X):
        scaler = MinMaxScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-6 * (1 + np.abs(X).max()))


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.standard_normal((100, 3)) * 4 + 2
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_safe(self):
        X = np.column_stack([np.full(5, 3.0), np.arange(5.0)])
        out = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(out[:, 0], 0.0)

    @settings(max_examples=30, deadline=None)
    @given(finite_matrices)
    def test_round_trip_property(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-6 * (1 + np.abs(X).max()))

    def test_feature_count_check(self, rng):
        scaler = StandardScaler().fit(rng.standard_normal((5, 3)))
        with pytest.raises(ValidationError):
            scaler.transform(rng.standard_normal((5, 4)))


class TestLabelEncoder:
    def test_round_trip(self):
        enc = LabelEncoder()
        labels = np.array(["b", "a", "c", "a"])
        codes = enc.fit_transform(labels)
        np.testing.assert_array_equal(enc.inverse_transform(codes), labels)

    def test_codes_contiguous(self):
        codes = LabelEncoder().fit_transform([10, 20, 10, 30])
        assert sorted(set(codes.tolist())) == [0, 1, 2]

    def test_unseen_label(self):
        enc = LabelEncoder().fit([1, 2])
        with pytest.raises(ValidationError, match="unseen"):
            enc.transform([3])

    def test_out_of_range_codes(self):
        enc = LabelEncoder().fit([1, 2])
        with pytest.raises(ValidationError):
            enc.inverse_transform([5])


class TestOneHot:
    def test_encoder_shape(self):
        out = OneHotEncoder().fit_transform(np.array([0, 2, 1]))
        assert out.shape == (3, 3)
        np.testing.assert_array_equal(out.sum(axis=1), 1.0)

    def test_encoder_rejects_unseen(self):
        enc = OneHotEncoder().fit(np.array([0, 1]))
        with pytest.raises(ValidationError):
            enc.transform(np.array([2]))

    def test_functional_one_hot(self):
        out = one_hot([1, 0], 3)
        np.testing.assert_array_equal(out, [[0, 1, 0], [1, 0, 0]])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            OneHotEncoder().fit(np.array([-1, 0]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=50))
    def test_one_hot_argmax_inverts(self, labels):
        y = np.array(labels)
        encoded = one_hot(y, 10)
        np.testing.assert_array_equal(np.argmax(encoded, axis=1), y)
