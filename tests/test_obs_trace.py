"""Tests for the hierarchical span tracer (repro.obs.trace)."""

import json
import time

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Stopwatch,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.utils.errors import ValidationError


class TestSpanNesting:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                with tracer.span("leaf"):
                    pass
        assert [r.name for r in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["first", "second"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_parent_duration_covers_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                time.sleep(0.01)
        parent = tracer.roots[0]
        child = parent.children[0]
        assert child.duration >= 0.01
        assert parent.duration >= child.duration

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # both spans closed despite the exception; a new span is a fresh root
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]
        assert tracer.roots[0].end is not None
        assert tracer.roots[0].children[0].end is not None

    def test_tags_and_tag_update(self):
        tracer = Tracer()
        with tracer.span("op", size=3) as sp:
            sp.tag(n_tests=7)
        assert tracer.roots[0].tags == {"size": 3, "n_tests": 7}

    def test_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.find("b").name == "b"
        assert tracer.find("missing") is None


class TestExport:
    def test_to_dict_offsets_relative_to_first_root(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        data = tracer.to_dict()
        assert data["spans"][0]["start"] == 0.0
        assert data["spans"][0]["children"][0]["start"] >= 0.0
        assert data["spans"][0]["duration"] >= data["spans"][0]["children"][0]["duration"]

    def test_to_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("op", k="v"):
            pass
        parsed = json.loads(tracer.to_json())
        assert parsed["spans"][0]["name"] == "op"
        assert parsed["spans"][0]["tags"] == {"k": "v"}

    def test_format_tree_shows_hierarchy(self):
        tracer = Tracer()
        with tracer.span("root_op", n=1):
            with tracer.span("child_op"):
                pass
        text = tracer.format_tree()
        lines = text.splitlines()
        assert "root_op" in lines[0] and "n=1" in lines[0]
        assert lines[1].startswith("  ") and "child_op" in lines[1]
        assert "ms" in lines[0]


class TestNullTracer:
    def test_default_global_tracer_is_disabled(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_span_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything", big=1) as sp:
            assert sp is NULL_SPAN
            sp.tag(more=2)  # no-op, no error
        assert tracer.roots == []
        assert NULL_SPAN.tags == {}

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is NULL_TRACER
        assert tracer.find("inside") is not None

    def test_set_tracer_validates(self):
        with pytest.raises(ValidationError):
            set_tracer("not a tracer")


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.seconds >= 0.01
        frozen = sw.seconds
        assert sw.seconds == frozen  # stops at exit
