"""Tests for the compared approaches: contracts, behaviour, registry."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_METHODS,
    CMT,
    CORAL,
    DANN,
    FSGANMethod,
    FSMethod,
    FineTune,
    ICD,
    MODEL_AGNOSTIC_METHODS,
    MODEL_SPECIFIC_METHODS,
    MatchNet,
    ProtoNet,
    SCL,
    SourceAndTarget,
    SrcOnly,
    TarOnly,
    build_method,
    coral_transform,
)
from repro.ml import MLPClassifier, macro_f1
from repro.utils.errors import ValidationError


def fast_mlp():
    return MLPClassifier(hidden_sizes=(64,), epochs=40, random_state=0)


@pytest.fixture(scope="module")
def drift_problem(tiny_5gc):
    """(bench, X_few, y_few, X_test, y_test) with 5 shots per class."""
    X_few, y_few, X_test, y_test = tiny_5gc.few_shot_split(5, random_state=0)
    return tiny_5gc, X_few, y_few, X_test, y_test


class TestNaiveBaselines:
    def test_srconly_in_domain_high(self, drift_problem):
        bench, X_few, y_few, _, _ = drift_problem
        method = SrcOnly(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        f1 = macro_f1(bench.y_source, method.predict(bench.X_source))
        assert f1 > 0.95  # the paper's >98 in-domain sanity check

    def test_srconly_collapses_under_drift(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        method = SrcOnly(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        f1_target = macro_f1(y_test, method.predict(X_test))
        f1_source = macro_f1(bench.y_source, method.predict(bench.X_source))
        assert f1_target < f1_source - 0.15

    def test_taronly_beats_chance_at_five_shots(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        method = TarOnly(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, method.predict(X_test)) > 1.5 / 16

    def test_taronly_needs_two_classes(self, drift_problem):
        bench, X_few, y_few, _, _ = drift_problem
        mask = y_few == 0
        with pytest.raises(ValidationError):
            TarOnly(fast_mlp).fit(bench.X_source, bench.y_source,
                                  X_few[mask], y_few[mask])

    def test_sandt_beats_srconly(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        st = SourceAndTarget(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        src = SrcOnly(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, st.predict(X_test)) > macro_f1(
            y_test, src.predict(X_test)
        )

    def test_finetune_beats_srconly(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        ft = FineTune(epochs=20, fine_tune_epochs=20, random_state=0)
        ft.fit(bench.X_source, bench.y_source, X_few, y_few)
        src = SrcOnly(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, ft.predict(X_test)) > macro_f1(
            y_test, src.predict(X_test)
        )


class TestCORAL:
    def test_transform_aligns_covariance(self, rng):
        Xs = rng.standard_normal((500, 4))
        Xt = rng.standard_normal((500, 4)) @ np.diag([3.0, 1.0, 0.5, 2.0])
        aligned = coral_transform(Xs, Xt, shrinkage=0.0)
        np.testing.assert_allclose(
            np.cov(aligned, rowvar=False), np.cov(Xt, rowvar=False), atol=0.3
        )

    def test_few_shot_target_does_not_crash(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        method = CORAL(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, method.predict(X_test)) > 1.5 / 16

    def test_shrinkage_validated(self, rng):
        with pytest.raises(ValidationError):
            coral_transform(rng.standard_normal((10, 2)),
                            rng.standard_normal((10, 2)), shrinkage=2.0)


class TestAdversarial:
    def test_dann_learns(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        method = DANN(epochs=25, random_state=0)
        method.fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, method.predict(X_test)) > 2.0 / 16

    def test_dann_embeddings_shape(self, drift_problem):
        bench, X_few, y_few, X_test, _ = drift_problem
        method = DANN(epochs=3, embed_dim=16, random_state=0)
        method.fit(bench.X_source, bench.y_source, X_few, y_few)
        assert method.embed(X_test[:5]).shape == (5, 16)

    def test_scl_learns(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        method = SCL(epochs=25, random_state=0)
        method.fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, method.predict(X_test)) > 2.0 / 16

    def test_proba_contract(self, drift_problem):
        bench, X_few, y_few, X_test, _ = drift_problem
        for cls in (DANN, SCL):
            method = cls(epochs=3, random_state=0)
            method.fit(bench.X_source, bench.y_source, X_few, y_few)
            proba = method.predict_proba(X_test[:4])
            np.testing.assert_allclose(proba.sum(axis=1), 1.0)


class TestFewShotBaselines:
    def test_protonet_beats_chance(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        method = ProtoNet(episodes=80, random_state=0)
        method.fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, method.predict(X_test)) > 2.0 / 16

    def test_matchnet_beats_chance(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        method = MatchNet(episodes=80, random_state=0)
        method.fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, method.predict(X_test)) > 2.0 / 16

    def test_protonet_blend_validated(self):
        with pytest.raises(ValidationError):
            ProtoNet(target_blend=1.5)

    def test_matchnet_prediction_set(self, drift_problem):
        bench, X_few, y_few, X_test, _ = drift_problem
        method = MatchNet(episodes=10, random_state=0)
        method.fit(bench.X_source, bench.y_source, X_few, y_few)
        assert set(method.predict(X_test[:20]).tolist()) <= set(range(16))


class TestCausalBaselines:
    def test_cmt_beats_taronly(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        cmt = CMT(fast_mlp, random_state=0)
        cmt.fit(bench.X_source, bench.y_source, X_few, y_few)
        tar = TarOnly(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, cmt.predict(X_test)) > macro_f1(
            y_test, tar.predict(X_test)
        )

    def test_cmt_augmentation_params_validated(self):
        with pytest.raises(ValidationError):
            CMT(fast_mlp, n_augment_per_class=0)

    def test_icd_flags_fewer_than_fs(self, tiny_5gc):
        """The paper: ICD identifies much less variant features than FS.

        Compared at the largest shot budget, where FS's subset-search test
        has full power while ICD's Bonferroni-corrected marginal test stays
        conservative.
        """
        X_few, y_few, _, _ = tiny_5gc.few_shot_split(10, random_state=0)
        icd = ICD(fast_mlp).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few, y_few)
        fs = FSMethod(fast_mlp).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few, y_few)
        assert icd.n_variant_ <= fs.n_variant_

    def test_icd_predicts(self, drift_problem):
        bench, X_few, y_few, X_test, y_test = drift_problem
        icd = ICD(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        assert macro_f1(y_test, icd.predict(X_test)) > 2.0 / 16


class TestOursAsBaselines:
    def test_fs_does_not_use_target_labels(self, drift_problem):
        bench, X_few, y_few, X_test, _ = drift_problem
        a = FSMethod(fast_mlp).fit(bench.X_source, bench.y_source, X_few, y_few)
        b = FSMethod(fast_mlp).fit(
            bench.X_source, bench.y_source, X_few, np.zeros_like(y_few)
        )
        np.testing.assert_array_equal(a.predict(X_test), b.predict(X_test))

    def test_flags(self):
        assert FSMethod.uses_target_in_training is False
        assert FSGANMethod.uses_target_in_training is False
        assert SrcOnly.uses_target_in_training is False
        assert CMT.uses_target_in_training is True


class TestRegistry:
    def test_all_methods_listed(self):
        assert set(ALL_METHODS) == set(MODEL_AGNOSTIC_METHODS) | set(
            MODEL_SPECIFIC_METHODS
        )
        assert len(ALL_METHODS) == 13

    @pytest.mark.parametrize("name", MODEL_AGNOSTIC_METHODS)
    def test_agnostic_methods_build(self, name):
        method = build_method(name, fast_mlp, random_state=0)
        assert hasattr(method, "fit") and hasattr(method, "predict")

    @pytest.mark.parametrize("name", MODEL_SPECIFIC_METHODS)
    def test_specific_methods_build(self, name):
        method = build_method(name, random_state=0)
        assert hasattr(method, "fit") and hasattr(method, "predict")

    def test_agnostic_requires_factory(self):
        with pytest.raises(ValidationError):
            build_method("srconly")

    def test_unknown_method(self):
        with pytest.raises(ValidationError, match="unknown method"):
            build_method("magic", fast_mlp)

    def test_case_insensitive(self):
        assert build_method("SrcOnly", fast_mlp) is not None
