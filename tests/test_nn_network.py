"""Unit tests for Sequential utilities and minibatch iteration."""

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential, iterate_minibatches
from repro.utils.errors import ValidationError


class TestIterateMinibatches:
    def test_covers_all_indices(self):
        seen = np.concatenate(list(iterate_minibatches(10, 3, rng=0)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_sizes(self):
        batches = list(iterate_minibatches(10, 4, rng=0))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_drop_last(self):
        batches = list(iterate_minibatches(10, 4, rng=0, drop_last=True))
        assert [len(b) for b in batches] == [4, 4]

    def test_no_shuffle_is_ordered(self):
        batches = list(iterate_minibatches(6, 2, shuffle=False))
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(6))

    def test_deterministic_given_seed(self):
        a = np.concatenate(list(iterate_minibatches(20, 7, rng=3)))
        b = np.concatenate(list(iterate_minibatches(20, 7, rng=3)))
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValidationError):
            list(iterate_minibatches(10, 0))


class TestNestedSequential:
    def test_trainable_layers_flatten(self):
        inner = Sequential([Dense(4, 4, random_state=0), ReLU()])
        outer = Sequential([inner, Dense(4, 2, random_state=1)])
        assert len(outer.trainable_layers()) == 2

    def test_nested_forward_backward(self, rng):
        inner = Sequential([Dense(3, 4, random_state=0), ReLU()])
        outer = Sequential([inner, Dense(4, 2, random_state=1)])
        x = rng.standard_normal((5, 3))
        out = outer.forward(x)
        grad = outer.backward(np.ones_like(out))
        assert grad.shape == x.shape
