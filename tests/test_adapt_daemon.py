"""End-to-end adaptation through the serving daemon: shadow, promote, rollback.

The ISSUE's acceptance path: a candidate is shadow-scored *inside* the
daemon on live traffic and promoted by a pure lineage pointer flip — no
daemon restart — and a one-command rollback restores the prior plan so
that replayed traffic scores bit-identically (``max_abs_diff == 0.0``).
"""

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.adapt import (
    AdaptationConfig,
    AdaptationController,
    ArtifactLineage,
    ShadowPolicy,
)
from repro.serve import DaemonConfig, ServeDaemon

#: lifecycle-mechanics policy: any bounded divergence promotes after one
#: shadow batch (a legitimate refit is *supposed* to disagree)
PERMISSIVE = ShadowPolicy(
    agreement_batches=1,
    max_disagreement=1.0,
    abort_disagreement=1.0,
    max_batches=8,
)


def _wait_for_verdict(daemon, tenant, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        verdict = daemon.shadow_verdict(tenant)
        if verdict is not None:
            return verdict
        time.sleep(0.01)
    raise AssertionError("shadow verdict never arrived")


@pytest.fixture(scope="module")
def two_generations(tiny_5gc):
    """Two fitted pipelines (distinct seeds => distinct plans) + traffic."""
    from repro.core import FSGANPipeline, ReconstructionConfig
    from repro.ml import MLPClassifier

    X_few, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
    pipes = [
        FSGANPipeline(
            lambda: MLPClassifier(hidden_sizes=(16,), epochs=8,
                                  random_state=seed),
            reconstruction_config=ReconstructionConfig(
                strategy="gan", epochs=2, noise_dim=2, hidden_size=8),
            random_state=seed,
        ).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        for seed in (0, 1)
    ]
    return pipes[0], pipes[1], X_test[:64]


@pytest.fixture()
def seeded_lineage(tmp_path, two_generations):
    """A lineage root with gen 0 active and gen 1 published as candidate."""
    incumbent, candidate, _ = two_generations
    lineage = ArtifactLineage(tmp_path / "store")
    lineage.publish("tenant", incumbent, parent=None, state="active")
    lineage.publish("tenant", candidate)
    return lineage


def _config(lineage, **overrides):
    defaults = dict(root=str(lineage.root), port=None, micro_batch_rows=64,
                    cache_size=8, max_wait=0.0)
    defaults.update(overrides)
    return DaemonConfig(**defaults)


class TestDaemonShadowLifecycle:
    def test_shadow_promote_rollback_bit_identical(self, seeded_lineage,
                                                   two_generations):
        _, _, X = two_generations
        with ServeDaemon(_config(seeded_lineage)) as daemon:
            # first-ever pass on gen 0: the reference replay answers
            reference = daemon.score("tenant", X)

            daemon.start_shadow("tenant", policy=PERMISSIVE)
            daemon.score("tenant", X)  # live traffic drives the comparison
            assert _wait_for_verdict(daemon, "tenant") == "promote"

            # pointer flipped, picked up by the stat-triggered hot reload:
            # the daemon was never restarted
            assert daemon.running
            assert seeded_lineage.active("tenant").generation == 1
            promoted_scores = daemon.score("tenant", X)
            assert not np.array_equal(promoted_scores, reference)

            # one-command rollback: the restored bundle's hash differs from
            # the demoted one's, so the plan cache resets the noise stream
            # to the artifact's saved state — replayed traffic is bit-exact
            restored = daemon.rollback("tenant")
            assert restored.generation == 0
            replayed = daemon.score("tenant", X)
            max_abs_diff = float(np.max(np.abs(replayed - reference)))
            assert max_abs_diff == 0.0
        history = {v.generation: v.lifecycle_state
                   for v in seeded_lineage.history("tenant")}
        assert history == {0: "active", 1: "retired"}

    def test_abort_retires_candidate_and_keeps_incumbent(self, seeded_lineage,
                                                         two_generations):
        _, _, X = two_generations
        strict = ShadowPolicy(agreement_batches=1, max_disagreement=1e-12,
                              abort_disagreement=1e-9, max_batches=8)
        with ServeDaemon(_config(seeded_lineage)) as daemon:
            reference = daemon.score("tenant", X)
            daemon.start_shadow("tenant", policy=strict)
            daemon.score("tenant", X)
            assert _wait_for_verdict(daemon, "tenant") == "abort"
            assert seeded_lineage.active("tenant").generation == 0
            assert (seeded_lineage.history("tenant")[-1].lifecycle_state
                    == "retired")
            # the incumbent's stream was never disturbed by the shadow
            follow_up = daemon.score("tenant", X)
            assert follow_up.shape == reference.shape

    def test_http_admin_promote_and_rollback(self, seeded_lineage,
                                             two_generations):
        _, _, X = two_generations
        with ServeDaemon(_config(seeded_lineage, port=0)) as daemon:
            daemon.score("tenant", X[:8])

            def post(path):
                request = urllib.request.Request(
                    daemon.url + path, data=b"", method="POST")
                with urllib.request.urlopen(request, timeout=10) as resp:
                    return json.loads(resp.read())

            doc = post("/v1/admin/promote/tenant")
            assert doc["action"] == "promote"
            assert doc["generation"] == 1
            assert seeded_lineage.active("tenant").generation == 1

            doc = post("/v1/admin/rollback/tenant")
            assert doc["action"] == "rollback"
            assert doc["generation"] == 0
            assert seeded_lineage.active("tenant").generation == 0

            # errors map to structured JSON, not tracebacks: the demoted
            # version is retired, so no candidate is left to promote -> 409
            with pytest.raises(urllib.error.HTTPError) as err:
                post("/v1/admin/promote/tenant")
            assert err.value.code == 409
            assert "no candidate" in json.loads(err.value.read())["error"]


class TestControllerDrivesDaemon:
    def test_full_loop_through_daemon_without_restart(self, tmp_path):
        """Drift -> detect -> warm rediscover -> refit -> daemon shadow ->
        promote, with the daemon serving (and shadow-scoring) the traffic."""
        from repro.experiments.bench import make_wide_pair
        from repro.experiments.drift_schedule import _scenario_pipeline

        width, batch_rows = 24, 64
        src, prior = make_wide_pair(width, n_target=96, random_state=5)
        y = (src[:, 0] > np.median(src[:, 0])).astype(np.int64)
        pipeline = _scenario_pipeline(1, 2, 0).fit(src, y, prior)
        pool_rows = 24 * batch_rows
        pre_pool, post_pool = make_wide_pair(
            width, n_source=pool_rows, n_target=pool_rows, random_state=7)

        lineage = ArtifactLineage(tmp_path / "store")
        config = AdaptationConfig(
            min_shots=64,
            drift_options={"min_rows": 192, "window_rows": 256, "n_bins": 8,
                           "psi_threshold": 1.5, "name": "adapt-daemon"},
            policy=PERMISSIVE,
            subscribe_alarms=False,
        )
        with ServeDaemon(_config(lineage)) as daemon:
            with AdaptationController(
                pipeline, lineage, "tenant", config, daemon=daemon
            ) as controller:
                batches = [pre_pool[i * batch_rows:(i + 1) * batch_rows]
                           for i in range(4)]
                batches += [post_pool[i * batch_rows:(i + 1) * batch_rows]
                            for i in range(24)]
                state = None
                for batch in batches:
                    daemon.score("tenant", batch)   # serve path (shadow too)
                    state = controller.observe(batch)  # detection + lifecycle
                    if state == "PROMOTED":
                        break
                assert state == "PROMOTED"
                assert daemon.running  # never restarted
                assert controller.generation == 1
                assert controller.timings["rediscover_warm"] is True
        history = {v.generation: v.lifecycle_state
                   for v in lineage.history("tenant")}
        assert history == {0: "retired", 1: "active"}
