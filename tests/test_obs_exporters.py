"""Tests for the exporters package (Prometheus endpoint, snapshots)."""

import urllib.request

import pytest

from repro.obs.exporters import (
    PrometheusExporter,
    SnapshotWriter,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry
from repro.utils.errors import ValidationError


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serve_batches").inc(3)
    reg.gauge("serve.psi_max").set(0.125)
    reg.histogram("serve.latency").observe(0.025)
    reg.histogram("serve.stage_seconds", stage="scale").observe(0.001)
    return reg


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.latency") == "serve_latency"

    def test_leading_digit_gets_prefix(self):
        assert sanitize_metric_name("5gc.rate") == "_5gc_rate"


class TestRenderPrometheus:
    def test_golden_exposition(self):
        # the full text-format output, frozen: counters and gauges map
        # directly, histograms export as summaries with quantile series;
        # families sort by raw (pre-sanitization) name
        text = render_prometheus(_populated_registry())
        assert text == (
            "# TYPE serve_latency summary\n"
            'serve_latency{quantile="0.5"} 0.025\n'
            'serve_latency{quantile="0.9"} 0.025\n'
            'serve_latency{quantile="0.99"} 0.025\n'
            "serve_latency_sum 0.025\n"
            "serve_latency_count 1\n"
            "# TYPE serve_psi_max gauge\n"
            "serve_psi_max 0.125\n"
            "# TYPE serve_stage_seconds summary\n"
            'serve_stage_seconds{quantile="0.5",stage="scale"} 0.001\n'
            'serve_stage_seconds{quantile="0.9",stage="scale"} 0.001\n'
            'serve_stage_seconds{quantile="0.99",stage="scale"} 0.001\n'
            'serve_stage_seconds_sum{stage="scale"} 0.001\n'
            'serve_stage_seconds_count{stage="scale"} 1\n'
            "# TYPE serve_batches counter\n"
            "serve_batches 3\n"
        )

    def test_unset_gauge_has_no_sample_line(self):
        reg = MetricsRegistry()
        reg.gauge("pending")
        assert render_prometheus(reg) == "# TYPE pending gauge\n"

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("hits", path='a"b').inc()
        assert 'path="a\\"b"' in render_prometheus(reg)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestPrometheusExporter:
    def test_http_endpoint_serves_text_format(self):
        reg = _populated_registry()
        with PrometheusExporter(reg, port=0) as exporter:
            with urllib.request.urlopen(exporter.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = resp.read().decode()
        assert body == render_prometheus(reg)
        assert 'serve_latency{quantile="0.5"}' in body

    def test_unknown_path_is_404(self):
        with PrometheusExporter(MetricsRegistry(), port=0) as exporter:
            url = exporter.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url, timeout=5)
            assert err.value.code == 404

    def test_double_start_rejected(self):
        exporter = PrometheusExporter(MetricsRegistry(), port=0).start()
        try:
            with pytest.raises(ValidationError):
                exporter.start()
        finally:
            exporter.stop()

    def test_stop_is_idempotent(self):
        exporter = PrometheusExporter(MetricsRegistry(), port=0)
        exporter.start()
        exporter.stop()
        exporter.stop()
        assert not exporter.running


class TestSnapshotWriter:
    def test_jsonl_round_trip(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "metrics.jsonl"
        writer = SnapshotWriter(path, registry=reg)
        writer.write()
        reg.counter("serve_batches").inc()
        writer.write()
        snaps = SnapshotWriter.read(path)
        assert [s["snapshot"] for s in snaps] == [0, 1]
        assert snaps[0]["metrics"]["serve_batches"]["value"] == 3
        assert snaps[1]["metrics"]["serve_batches"]["value"] == 4
        assert snaps[0]["metrics"]["serve.latency"]["count"] == 1

    def test_csv_round_trip(self, tmp_path):
        reg = _populated_registry()
        path = tmp_path / "metrics.csv"
        writer = SnapshotWriter(path, registry=reg)
        writer.write()
        writer.write()
        snaps = SnapshotWriter.read(path)
        assert len(snaps) == 2
        assert snaps[0]["metrics"]["serve_batches"]["value"] == 3
        assert snaps[0]["metrics"]["serve.psi_max"]["value"] == 0.125

    def test_periodic_thread_appends(self, tmp_path):
        import time

        reg = _populated_registry()
        path = tmp_path / "metrics.jsonl"
        with SnapshotWriter(path, registry=reg, interval=0.05):
            time.sleep(0.2)
        snaps = SnapshotWriter.read(path)
        # several periodic snapshots plus the final one on clean exit
        assert len(snaps) >= 2
        assert snaps[-1]["snapshot"] == len(snaps) - 1

    def test_bad_fmt_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            SnapshotWriter(tmp_path / "x.jsonl", fmt="yaml")

    def test_start_without_interval_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            SnapshotWriter(tmp_path / "x.jsonl").start()
