"""Fused training engine: bit-identity, allocation-freedom, checkpoints.

The contract under test (see ``repro/nn/fused.py``): the fused cGAN kernel
is an *optimization*, not an approximation — float64 training reproduces
the frozen pre-fusion implementations in ``repro.nn.reference`` bit for
bit, the batched Monte-Carlo serving path matches the per-draw loop, and
neither allocates after warmup.
"""

import copy

import numpy as np
import pytest

from repro.gan.cgan import ConditionalGAN
from repro.nn.fused import FlatAdam, FusedCGANTrainer, consolidate
from repro.nn.layers import (
    BatchNorm1d,
    Dense,
    Dropout,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.reference import ReferenceAdam, ReferenceConditionalGAN
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def gan_data():
    rng = np.random.default_rng(42)
    n, n_inv, nv, nc = 96, 12, 5, 4
    X_inv = rng.normal(size=(n, n_inv))
    X_var = np.tanh(rng.normal(size=(n, nv)))
    y = np.eye(nc)[rng.integers(0, nc, n)]
    return X_inv, X_var, y


def _gan_kwargs(**overrides):
    kw = dict(noise_dim=3, hidden_size=16, epochs=4, batch_size=32,
              random_state=7)
    kw.update(overrides)
    return kw


def _state_equal(a: Sequential, b: Sequential) -> bool:
    sa, sb = a.state_dict(), b.state_dict()
    return set(sa) == set(sb) and all(np.array_equal(sa[k], sb[k]) for k in sa)


def _build_gd(rng, n_inv=8, nv=4, nc=3, noise_dim=3, h=16):
    """A (generator, discriminator) pair in the cGAN architecture."""
    seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
    gen = Sequential([
        Dense(n_inv + noise_dim, h, random_state=seed()), BatchNorm1d(h),
        ReLU(),
        Dense(h, h, random_state=seed()), BatchNorm1d(h), ReLU(),
        Dense(h, nv, init="glorot_uniform", random_state=seed()), Tanh(),
    ])
    disc = Sequential([
        Dense(n_inv + nv + nc, h, random_state=seed()), LeakyReLU(0.2),
        Dropout(0.3, random_state=seed()),
        Dense(h, h, random_state=seed()), LeakyReLU(0.2),
        Dropout(0.3, random_state=seed()),
        Dense(h, 1, init="glorot_uniform", random_state=seed()), Sigmoid(),
    ])
    return gen, disc


class TestBitIdentity:
    """Fused float64 training reproduces the frozen reference bit for bit."""

    @pytest.mark.parametrize("conditional,d_steps", [
        (True, 1), (True, 2), (False, 1),
    ])
    def test_training_trajectory(self, gan_data, conditional, d_steps):
        X_inv, X_var, y = gan_data
        kw = _gan_kwargs(conditional=conditional, d_steps=d_steps)
        ref = ReferenceConditionalGAN(**kw).fit(
            X_inv, X_var, y if conditional else None)
        fused = ConditionalGAN(**kw).fit(
            X_inv, X_var, y if conditional else None)
        assert _state_equal(ref.generator_, fused.generator_)
        assert _state_equal(ref.discriminator_, fused.discriminator_)
        assert ref.history_ == fused.history_

    def test_batched_serving_matches_per_draw_loop(self, gan_data):
        X_inv, X_var, y = gan_data
        kw = _gan_kwargs(conditional=True)
        ref = ReferenceConditionalGAN(**kw).fit(X_inv, X_var, y)
        fused = ConditionalGAN(**kw).fit(X_inv, X_var, y)
        for n_draws in (1, 3, 8):
            a = ref.generate(X_inv[:10], n_draws=n_draws, random_state=3)
            b = fused.generate(X_inv[:10], n_draws=n_draws, random_state=3)
            np.testing.assert_array_equal(a, b)


class TestConsolidate:
    def test_views_share_flat_storage(self, rng):
        layer = Dense(4, 3, random_state=0)
        before = {k: v.copy() for k, v in layer.params.items()}
        flat_p, flat_g, segments = consolidate([layer])
        assert flat_p.size == sum(v.size for v in before.values())
        assert len(segments) == len(before)
        for key, value in before.items():
            np.testing.assert_array_equal(layer.params[key], value)
            assert np.shares_memory(layer.params[key], flat_p)
            assert np.shares_memory(layer.grads[key], flat_g)
        # a flat write is visible through the layer view and vice versa
        flat_p[:] = 1.0
        assert np.all(layer.params["W"] == 1.0)
        layer.params["b"][...] = 2.0
        assert np.all(segments[-1] == 2.0)

    def test_generic_forward_still_works_after_consolidate(self, rng):
        net = Sequential([Dense(4, 8, random_state=0), ReLU(),
                          Dense(8, 2, random_state=1)])
        x = rng.normal(size=(5, 4))
        expected = net.forward(x, training=False).copy()
        consolidate(net.trainable_layers())
        np.testing.assert_array_equal(net.forward(x, training=False), expected)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            consolidate([])


class TestFlatAdam:
    def test_matches_per_parameter_adam_bitwise(self, rng):
        net_a = Sequential([Dense(6, 8, random_state=3), ReLU(),
                            Dense(8, 4, random_state=4)])
        net_b = copy.deepcopy(net_a)
        layers_a = net_a.trainable_layers()
        layers_b = net_b.trainable_layers()
        per_param = Adam(layers_a, lr=1e-3, weight_decay=1e-6)
        flat_p, flat_g, _ = consolidate(layers_b)
        flat = FlatAdam(flat_p, flat_g, lr=1e-3, weight_decay=1e-6)
        for step in range(25):
            g_rng = np.random.default_rng(step)
            for la, lb in zip(layers_a, layers_b):
                for key in la.params:
                    g = g_rng.normal(size=la.params[key].shape)
                    la.grads[key][...] = g
                    lb.grads[key][...] = g
            per_param.step()
            flat.step()
        for la, lb in zip(layers_a, layers_b):
            for key in la.params:
                np.testing.assert_array_equal(la.params[key], lb.params[key])

    def test_matches_frozen_reference_adam(self, rng):
        net_a = Sequential([Dense(5, 7, random_state=9)])
        net_b = copy.deepcopy(net_a)
        ref = ReferenceAdam(net_a.trainable_layers(), lr=2e-4,
                            weight_decay=1e-6)
        flat_p, flat_g, _ = consolidate(net_b.trainable_layers())
        flat = FlatAdam(flat_p, flat_g, lr=2e-4, weight_decay=1e-6)
        for step in range(10):
            g_rng = np.random.default_rng(100 + step)
            for la, lb in zip(net_a.trainable_layers(),
                              net_b.trainable_layers()):
                for key in la.params:
                    g = g_rng.normal(size=la.params[key].shape)
                    la.grads[key][...] = g
                    lb.grads[key][...] = g
            ref.step()
            flat.step()
        for la, lb in zip(net_a.trainable_layers(), net_b.trainable_layers()):
            for key in la.params:
                np.testing.assert_array_equal(la.params[key], lb.params[key])


class TestAllocationFree:
    """After warmup every step reuses the same arrays (buffer identity)."""

    def _trainer(self, rng):
        gen, disc = _build_gd(rng)
        trainer = FusedCGANTrainer(gen, disc, noise_dim=3, conditional=True,
                                   lr=2e-4, weight_decay=1e-6,
                                   dtype=np.float64)
        n = 64
        X_inv = np.ascontiguousarray(rng.normal(size=(n, 8)))
        X_var = np.ascontiguousarray(np.tanh(rng.normal(size=(n, 4))))
        y = np.eye(3)[rng.integers(0, 3, n)].astype(np.float64)
        trainer.bind(X_inv, X_var, y)
        return trainer, n

    def test_fused_buffers_and_grads_stable(self, rng):
        trainer, n = self._trainer(rng)
        step_rng = np.random.default_rng(0)
        idx = np.arange(32)
        trainer.minibatch(idx, step_rng, d_steps=1)
        bufs = trainer._buffers(32)
        buf_ids = {k: id(v) for k, v in bufs.items() if v is not None}
        grad_ids = {
            (i, key): id(layer.grads[key])
            for i, layer in enumerate([trainer.gd1, trainer.gbn1, trainer.gd2,
                                       trainer.gbn2, trainer.gd3, trainer.dd1,
                                       trainer.dd2, trainer.dd3])
            for key in layer.grads
        }
        opt_ids = {
            name: id(getattr(trainer.g_opt, name))
            for name in ("_m", "_v", "_num", "_den", "_tmp", "p", "g")
        }
        for _ in range(3):
            trainer.minibatch(idx, step_rng, d_steps=1)
        assert trainer._buffers(32) is bufs
        assert {k: id(v) for k, v in trainer._buffers(32).items()
                if v is not None} == buf_ids
        for i, layer in enumerate([trainer.gd1, trainer.gbn1, trainer.gd2,
                                   trainer.gbn2, trainer.gd3, trainer.dd1,
                                   trainer.dd2, trainer.dd3]):
            for key in layer.grads:
                assert id(layer.grads[key]) == grad_ids[(i, key)]
        for name in opt_ids:
            assert id(getattr(trainer.g_opt, name)) == opt_ids[name]

    def test_generic_dense_backward_reuses_grad_arrays(self, rng):
        layer = Dense(6, 4, random_state=0)
        x = rng.normal(size=(8, 6))
        grad = rng.normal(size=(8, 4))
        layer.forward(x, training=True)
        layer.backward(grad)
        gw, gb = layer.grads["W"], layer.grads["b"]
        layer.forward(x + 1.0, training=True)
        layer.backward(grad * 2.0)
        assert layer.grads["W"] is gw
        assert layer.grads["b"] is gb

    def test_generic_adam_scratch_stable(self, rng):
        layer = Dense(6, 4, random_state=0)
        opt = Adam([layer], lr=1e-3)
        layer.grads["W"][...] = rng.normal(size=(6, 4))
        layer.grads["b"][...] = rng.normal(size=4)
        opt.step()
        ids = {k: tuple(id(a) for a in v) for k, v in opt._scratch.items()}
        moment_ids = {k: id(v) for k, v in opt._m.items()}
        for _ in range(3):
            opt.step()
        assert {k: tuple(id(a) for a in v)
                for k, v in opt._scratch.items()} == ids
        assert {k: id(v) for k, v in opt._m.items()} == moment_ids

    def test_rejects_foreign_architecture(self, rng):
        net = Sequential([Dense(4, 4, random_state=0), ReLU()] * 4)
        with pytest.raises(ValidationError):
            FusedCGANTrainer(net, net, noise_dim=2, conditional=False,
                             lr=1e-3, weight_decay=0.0, dtype=np.float64)


class TestDtypeFastPath:
    def test_float32_training_runs_and_casts(self, gan_data):
        X_inv, X_var, y = gan_data
        gan = ConditionalGAN(dtype="float32",
                             **_gan_kwargs(epochs=2)).fit(X_inv, X_var, y)
        assert all(p.dtype == np.float32
                   for p in gan.generator_.state_dict().values())
        out = gan.generate(X_inv[:6], n_draws=2, random_state=0)
        assert np.isfinite(out).all()

    def test_float32_serving_within_tolerance(self, gan_data):
        from repro.experiments.bench_nn import FLOAT32_ATOL, FLOAT32_RTOL
        X_inv, X_var, y = gan_data
        gan = ConditionalGAN(**_gan_kwargs()).fit(X_inv, X_var, y)
        g32 = copy.deepcopy(gan.generator_).to(np.float32)
        z = np.random.default_rng(0).standard_normal((10, 3))
        x = np.concatenate([X_inv[:10], z], axis=1)
        out64 = gan.generator_.forward(x, training=False).copy()
        out32 = g32.forward(x.astype(np.float32), training=False)
        np.testing.assert_allclose(out64, out32, rtol=FLOAT32_RTOL,
                                   atol=FLOAT32_ATOL)


class TestCheckpointRoundTrip:
    def test_sequential_state_dict_includes_batchnorm_stats(self, rng):
        gen, _ = _build_gd(rng)
        x = rng.normal(size=(32, 11))
        for _ in range(3):  # accumulate running statistics
            gen.forward(x, training=True)
        expected = gen.forward(x, training=False).copy()
        state = gen.state_dict()
        assert any(k.endswith("running_mean") for k in state)
        assert any(k.endswith("running_var") for k in state)

        clone, _ = _build_gd(np.random.default_rng(123))
        clone.load_state_dict(state)
        np.testing.assert_array_equal(
            clone.forward(x, training=False), expected)

    def test_adam_state_roundtrip_resumes_identically(self, rng):
        def grads_for(step, layers):
            g_rng = np.random.default_rng(step)
            for layer in layers:
                for key in layer.params:
                    layer.grads[key][...] = g_rng.normal(
                        size=layer.params[key].shape)

        net = Sequential([Dense(5, 6, random_state=1), ReLU(),
                          Dense(6, 2, random_state=2)])
        opt = Adam(net.trainable_layers(), lr=1e-3, weight_decay=1e-6)
        for step in range(5):
            grads_for(step, net.trainable_layers())
            opt.step()
        net_state = net.state_dict()
        opt_state = opt.state_dict()
        assert opt_state["t"] == 5
        # the checkpoint must be a snapshot, not views of live moments
        for step in range(5, 10):
            grads_for(step, net.trainable_layers())
            opt.step()
        direct = net.state_dict()

        resumed = Sequential([Dense(5, 6, random_state=8), ReLU(),
                              Dense(6, 2, random_state=9)])
        resumed.load_state_dict(net_state)
        opt2 = Adam(resumed.trainable_layers(), lr=1e-3, weight_decay=1e-6)
        opt2.load_state_dict(opt_state)
        assert opt2._t == 5
        for step in range(5, 10):
            grads_for(step, resumed.trainable_layers())
            opt2.step()
        for key, value in resumed.state_dict().items():
            np.testing.assert_array_equal(value, direct[key])

    def test_fused_trained_gan_state_dict_roundtrip(self, gan_data):
        """Consolidated (view-backed) params still checkpoint correctly."""
        X_inv, X_var, y = gan_data
        gan = ConditionalGAN(**_gan_kwargs()).fit(X_inv, X_var, y)
        state = gan.generator_.state_dict()
        assert all(v.base is None for v in state.values())  # real copies
        clone, _ = _build_gd(np.random.default_rng(5), n_inv=12, nv=5)
        clone.load_state_dict(state)
        z = np.random.default_rng(1).standard_normal((7, 3))
        x = np.concatenate([X_inv[:7], z], axis=1)
        np.testing.assert_array_equal(
            clone.forward(x, training=False),
            gan.generator_.forward(x, training=False))


class TestPredictProbaSpan:
    def test_span_emitted(self, tiny_5gc, tmp_path):
        from repro.core import FSGANPipeline, ReconstructionConfig
        from repro.ml import MLPClassifier
        from repro.obs import RunRecorder

        X_few, y_few, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
        pipe = FSGANPipeline(
            lambda: MLPClassifier(hidden_sizes=(16,), epochs=5,
                                  random_state=0),
            reconstruction_config=ReconstructionConfig(
                epochs=2, noise_dim=2, hidden_size=8),
            random_state=0,
        ).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        with RunRecorder(tmp_path / "run") as rec:
            pipe.predict_proba(X_test[:5])
        span = rec.tracer.find("pipeline.predict_proba")
        assert span is not None
        assert span.tags["n_samples"] == 5


class TestEstimatorStateAfterFusion:
    """Estimator-protocol checkpoints must survive consolidated networks.

    After ``consolidate()`` every ``layer.params[key]`` is a view into one
    flat vector.  ``load_state_dict`` writes in place, so restoring a
    checkpoint into a consolidated network must keep the flat-Adam aliasing
    intact (and keep updating through it), not silently detach the params.
    """

    def test_load_state_dict_writes_through_flat_views(self, rng):
        donor, _ = _build_gd(rng)
        x = rng.normal(size=(16, 11))
        donor.forward(x, training=True)
        state = donor.state_dict()

        target, _ = _build_gd(np.random.default_rng(99))
        flat_p, flat_g, _ = consolidate(target.trainable_layers())
        target.load_state_dict(state)
        for layer in target.trainable_layers():
            for key, param in layer.params.items():
                assert np.shares_memory(param, flat_p), key
        np.testing.assert_array_equal(
            target.forward(x, training=False),
            donor.forward(x, training=False))

        # the flat optimizer must still drive the restored parameters
        opt = FlatAdam(flat_p, flat_g, lr=1e-2)
        flat_g[...] = 1.0
        before = target.trainable_layers()[0].params["W"].copy()
        opt.step()
        assert not np.array_equal(
            target.trainable_layers()[0].params["W"], before)

    def test_estimator_roundtrip_covers_fused_trainer(self, gan_data):
        """Full ConditionalGAN state round trip after a fused fit."""
        from repro.core.estimator import pack_estimator, unpack_estimator

        X_inv, X_var, y = gan_data
        gan = ConditionalGAN(**_gan_kwargs()).fit(X_inv, X_var, y)
        expected = gan.generate(X_inv[:9], n_draws=2, random_state=3)

        arrays = pack_estimator(gan, "gan.")
        restored = unpack_estimator(arrays, "gan.")
        assert isinstance(restored, ConditionalGAN)
        np.testing.assert_array_equal(
            restored.generate(X_inv[:9], n_draws=2, random_state=3),
            expected)
        # the restored internal RNG stream is aligned with the original's
        np.testing.assert_array_equal(
            restored.generate(X_inv[:9], n_draws=1),
            gan.generate(X_inv[:9], n_draws=1))

    def test_roundtrip_into_consolidated_clone_keeps_flat_training(
            self, gan_data):
        """A fused-trained checkpoint restores into another fused trainee."""
        X_inv, X_var, y = gan_data
        gan = ConditionalGAN(**_gan_kwargs()).fit(X_inv, X_var, y)
        clone = ConditionalGAN(**_gan_kwargs(random_state=11)).fit(
            X_inv, X_var, y)
        # clone's networks are consolidated by its own fused fit
        clone.generator_.load_state_dict(gan.generator_.state_dict())
        clone.discriminator_.load_state_dict(
            gan.discriminator_.state_dict())
        assert _state_equal(clone.generator_, gan.generator_)
        assert _state_equal(clone.discriminator_, gan.discriminator_)
        np.testing.assert_array_equal(
            clone.generate(X_inv[:5], n_draws=1, random_state=0),
            gan.generate(X_inv[:5], n_draws=1, random_state=0))
