"""PlanCache: LRU bounds, sha256-validated hot reload, name hygiene."""

import shutil

import numpy as np
import pytest

from repro.serve import PlanCache
from repro.utils.errors import ArtifactError


def _copy_root(tenant_root, tmp_path):
    root, names, X_test = tenant_root
    for name in names:
        shutil.copy(root / f"{name}.npz", tmp_path / f"{name}.npz")
    return tmp_path, names, X_test


class TestNames:
    def test_rejects_traversal_and_separators(self, tmp_path):
        cache = PlanCache(tmp_path)
        for bad in ("../evil", "a/b", "", ".hidden", "-dash", "a b"):
            with pytest.raises(ArtifactError, match="invalid tenant name"):
                cache.path_for(bad)

    def test_accepts_boring_names(self, tmp_path):
        cache = PlanCache(tmp_path)
        for good in ("tenant-00", "a.b_c-d", "T1"):
            assert cache.path_for(good).name == f"{good}.npz"

    def test_known_tenants_lists_bundles(self, tenant_root):
        root, names, _ = tenant_root
        assert PlanCache(root).known_tenants() == names

    def test_missing_bundle_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="no artifact file"):
            PlanCache(tmp_path).get("ghost")


class TestLRU:
    def test_eviction_keeps_capacity(self, tenant_root):
        root, names, _ = tenant_root
        cache = PlanCache(root, capacity=2)
        for name in names:  # 3 tenants through a 2-slot cache
            cache.get(name)
        assert cache.loaded_tenants() == names[1:]
        assert cache.evictions == 1

    def test_hit_refreshes_recency(self, tenant_root):
        root, names, _ = tenant_root
        cache = PlanCache(root, capacity=2)
        cache.get(names[0])
        cache.get(names[1])
        cache.get(names[0])  # refresh 0, so 1 is now LRU
        cache.get(names[2])
        assert cache.loaded_tenants() == [names[0], names[2]]

    def test_capacity_must_be_positive(self, tmp_path):
        with pytest.raises(ArtifactError):
            PlanCache(tmp_path, capacity=0)

    def test_stats_counters(self, tenant_root):
        root, names, _ = tenant_root
        cache = PlanCache(root, capacity=8)
        cache.get(names[0])
        cache.get(names[0])
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert names[0] in stats["loaded"]
        assert stats["loaded"][names[0]]["content_hash"]


class TestHotReload:
    def test_stat_change_reloads(self, tenant_root, tmp_path):
        root, names, X_test = _copy_root(tenant_root, tmp_path)
        cache = PlanCache(root, capacity=8)
        first = cache.get(names[0])
        # atomically publish a different artifact under the same name
        shutil.copy(root / f"{names[1]}.npz", root / f"{names[0]}.npz")
        second = cache.get(names[0])
        assert cache.reloads == 1
        assert second.content_hash != first.content_hash
        assert second.plan is not first.plan

    def test_unchanged_file_is_not_reloaded(self, tenant_root):
        root, names, _ = tenant_root
        cache = PlanCache(root, capacity=8)
        entry = cache.get(names[0])
        assert cache.get(names[0]) is entry
        assert cache.reloads == 0

    def test_corrupt_replacement_is_rejected(self, tenant_root, tmp_path):
        root, names, _ = _copy_root(tenant_root, tmp_path)
        cache = PlanCache(root, capacity=8)
        cache.get(names[0])
        path = root / f"{names[0]}.npz"
        path.write_bytes(path.read_bytes()[:-64] + b"\0" * 64)
        with pytest.raises(ArtifactError):
            cache.get(names[0])

    def test_deleted_bundle_drops_entry(self, tenant_root, tmp_path):
        root, names, _ = _copy_root(tenant_root, tmp_path)
        cache = PlanCache(root, capacity=8)
        cache.get(names[0])
        (root / f"{names[0]}.npz").unlink()
        with pytest.raises(ArtifactError, match="no artifact file"):
            cache.get(names[0])
        assert names[0] not in cache.loaded_tenants()

    def test_invalidate_forces_reload(self, tenant_root):
        root, names, X_test = tenant_root
        cache = PlanCache(root, capacity=8)
        entry = cache.get(names[0])
        cache.invalidate(names[0])
        fresh = cache.get(names[0])
        assert fresh is not entry
        # a fresh load restores the artifact's saved RNG state, so both
        # generations score the first request identically
        a = entry.executor.score([entry.executor.check_request(X_test[:4])])
        b = fresh.executor.score([fresh.executor.check_request(X_test[:4])])
        np.testing.assert_array_equal(a[0], b[0])
