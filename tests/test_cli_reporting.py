"""Tests for the CLI and the table formatters (pure, no heavy runs)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.reporting import (
    format_ablation,
    format_multitarget,
    format_runtime,
    format_table1,
    format_variant_counts,
    summarize_improvement,
)
from repro.experiments.runner import CellResult


def make_cell(method, model, shots, score, dataset="5gc"):
    return CellResult(dataset=dataset, method=method, model=model,
                      shots=shots, scores=[score])


@pytest.fixture()
def synthetic_results():
    cells = []
    for shots, bump in ((1, 0.0), (5, 0.05), (10, 0.08)):
        for model in ("TNet", "MLP"):
            cells.append(make_cell("fs+gan", model, shots, 0.90 + bump))
            cells.append(make_cell("fs", model, shots, 0.86 + bump))
            cells.append(make_cell("srconly", model, shots, 0.20))
            cells.append(make_cell("cmt", model, shots, 0.65 + bump))
        cells.append(make_cell("dann", "-", shots, 0.55 + bump))
    return cells


class TestFormatTable1:
    def test_contains_all_rows(self, synthetic_results):
        text = format_table1(synthetic_results, dataset="5GC")
        for label in ("FS+GAN (ours)", "FS (ours)", "SrcOnly", "CMT", "DANN"):
            assert label in text

    def test_values_scaled_to_hundred(self, synthetic_results):
        text = format_table1(synthetic_results, dataset="5GC")
        assert " 90.0" in text and " 20.0" in text

    def test_model_specific_row_has_merged_cells(self, synthetic_results):
        text = format_table1(synthetic_results, dataset="5GC")
        dann_line = next(line for line in text.splitlines() if "DANN" in line)
        assert dann_line.count("55.0") == 1  # one merged value per shots block

    def test_missing_cells_render_dash(self):
        cells = [make_cell("fs", "TNet", 1, 0.9)]
        text = format_table1(cells, dataset="X")
        assert "-" in text


class TestSummarizeImprovement:
    def test_relative_improvement(self, synthetic_results):
        summary = summarize_improvement(synthetic_results)
        assert summary["best_other"] == "cmt"
        assert summary["fsgan_gain"] > summary["best_other_gain"]
        assert summary["relative_improvement"] > 0

    def test_no_other_methods(self):
        cells = [make_cell("fs+gan", "MLP", 1, 0.9),
                 make_cell("srconly", "MLP", 1, 0.2)]
        summary = summarize_improvement(cells)
        assert summary["best_other"] is None


class TestOtherFormatters:
    def test_format_ablation(self):
        cells = [make_cell("FS+GAN", "TNet", s, 0.9) for s in (1, 5)]
        cells += [make_cell("FS+VAE", "TNet", s, 0.85) for s in (1, 5)]
        text = format_ablation(cells, dataset="5GC")
        assert "FS+GAN" in text and "FS+VAE" in text and "90.0" in text

    def test_format_multitarget(self):
        scores = {(a, t, s): 0.8 for a in (1, 2) for t in (1, 2) for s in (5,)}
        text = format_multitarget({"scores": scores, "overlap": 0.7})
        assert "FS+GAN_1" in text and "0.70" in text

    def test_format_variant_counts(self):
        result = {
            "dataset": "5gc",
            "n_true_variant": 20,
            "rows": [{"shots": 1, "n_variant_mean": 10.0, "recall": 0.5,
                      "precision": 1.0}],
        }
        text = format_variant_counts(result)
        assert "10.0" in text and "0.50" in text

    def test_format_runtime(self):
        text = format_runtime({
            "dataset": "5gc", "preset": "smoke", "n_features": 67,
            "n_variant": 14, "n_ci_tests": 120, "fs_seconds": 1.5,
            "gan_train_seconds": 8.0, "inference_seconds_per_sample": 0.002,
        })
        assert "120 CI tests" in text and "ms/sample" in text


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--dataset", "5gipc",
                                  "--preset", "smoke"])
        assert args.command == "table1"
        assert args.dataset == "5gipc"
        args = parser.parse_args(["runtime"])
        assert args.command == "runtime"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_bad_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--dataset", "mnist"])

    def test_counts_command_runs(self, capsys):
        code = main(["counts", "--dataset", "5gc", "--preset", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shots" in out and "#variant" in out

    def test_table1_subset_runs(self, capsys):
        code = main([
            "table1", "--dataset", "5gc", "--preset", "smoke",
            "--methods", "srconly", "fs", "--models", "MLP",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "FS (ours)" in out and "SrcOnly" in out
