"""Unit + property tests for the SCM engine and soft interventions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import NodeSpec, SoftIntervention, StructuralCausalModel
from repro.utils.errors import GraphError, ValidationError


def simple_scm():
    """root → child, both with class effects on the child."""
    return StructuralCausalModel(
        [
            NodeSpec(name="root", noise_scale=1.0),
            NodeSpec(
                name="child",
                parents=(0,),
                weights=(0.8,),
                noise_scale=0.5,
                class_effects=(0.0, 2.0),
            ),
        ],
        n_classes=2,
    )


class TestNodeSpec:
    def test_parent_weight_mismatch(self):
        with pytest.raises(ValidationError):
            NodeSpec(name="x", parents=(0,), weights=())

    def test_negative_noise(self):
        with pytest.raises(ValidationError):
            NodeSpec(name="x", noise_scale=-1.0)


class TestSCMConstruction:
    def test_topological_order_enforced(self):
        with pytest.raises(GraphError):
            StructuralCausalModel(
                [NodeSpec(name="a", parents=(1,), weights=(1.0,)), NodeSpec(name="b")],
                n_classes=1,
            )

    def test_class_effect_length_checked(self):
        with pytest.raises(ValidationError):
            StructuralCausalModel(
                [NodeSpec(name="a", class_effects=(1.0, 2.0, 3.0))], n_classes=2
            )

    def test_adjacency(self):
        scm = simple_scm()
        A = scm.adjacency()
        assert A[0, 1] and not A[1, 0]


class TestSampling:
    def test_shape(self):
        scm = simple_scm()
        X = scm.sample(np.zeros(50, dtype=int), random_state=0)
        assert X.shape == (50, 2)

    def test_class_effect_visible(self):
        scm = simple_scm()
        X0 = scm.sample(np.zeros(400, dtype=int), random_state=0)
        X1 = scm.sample(np.ones(400, dtype=int), random_state=0)
        assert X1[:, 1].mean() - X0[:, 1].mean() > 1.0

    def test_parent_coupling(self):
        scm = simple_scm()
        X = scm.sample(np.zeros(800, dtype=int), random_state=0)
        assert np.corrcoef(X[:, 0], X[:, 1])[0, 1] > 0.5

    def test_reproducible_given_seed(self):
        scm = simple_scm()
        labels = np.zeros(20, dtype=int)
        np.testing.assert_array_equal(
            scm.sample(labels, random_state=5), scm.sample(labels, random_state=5)
        )

    def test_labels_out_of_range(self):
        scm = simple_scm()
        with pytest.raises(ValidationError):
            scm.sample(np.array([2]), random_state=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_seed_determinism_property(self, seed):
        scm = simple_scm()
        labels = np.array([0, 1, 0, 1])
        a = scm.sample(labels, random_state=seed)
        b = scm.sample(labels, random_state=seed)
        np.testing.assert_array_equal(a, b)


class TestSoftInterventions:
    def test_shift_moves_mean(self):
        scm = simple_scm()
        labels = np.zeros(500, dtype=int)
        base = scm.sample(labels, random_state=0)
        shifted = scm.sample(
            labels,
            interventions=(SoftIntervention(node=1, shift=3.0),),
            random_state=0,
        )
        assert shifted[:, 1].mean() - base[:, 1].mean() > 2.0
        # the parent is untouched
        np.testing.assert_allclose(shifted[:, 0], base[:, 0])

    def test_scale_changes_slope(self):
        scm = simple_scm()
        labels = np.zeros(2000, dtype=int)
        base = scm.sample(labels, random_state=0)
        scaled = scm.sample(
            labels,
            interventions=(SoftIntervention(node=1, scale=2.0),),
            random_state=0,
        )
        slope_base = np.polyfit(base[:, 0], base[:, 1], 1)[0]
        slope_scaled = np.polyfit(scaled[:, 0], scaled[:, 1], 1)[0]
        assert slope_scaled > 1.5 * slope_base

    def test_noise_factor_inflates_variance(self):
        scm = simple_scm()
        labels = np.zeros(2000, dtype=int)
        base = scm.sample(labels, random_state=0)
        noisy = scm.sample(
            labels,
            interventions=(SoftIntervention(node=0, noise_factor=3.0),),
            random_state=0,
        )
        assert noisy[:, 0].std() > 2.0 * base[:, 0].std()

    def test_identity_intervention_recognized(self):
        assert SoftIntervention(node=0).is_identity()
        assert not SoftIntervention(node=0, shift=1.0).is_identity()

    def test_targets_exclude_identity(self):
        scm = simple_scm()
        targets = scm.intervention_targets(
            (SoftIntervention(node=0), SoftIntervention(node=1, shift=1.0))
        )
        np.testing.assert_array_equal(targets, [1])

    def test_duplicate_intervention_rejected(self):
        scm = simple_scm()
        with pytest.raises(ValidationError):
            scm.sample(
                np.zeros(5, dtype=int),
                interventions=(
                    SoftIntervention(node=1, shift=1.0),
                    SoftIntervention(node=1, shift=2.0),
                ),
                random_state=0,
            )

    def test_unknown_node_rejected(self):
        scm = simple_scm()
        with pytest.raises(ValidationError):
            scm.sample(
                np.zeros(5, dtype=int),
                interventions=(SoftIntervention(node=7, shift=1.0),),
                random_state=0,
            )
