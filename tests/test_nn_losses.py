"""Unit tests for loss functions: values, gradients, edge cases."""

import numpy as np
import pytest

from repro.nn import (
    BinaryCrossEntropy,
    MSELoss,
    SoftmaxCrossEntropy,
    softmax,
    supervised_contrastive_loss,
)
from repro.utils.errors import ValidationError


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        assert loss.forward(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]])) == pytest.approx(2.5)

    def test_gradient(self, rng):
        loss = MSELoss()
        pred = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 3))
        loss.forward(pred, target)
        numeric = numerical_gradient(lambda: loss.forward(pred, target), pred)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))


class TestBCE:
    def test_perfect_prediction_near_zero(self):
        loss = BinaryCrossEntropy()
        p = np.array([[0.999], [0.001]])
        t = np.array([[1.0], [0.0]])
        assert loss.forward(p, t) < 0.01

    def test_gradient(self, rng):
        loss = BinaryCrossEntropy()
        pred = rng.uniform(0.1, 0.9, (5, 1))
        target = rng.integers(0, 2, (5, 1)).astype(float)
        loss.forward(pred, target)
        numeric = numerical_gradient(lambda: loss.forward(pred, target), pred)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-5)

    def test_clips_extreme_probabilities(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.array([[0.0], [1.0]]), np.array([[1.0], [0.0]]))
        assert np.isfinite(value)


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_log_k(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 3))
        target = np.eye(3)[[0, 1, 2, 0]]
        assert loss.forward(logits, target) == pytest.approx(np.log(3))

    def test_gradient(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((5, 4))
        target = np.eye(4)[rng.integers(0, 4, 5)]
        loss.forward(logits, target)
        numeric = numerical_gradient(lambda: loss.forward(logits, target), logits)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-6)

    def test_probabilities_property(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((5, 4))
        loss.forward(logits, np.eye(4)[[0] * 5])
        np.testing.assert_allclose(loss.probabilities.sum(axis=1), 1.0)

    def test_stable_for_huge_logits(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.array([[1e4, -1e4]]), np.array([[1.0, 0.0]]))
        assert np.isfinite(value)


class TestSoftmaxHelper:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.standard_normal((6, 5)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_invariant_to_shift(self, rng):
        z = rng.standard_normal((3, 4))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0))


class TestSupervisedContrastive:
    def test_separated_classes_low_loss(self, rng):
        emb = np.vstack([
            np.tile([10.0, 0.0], (5, 1)) + 0.01 * rng.standard_normal((5, 2)),
            np.tile([-10.0, 0.0], (5, 1)) + 0.01 * rng.standard_normal((5, 2)),
        ])
        labels = np.array([0] * 5 + [1] * 5)
        mixed = rng.standard_normal((10, 2))
        loss_sep, _ = supervised_contrastive_loss(emb, labels)
        loss_mixed, _ = supervised_contrastive_loss(mixed, labels)
        assert loss_sep < loss_mixed

    def test_gradient_matches_numeric(self, rng):
        emb = rng.standard_normal((6, 3))
        labels = np.array([0, 0, 1, 1, 2, 2])
        _, grad = supervised_contrastive_loss(emb, labels, temperature=0.5)

        def f():
            value, _ = supervised_contrastive_loss(emb, labels, temperature=0.5)
            return value

        numeric = numerical_gradient(f, emb)
        np.testing.assert_allclose(grad, numeric, atol=1e-4)

    def test_no_positives_returns_zero(self, rng):
        emb = rng.standard_normal((3, 2))
        loss, grad = supervised_contrastive_loss(emb, np.array([0, 1, 2]))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            supervised_contrastive_loss(np.zeros(3), np.array([0, 1, 2]))
