"""Tests for the CTGAN-style tabular transformer and mixed-type GAN heads."""

import numpy as np
import pytest

from repro.gan import TabularTransformer
from repro.nn import BlockActivation, GumbelSoftmax, Tanh
from repro.utils.errors import ValidationError


@pytest.fixture()
def mixed_table(rng):
    """Two continuous columns (one bimodal) + one 3-level discrete column."""
    n = 400
    bimodal = np.where(rng.random(n) < 0.5,
                       rng.normal(-4.0, 0.5, n), rng.normal(4.0, 0.5, n))
    unimodal = rng.normal(10.0, 2.0, n)
    discrete = rng.integers(0, 3, n).astype(float)
    return np.column_stack([bimodal, unimodal, discrete])


class TestTabularTransformer:
    def test_round_trip_continuous(self, mixed_table):
        tr = TabularTransformer(discrete_columns=(2,), random_state=0)
        Z = tr.fit_transform(mixed_table)
        back = tr.inverse_transform(Z)
        np.testing.assert_allclose(back[:, 0], mixed_table[:, 0], atol=1e-6)
        np.testing.assert_allclose(back[:, 1], mixed_table[:, 1], atol=1e-6)

    def test_round_trip_discrete_exact(self, mixed_table):
        tr = TabularTransformer(discrete_columns=(2,), random_state=0)
        Z = tr.fit_transform(mixed_table)
        back = tr.inverse_transform(Z)
        np.testing.assert_array_equal(back[:, 2], mixed_table[:, 2])

    def test_output_layout(self, mixed_table):
        tr = TabularTransformer(discrete_columns=(2,), random_state=0)
        tr.fit(mixed_table)
        kinds = [(b.kind, b.column) for b in tr.output_info_]
        # per continuous column: alpha + onehot; discrete column: onehot
        assert ("alpha", 0) in kinds and ("alpha", 1) in kinds
        assert ("onehot", 2) in kinds
        assert tr.output_dim == sum(b.size for b in tr.output_info_)

    def test_alpha_bounded(self, mixed_table):
        tr = TabularTransformer(discrete_columns=(2,), random_state=0)
        Z = tr.fit_transform(mixed_table)
        alpha_cols = []
        pos = 0
        for block in tr.output_info_:
            if block.kind == "alpha":
                alpha_cols.append(pos)
            pos += block.size
        for c in alpha_cols:
            assert np.all(np.abs(Z[:, c]) <= 1.0)

    def test_bimodal_column_gets_multiple_modes(self, mixed_table):
        tr = TabularTransformer(discrete_columns=(2,), random_state=0)
        tr.fit(mixed_table)
        kind, gmm = tr._column_models[0]
        assert kind == "continuous"
        assert gmm.n_components >= 2
        means = np.sort(gmm.means_[:, 0])
        assert means[0] < 0 < means[-1]

    def test_unseen_category_rejected(self, mixed_table):
        tr = TabularTransformer(discrete_columns=(2,), random_state=0)
        tr.fit(mixed_table)
        bad = mixed_table.copy()
        bad[0, 2] = 9.0
        with pytest.raises(ValidationError, match="unseen"):
            tr.transform(bad)

    def test_width_mismatches_rejected(self, mixed_table):
        tr = TabularTransformer(discrete_columns=(2,), random_state=0)
        tr.fit(mixed_table)
        with pytest.raises(ValidationError):
            tr.transform(mixed_table[:, :2])
        with pytest.raises(ValidationError):
            tr.inverse_transform(np.zeros((3, tr.output_dim + 1)))

    def test_discrete_column_index_checked(self, mixed_table):
        with pytest.raises(ValidationError):
            TabularTransformer(discrete_columns=(7,)).fit(mixed_table)


class TestGumbelSoftmax:
    def test_inference_is_tempered_softmax(self, rng):
        layer = GumbelSoftmax(temperature=0.5, random_state=0)
        x = rng.standard_normal((6, 4))
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)
        # lower temperature sharpens towards one-hot
        sharp = GumbelSoftmax(temperature=0.1).forward(x, training=False)
        assert sharp.max(axis=1).mean() > out.max(axis=1).mean()

    def test_training_samples_vary(self, rng):
        layer = GumbelSoftmax(temperature=0.5, random_state=0)
        x = np.zeros((4, 3))
        # forward output buffers are reused (fused engine): copy to keep both
        a = layer.forward(x, training=True).copy()
        b = layer.forward(x, training=True)
        assert not np.allclose(a, b)

    def test_gradient_matches_numeric(self, rng):
        layer = GumbelSoftmax(temperature=0.7, random_state=0)
        x = rng.standard_normal((5, 4))
        out = layer.forward(x, training=False)
        analytic = layer.backward(np.ones_like(out))
        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                xp = x.copy(); xp[i, j] += eps
                xm = x.copy(); xm[i, j] -= eps
                numeric[i, j] = (
                    layer.forward(xp, training=False).sum()
                    - layer.forward(xm, training=False).sum()
                ) / (2 * eps)
        layer.forward(x, training=False)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValidationError):
            GumbelSoftmax(temperature=0.0)


class TestBlockActivation:
    def test_applies_per_block(self, rng):
        layer = BlockActivation([(2, Tanh()), (3, GumbelSoftmax(random_state=0))])
        x = rng.standard_normal((5, 5)) * 3
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out[:, :2], np.tanh(x[:, :2]))
        np.testing.assert_allclose(out[:, 2:].sum(axis=1), 1.0)

    def test_backward_routes_gradients(self, rng):
        layer = BlockActivation([(2, Tanh()), (2, Tanh())])
        x = rng.standard_normal((4, 4))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, 1.0 - np.tanh(x) ** 2)

    def test_width_checked(self, rng):
        layer = BlockActivation([(2, Tanh())])
        with pytest.raises(ValidationError):
            layer.forward(rng.standard_normal((3, 5)))

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValidationError):
            BlockActivation([])
