"""Adaptation loop: shot buffer, shadow policy/evaluator, controller hops."""

import numpy as np
import pytest

from repro.adapt import (
    AdaptationConfig,
    AdaptationController,
    ShadowEvaluator,
    ShadowPolicy,
    ShotBuffer,
)
from repro.adapt.lineage import ArtifactLineage
from repro.experiments.bench import make_wide_pair
from repro.experiments.drift_schedule import (
    _scenario_pipeline,
    run_adapt_scenario,
)
from repro.utils.errors import ValidationError

WIDTH = 24
BATCH_ROWS = 64

#: the lifecycle tests exercise state transitions, not promotion judgement:
#: a candidate refit on a genuinely drifted domain *should* disagree with
#: the incumbent, so the policy accepts any bounded divergence
PERMISSIVE = ShadowPolicy(
    agreement_batches=1,
    max_disagreement=1.0,
    abort_disagreement=1.0,
    max_batches=16,
)


class TestShotBuffer:
    def test_accumulates_rows(self):
        buf = ShotBuffer(capacity=100)
        assert buf.add(np.zeros((30, 4))) == 30
        assert buf.add(np.ones((20, 4))) == 50
        assert buf.count == 50
        assert buf.matrix().shape == (50, 4)

    def test_overflow_drops_oldest_rows(self):
        buf = ShotBuffer(capacity=5)
        buf.add(np.full((4, 1), 1.0))
        buf.add(np.full((3, 1), 2.0))
        assert buf.count == 5
        # the head batch is trimmed, not the tail: most recent rows win
        np.testing.assert_array_equal(
            buf.matrix().ravel(), [1.0, 1.0, 2.0, 2.0, 2.0]
        )

    def test_oversized_batch_keeps_its_tail(self):
        buf = ShotBuffer(capacity=3)
        buf.add(np.arange(8.0).reshape(8, 1))
        np.testing.assert_array_equal(buf.matrix().ravel(), [5.0, 6.0, 7.0])

    def test_empty_matrix_raises(self):
        with pytest.raises(ValidationError, match="empty"):
            ShotBuffer().matrix()

    def test_clear(self):
        buf = ShotBuffer()
        buf.add(np.zeros((4, 2)))
        buf.clear()
        assert buf.count == 0

    def test_capacity_validated(self):
        with pytest.raises(ValidationError, match="capacity"):
            ShotBuffer(capacity=0)


class TestShadowPolicy:
    def test_defaults_valid(self):
        policy = ShadowPolicy()
        assert policy.agreement_batches >= 1
        assert policy.abort_disagreement >= policy.max_disagreement

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"agreement_batches": 0}, "agreement_batches"),
            ({"max_disagreement": -0.1}, "max_disagreement"),
            (
                {"max_disagreement": 0.4, "abort_disagreement": 0.1},
                "abort_disagreement",
            ),
            ({"max_batches": 0}, "max_batches"),
        ],
    )
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ValidationError, match=match):
            ShadowPolicy(**kwargs)


class TestShadowEvaluator:
    def _proba(self, p):
        return np.array([[p, 1.0 - p]])

    def test_promotes_after_agreement_window(self):
        ev = ShadowEvaluator("t", ShadowPolicy(agreement_batches=3,
                                               max_disagreement=0.01))
        inc = self._proba(0.8)
        assert ev.observe(inc, self._proba(0.805)) is None
        assert ev.observe(inc, self._proba(0.795)) is None
        assert ev.observe(inc, self._proba(0.8)) == "promote"
        assert ev.verdict == "promote"

    def test_disagreement_resets_streak(self):
        ev = ShadowEvaluator("t", ShadowPolicy(agreement_batches=2,
                                               max_disagreement=0.01,
                                               abort_disagreement=0.4))
        inc = self._proba(0.8)
        assert ev.observe(inc, inc) is None
        assert ev.observe(inc, self._proba(0.7)) is None  # streak broken
        assert ev.agreement_streak == 0
        assert ev.observe(inc, inc) is None
        assert ev.observe(inc, inc) == "promote"

    def test_aborts_on_regression_guard(self):
        ev = ShadowEvaluator("t", ShadowPolicy(abort_disagreement=0.3))
        assert ev.observe(self._proba(0.9), self._proba(0.1)) == "abort"

    def test_aborts_on_max_batches(self):
        ev = ShadowEvaluator("t", ShadowPolicy(agreement_batches=3,
                                               max_disagreement=0.01,
                                               abort_disagreement=0.5,
                                               max_batches=2))
        inc = self._proba(0.8)
        assert ev.observe(inc, self._proba(0.7)) is None
        assert ev.observe(inc, self._proba(0.7)) == "abort"

    def test_verdict_is_sticky(self):
        ev = ShadowEvaluator("t", ShadowPolicy(agreement_batches=1,
                                               max_disagreement=0.1))
        inc = self._proba(0.8)
        assert ev.observe(inc, inc) == "promote"
        # a later wildly-divergent batch cannot overturn the decision
        assert ev.observe(inc, self._proba(0.0)) == "promote"
        assert ev.batches == 1

    def test_shape_mismatch_raises(self):
        ev = ShadowEvaluator("t")
        with pytest.raises(ValidationError, match="shapes differ"):
            ev.observe(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_stats_snapshot(self):
        ev = ShadowEvaluator("t", ShadowPolicy(agreement_batches=5,
                                               max_disagreement=0.2))
        ev.observe(self._proba(0.8), self._proba(0.75))
        stats = ev.stats()
        assert stats["batches"] == 1
        assert stats["rows"] == 1
        assert stats["max_abs_diff"] == pytest.approx(0.05)
        assert stats["verdict"] is None


def _fit_pipeline(X_source, X_prior, random_state=0):
    y = (X_source[:, 0] > np.median(X_source[:, 0])).astype(np.int64)
    return _scenario_pipeline(1, 2, random_state).fit(X_source, y, X_prior)


def _adapt_config(**overrides):
    defaults = dict(
        min_shots=64,
        shot_capacity=256,
        drift_options={"min_rows": 192, "window_rows": 256, "n_bins": 8,
                       "psi_threshold": 1.5, "name": "adapt-test"},
        policy=PERMISSIVE,
        subscribe_alarms=False,
    )
    defaults.update(overrides)
    return AdaptationConfig(**defaults)


def _batches(pool, n=24):
    return [pool[i * BATCH_ROWS:(i + 1) * BATCH_ROWS] for i in range(n)]


class TestControllerLifecycle:
    def test_requires_training_cache(self, tmp_path):
        from repro.core.artifacts import load_artifact, save_artifact

        src, prior = make_wide_pair(WIDTH, n_target=96, random_state=5)
        pipeline = _fit_pipeline(src, prior)
        # an artifact round trip drops the training cache: the controller
        # must refuse a pipeline it cannot refit
        reloaded = load_artifact(
            save_artifact(pipeline, tmp_path / "p.npz")
        ).estimator
        with pytest.raises(ValidationError, match="training"):
            AdaptationController(
                reloaded, ArtifactLineage(tmp_path / "store"), "t"
            )

    def test_single_hop_reaches_promoted(self, tmp_path):
        src, prior = make_wide_pair(WIDTH, n_target=96, random_state=5)
        pipeline = _fit_pipeline(src, prior)
        pool_rows = 24 * BATCH_ROWS
        pre_pool, post_pool = make_wide_pair(
            WIDTH, n_source=pool_rows, n_target=pool_rows, random_state=7
        )
        lineage = ArtifactLineage(tmp_path / "store")
        with AdaptationController(
            pipeline, lineage, "t", _adapt_config()
        ) as controller:
            assert controller.state == "WATCHING"
            assert lineage.active("t").generation == 0
            for batch in _batches(pre_pool, n=4):
                assert controller.observe(batch) == "WATCHING"
            final = None
            for batch in _batches(post_pool):
                final = controller.observe(batch)
                if final == "PROMOTED":
                    break
            assert final == "PROMOTED"
            assert controller.generation == 1
            assert controller.alarm_batch is not None
            assert controller.timings["rediscover_warm"] is True
            assert controller.timings["alarm_to_promotion_seconds"] > 0
            diff = controller.variant_diff
            assert sorted(diff) == ["added", "kept", "removed"]
            seen = [e["state"] for e in controller.timeline]
            assert seen[:4] == ["ACCUMULATING", "REDISCOVERING",
                               "REFITTING", "SHADOW"]
        states = {v.generation: v.lifecycle_state for v in lineage.history("t")}
        assert states == {0: "retired", 1: "active"}

    def test_two_hop_target1_to_target2(self, tmp_path):
        """The paper's Target_1 -> Target_2 regime: two chained adaptations.

        After promoting the Target_1 adapter, the drift tracker re-references
        on the accumulated Target_1 window, so the second domain is detected
        *relative to the first*; the second re-discovery warm-starts from the
        warm state the first hop persisted, chaining generations 0 -> 1 -> 2.
        """
        src, prior = make_wide_pair(WIDTH, n_target=96, random_state=5)
        pipeline = _fit_pipeline(src, prior)
        pool_rows = 24 * BATCH_ROWS
        pre_pool, t1_pool = make_wide_pair(
            WIDTH, n_source=pool_rows, n_target=pool_rows, random_state=7
        )
        # Target_2 doubles the mechanism shift, so it is drifted relative
        # to Target_1 by the same margin Target_1 was relative to source
        _, t2_pool = make_wide_pair(
            WIDTH, n_source=8, n_target=pool_rows, drift=2.4, random_state=8
        )
        lineage = ArtifactLineage(tmp_path / "store")
        with AdaptationController(
            pipeline, lineage, "t", _adapt_config()
        ) as controller:
            for batch in _batches(pre_pool, n=4):
                controller.observe(batch)

            hop1 = None
            for batch in _batches(t1_pool):
                if controller.observe(batch) == "PROMOTED":
                    hop1 = controller.batches
                    break
            assert hop1 is not None, "first hop never promoted"
            assert controller.generation == 1
            hop1_alarm = controller.alarm_batch
            assert controller.timings["rediscover_warm"] is True

            hop2 = None
            for batch in _batches(t2_pool):
                if controller.observe(batch) == "PROMOTED":
                    hop2 = controller.batches
                    break
            assert hop2 is not None, "second hop never promoted"
            assert controller.generation == 2
            # a fresh alarm fired against the re-referenced tracker
            assert controller.alarm_batch > hop1_alarm
            # the second re-discovery warm-started from hop 1's warm state
            assert controller.timings["rediscover_warm"] is True
            stats = pipeline.separator_.cache_stats_
            assert stats["warmed"] is True
            assert stats["warm_hits"] > 0

        history = [(v.generation, v.lifecycle_state)
                   for v in lineage.history("t")]
        assert history == [(0, "retired"), (1, "retired"), (2, "active")]
        # lineage is a chain: each generation's parent is its predecessor
        versions = lineage.history("t")
        assert versions[1].parent_hash == versions[0].content_hash
        assert versions[2].parent_hash == versions[1].content_hash

    def test_manual_promotion_mode_leaves_candidate_in_shadow(self, tmp_path):
        src, prior = make_wide_pair(WIDTH, n_target=96, random_state=5)
        pipeline = _fit_pipeline(src, prior)
        pool_rows = 24 * BATCH_ROWS
        _, post_pool = make_wide_pair(
            WIDTH, n_source=pool_rows, n_target=pool_rows, random_state=7
        )
        lineage = ArtifactLineage(tmp_path / "store")
        with AdaptationController(
            pipeline, lineage, "t", _adapt_config(auto_promote=False)
        ) as controller:
            state = None
            for batch in _batches(post_pool):
                state = controller.observe(batch)
                # a winning verdict re-arms to WATCHING but keeps the
                # candidate parked for the manual promote
                if state == "WATCHING" and controller.status()["candidate"]:
                    break
            assert state == "WATCHING"
            candidate = controller.status()["candidate"]
            assert candidate is not None
        # the winning candidate waits for `repro adapt promote`
        assert lineage.active("t").generation == 0
        assert lineage.history("t")[-1].lifecycle_state == "shadow"
        promoted = lineage.promote("t", candidate)
        assert promoted.generation == 1
        assert lineage.active("t").content_hash == candidate


class TestScenarioDriver:
    def test_abrupt_scenario_end_to_end(self):
        result = run_adapt_scenario(
            WIDTH, n_batches=24, onset_batch=5, min_shots=64,
            cold_rounds=1, random_state=0,
        )
        assert result["promoted"] is True
        assert result["final_state"] == "PROMOTED"
        assert result["alarm_batch"] >= result["onset_batch"]
        assert result["detection_latency_batches"] >= 0
        assert result["shots_to_refit"] >= 64
        assert result["rediscover_warm"] is True
        assert result["warm_speedup"] > 0
        assert result["variant_equivalent"] is True
        assert result["lineage_history"] == [(0, "retired"), (1, "active")]

    def test_gradual_schedule_shapes(self):
        from repro.experiments.drift_schedule import make_drift_schedule

        data = make_drift_schedule(
            16, schedule="gradual", n_batches=8, batch_rows=32,
            onset_batch=4, ramp_batches=2, n_source=64, n_prior=16,
        )
        assert len(data["batches"]) == 8
        assert all(b.shape == (32, 16) for b in data["batches"])

    def test_bad_schedule_rejected(self):
        from repro.experiments.drift_schedule import make_drift_schedule

        with pytest.raises(ValidationError, match="schedule"):
            make_drift_schedule(16, schedule="sudden")
        with pytest.raises(ValidationError, match="onset_batch"):
            make_drift_schedule(16, onset_batch=0)
