"""Unit tests for decision trees, random forest and gradient boosting."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
    RegressionTree,
    accuracy_score,
)
from repro.utils.errors import NotFittedError, ValidationError


class TestDecisionTree:
    def test_fits_and_pattern_with_depth_two(self):
        # greedy CART cannot split XOR (zero first-level gini decrease),
        # but learns AND exactly with two levels
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 10, dtype=float)
        y = np.array([0, 0, 0, 1] * 10)
        tree = DecisionTreeClassifier(max_depth=2, random_state=0)
        tree.fit(X, y)
        assert accuracy_score(y, tree.predict(X)) == 1.0

    def test_single_split_threshold(self):
        X = np.array([[1.0], [2.0], [3.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.depth() == 1
        assert tree.root_.threshold == pytest.approx(6.5)

    def test_max_depth_respected(self, blob_data):
        X, y, _, _ = blob_data
        tree = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self, blob_data):
        X, y, _, _ = blob_data
        tree = DecisionTreeClassifier(min_samples_leaf=20, random_state=0).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 20
            else:
                check(node.left)
                check(node.right)

        check(tree.root_)

    def test_predict_proba_rows_sum_to_one(self, blob_data):
        X, y, X_test, _ = blob_data
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        np.testing.assert_allclose(tree.predict_proba(X_test).sum(axis=1), 1.0)

    def test_pure_node_stops(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.depth() == 0

    def test_deterministic_given_seed(self, blob_data):
        X, y, X_test, _ = blob_data
        pred1 = DecisionTreeClassifier(max_features="sqrt", random_state=5).fit(X, y).predict(X_test)
        pred2 = DecisionTreeClassifier(max_features="sqrt", random_state=5).fit(X, y).predict(X_test)
        np.testing.assert_array_equal(pred1, pred2)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_depth=0)

    def test_string_labels(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array(["ok", "ok", "fault", "fault"])
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.predict([[12.0]])[0] == "fault"


class TestRandomForest:
    def test_beats_chance_on_blobs(self, blob_data):
        X, y, X_test, y_test = blob_data
        forest = RandomForestClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert accuracy_score(y_test, forest.predict(X_test)) > 0.9

    def test_proba_shape_and_sum(self, blob_data):
        X, y, X_test, _ = blob_data
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        proba = forest.predict_proba(X_test)
        assert proba.shape == (len(X_test), 4)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_sample_weight_shifts_predictions(self, blob_data):
        X, y, X_test, _ = blob_data
        w = np.where(y == 0, 1000.0, 1.0)
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y, sample_weight=w)
        # class 0 dominates the bootstrap, so most predictions collapse to it
        assert np.mean(forest.predict(X_test) == 0) > 0.8

    def test_rejects_negative_weights(self, blob_data):
        X, y, _, _ = blob_data
        with pytest.raises(ValidationError):
            RandomForestClassifier(n_estimators=2).fit(X, y, sample_weight=-np.ones(len(y)))

    def test_feature_count_checked_at_predict(self, blob_data):
        X, y, _, _ = blob_data
        forest = RandomForestClassifier(n_estimators=2, random_state=0).fit(X, y)
        with pytest.raises(ValidationError):
            forest.predict(np.zeros((2, X.shape[1] + 1)))


class TestRegressionTree:
    def test_constant_leaf_value_is_newton_step(self):
        X = np.array([[1.0], [2.0], [3.0]])
        g = np.array([3.0, 3.0, 3.0])
        h = np.array([1.0, 1.0, 1.0])
        tree = RegressionTree(max_depth=1, reg_lambda=0.0, random_state=0).fit(X, g, h)
        np.testing.assert_allclose(tree.predict(X), -3.0)

    def test_splits_on_gradient_structure(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        g = np.array([1.0, 1.0, -1.0, -1.0])
        h = np.ones(4)
        tree = RegressionTree(max_depth=2, random_state=0).fit(X, g, h)
        pred = tree.predict(X)
        assert pred[0] < 0 < pred[2]

    def test_rejects_mismatched_g_h(self):
        with pytest.raises(ValidationError):
            RegressionTree().fit(np.zeros((3, 1)), np.zeros(2), np.zeros(3))


class TestGradientBoosting:
    def test_beats_chance_on_blobs(self, blob_data):
        X, y, X_test, y_test = blob_data
        clf = GradientBoostingClassifier(n_estimators=8, random_state=0).fit(X, y)
        assert accuracy_score(y_test, clf.predict(X_test)) > 0.9

    def test_binary_classification(self, binary_blob_data):
        X, y, X_test, y_test = binary_blob_data
        clf = GradientBoostingClassifier(n_estimators=8, random_state=0).fit(X, y)
        assert accuracy_score(y_test, clf.predict(X_test)) > 0.9

    def test_proba_sums_to_one(self, blob_data):
        X, y, X_test, _ = blob_data
        clf = GradientBoostingClassifier(n_estimators=4, random_state=0).fit(X, y)
        np.testing.assert_allclose(clf.predict_proba(X_test).sum(axis=1), 1.0)

    def test_more_rounds_reduce_train_error(self, blob_data):
        X, y, _, _ = blob_data
        few = GradientBoostingClassifier(n_estimators=1, random_state=0).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert accuracy_score(y, many.predict(X)) >= accuracy_score(y, few.predict(X))

    def test_requires_two_classes(self):
        with pytest.raises(ValidationError):
            GradientBoostingClassifier().fit(np.zeros((4, 2)), np.zeros(4))

    def test_subsample_validated(self):
        with pytest.raises(ValidationError):
            GradientBoostingClassifier(subsample=0.0)

    def test_sample_weight_accepted(self, blob_data):
        X, y, X_test, y_test = blob_data
        clf = GradientBoostingClassifier(n_estimators=4, random_state=0)
        clf.fit(X, y, sample_weight=np.ones(len(y)))
        assert accuracy_score(y_test, clf.predict(X_test)) > 0.8
