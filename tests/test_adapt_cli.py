"""CLI surfaces of the adaptation lifecycle: rediscover --json, repro adapt."""

import json

import numpy as np
import pytest

from repro.adapt.lineage import ArtifactLineage
from repro.cli import main
from repro.core.artifacts import save_artifact
from repro.core.config import FSConfig
from repro.core.feature_separation import FeatureSeparator
from repro.experiments.bench import make_wide_pair
from repro.ml import MLPClassifier


@pytest.fixture(scope="module")
def rediscover_setup(tmp_path_factory):
    """A separator artifact with warm state + source/target matrices on disk."""
    root = tmp_path_factory.mktemp("rediscover")
    src, tgt_same = make_wide_pair(
        16, n_source=240, n_target=96, drift=0.0, random_state=3
    )
    _, tgt_drifted = make_wide_pair(
        16, n_source=8, n_target=96, drift=1.2, random_state=4
    )
    sep = FeatureSeparator(FSConfig(warm_mode="confirm")).fit(src, tgt_same)
    artifact = root / "sep.npz"
    save_artifact(sep, artifact)
    np.save(root / "src.npy", src)
    np.save(root / "tgt_same.npy", tgt_same)
    np.save(root / "tgt_drifted.npy", tgt_drifted)
    return root, artifact


class TestRediscoverJson:
    def test_unchanged_variant_set_exits_zero(self, rediscover_setup, capsys):
        root, artifact = rediscover_setup
        code = main([
            "rediscover", "--artifact", str(artifact),
            "--source", str(root / "src.npy"),
            "--target", str(root / "tgt_same.npy"), "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["changed"] is False
        assert doc["added"] == [] and doc["removed"] == []
        assert doc["warm_cache"]["warmed"] is True

    def test_changed_variant_set_exits_three(self, rediscover_setup, capsys):
        root, artifact = rediscover_setup
        # diff's 0/1 idiom, one up: 3 gates a full refit in scripts
        code = main([
            "rediscover", "--artifact", str(artifact),
            "--source", str(root / "src.npy"),
            "--target", str(root / "tgt_drifted.npy"), "--json",
        ])
        assert code == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["changed"] is True
        assert doc["added"]  # the drifted parents became variant
        assert doc["n_variant"] == len(doc["added"]) + len(doc["kept"])
        assert set(doc["warm_cache"]) >= {"warm_hits", "warm_misses", "mode"}

    def test_human_report_still_default(self, rediscover_setup, capsys):
        root, artifact = rediscover_setup
        code = main([
            "rediscover", "--artifact", str(artifact),
            "--source", str(root / "src.npy"),
            "--target", str(root / "tgt_same.npy"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "re-discovery" in out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)


@pytest.fixture()
def adapt_root(tmp_path, blob_data):
    """A lineage root: gen 0 active + gen 1 candidate for one tenant."""
    X_train, y_train, _, _ = blob_data
    lineage = ArtifactLineage(tmp_path / "store")
    for seed, kwargs in ((0, dict(parent=None, state="active")), (1, {})):
        model = MLPClassifier(
            hidden_sizes=(8,), epochs=6, random_state=seed
        ).fit(X_train, y_train)
        lineage.publish("nf-east", model, **kwargs)
    return lineage


class TestAdaptSubcommands:
    def test_status_lists_generations_with_markers(self, adapt_root, capsys):
        code = main(["adapt", "status", "--root", str(adapt_root.root)])
        assert code == 0
        out = capsys.readouterr().out
        assert "nf-east:" in out
        assert "* gen 0  active" in out
        assert "gen 1  candidate" in out

    def test_status_empty_root_exits_one(self, tmp_path, capsys):
        code = main(["adapt", "status", "--root", str(tmp_path / "empty")])
        assert code == 1
        assert "no lineage-managed tenants" in capsys.readouterr().out

    def test_promote_then_rollback_round_trip(self, adapt_root, capsys):
        root = str(adapt_root.root)
        code = main(["adapt", "promote", "--root", root,
                     "--tenant", "nf-east"])
        assert code == 0
        assert "promoted nf-east to gen 1" in capsys.readouterr().out
        assert adapt_root.active("nf-east").generation == 1

        code = main(["adapt", "status", "--root", root])
        assert code == 0
        out = capsys.readouterr().out
        assert "* gen 1  active" in out
        assert "rollback would restore gen 0" in out

        code = main(["adapt", "rollback", "--root", root,
                     "--tenant", "nf-east"])
        assert code == 0
        assert "rolled nf-east back to gen 0" in capsys.readouterr().out
        assert adapt_root.active("nf-east").generation == 0

    def test_promote_without_candidate_reports_error(self, tmp_path, blob_data,
                                                     capsys):
        X_train, y_train, _, _ = blob_data
        lineage = ArtifactLineage(tmp_path / "store")
        model = MLPClassifier(
            hidden_sizes=(8,), epochs=6, random_state=0
        ).fit(X_train, y_train)
        lineage.publish("solo", model, parent=None, state="active")
        code = main(["adapt", "promote", "--root", str(lineage.root),
                     "--tenant", "solo"])
        assert code == 1
        assert "no candidate" in capsys.readouterr().err

    def test_rollback_without_previous_reports_error(self, adapt_root, capsys):
        code = main(["adapt", "rollback", "--root", str(adapt_root.root),
                     "--tenant", "nf-east"])
        assert code == 1
        assert "no previous" in capsys.readouterr().err
