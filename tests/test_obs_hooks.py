"""Tests for training telemetry hooks (repro.obs.hooks) wired into the
generative training loops."""

import numpy as np
import pytest

from repro.gan import ConditionalGAN, ConditionalVAE, VanillaAutoencoder
from repro.obs.hooks import (
    NULL_HOOK,
    HistoryHook,
    HookList,
    MetricsHook,
    TrainingHook,
    as_hook,
)
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.utils.errors import ValidationError

EPOCHS = 3


@pytest.fixture(scope="module")
def training_data():
    rng = np.random.default_rng(0)
    X_inv = rng.normal(size=(48, 5))
    X_var = X_inv[:, :3] @ rng.normal(size=(3, 2)) + 0.1 * rng.normal(size=(48, 2))
    y = rng.integers(0, 2, size=48)
    y_onehot = np.eye(2)[y]
    return X_inv, X_var, y_onehot


def tiny_gan(**kw):
    return ConditionalGAN(
        noise_dim=3, hidden_size=8, epochs=EPOCHS, batch_size=16,
        random_state=0, **kw,
    )


class TestAsHook:
    def test_none_is_inactive_null(self):
        hook = as_hook(None)
        assert hook is NULL_HOOK
        assert not hook.active
        # all phases are harmless no-ops
        hook.on_train_begin(None, 5)
        hook.on_epoch_end(0, {})
        hook.on_train_end({})

    def test_single_hook_passthrough(self):
        hook = HistoryHook()
        assert as_hook(hook) is hook

    def test_list_becomes_composite(self):
        a, b = HistoryHook(), HistoryHook()
        hook = as_hook([a, b])
        assert isinstance(hook, HookList)
        hook.on_epoch_end(0, {"loss": 1.0})
        assert len(a.epochs) == len(b.epochs) == 1

    def test_non_hook_rejected(self):
        with pytest.raises(ValidationError):
            as_hook([object()])

    def test_composite_grad_norm_opt_in(self):
        assert not HookList([HistoryHook()]).wants_grad_norms
        assert HookList([HistoryHook(), HistoryHook(grad_norms=True)]).wants_grad_norms


class TestGANHooks:
    def test_invocation_counts_and_logs(self, training_data):
        X_inv, X_var, y_onehot = training_data
        hook = HistoryHook()
        gan = tiny_gan()
        gan.fit(X_inv, X_var, y_onehot, hooks=hook)
        assert hook.n_train_begin == 1
        assert hook.n_train_end == 1
        assert hook.model is gan
        assert len(hook.epochs) == EPOCHS
        assert [e["epoch"] for e in hook.epochs] == list(range(EPOCHS))
        for logs in hook.epochs:
            assert {"d_loss", "g_loss", "seconds"} <= set(logs)
            assert logs["seconds"] >= 0.0
            assert "d_grad_norm" not in logs  # not requested

    def test_grad_norms_on_request(self, training_data):
        X_inv, X_var, y_onehot = training_data
        hook = HistoryHook(grad_norms=True)
        tiny_gan().fit(X_inv, X_var, y_onehot, hooks=hook)
        for logs in hook.epochs:
            assert logs["d_grad_norm"] > 0.0
            assert logs["g_grad_norm"] > 0.0

    def test_hooks_do_not_change_training(self, training_data):
        X_inv, X_var, y_onehot = training_data
        plain = tiny_gan().fit(X_inv, X_var, y_onehot)
        hooked = tiny_gan().fit(
            X_inv, X_var, y_onehot, hooks=HistoryHook(grad_norms=True)
        )
        out_plain = plain.generate(X_inv, random_state=0)
        out_hooked = hooked.generate(X_inv, random_state=0)
        np.testing.assert_array_equal(out_plain, out_hooked)
        assert plain.history_["d_loss"] == hooked.history_["d_loss"]


class TestVAEAndAEHooks:
    def test_vae_epochs(self, training_data):
        X_inv, X_var, _ = training_data
        hook = HistoryHook(grad_norms=True)
        ConditionalVAE(
            latent_dim=2, hidden_size=8, epochs=EPOCHS, batch_size=16, random_state=0
        ).fit(X_inv, X_var, hooks=hook)
        assert hook.n_train_begin == 1 and hook.n_train_end == 1
        assert len(hook.epochs) == EPOCHS
        for logs in hook.epochs:
            assert {"loss", "seconds"} <= set(logs)
            assert logs["grad_norm"] > 0.0

    def test_autoencoder_epochs(self, training_data):
        X_inv, X_var, _ = training_data
        hook = HistoryHook()
        VanillaAutoencoder(
            hidden_size=8, epochs=EPOCHS, batch_size=16, random_state=0
        ).fit(X_inv, X_var, hooks=hook)
        assert len(hook.epochs) == EPOCHS
        assert all("loss" in logs and "seconds" in logs for logs in hook.epochs)


class TestMetricsHook:
    def test_feeds_registry(self, training_data):
        X_inv, X_var, y_onehot = training_data
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            tiny_gan().fit(X_inv, X_var, y_onehot, hooks=MetricsHook("ctgan"))
        finally:
            set_metrics(previous)
        # hook-fed histograms (prefix 'ctgan') …
        assert registry.histogram("ctgan_d_loss").count == EPOCHS
        assert registry.histogram("ctgan_g_loss").count == EPOCHS
        assert registry.gauge("ctgan_final_epochs").value == EPOCHS
        # … plus the loop's own gan_* histograms, active whenever metrics are on
        assert registry.histogram("gan_epoch_seconds").count == EPOCHS
        assert registry.histogram("gan_epoch_seconds").summary()["p50"] > 0.0


class TestCustomHook:
    def test_subclass_receives_all_phases(self, training_data):
        X_inv, X_var, _ = training_data

        calls = []

        class Probe(TrainingHook):
            def on_train_begin(self, model, n_epochs):
                calls.append(("begin", n_epochs))

            def on_epoch_end(self, epoch, logs):
                calls.append(("epoch", epoch))

            def on_train_end(self, logs):
                calls.append(("end", logs["epochs"]))

        VanillaAutoencoder(
            hidden_size=8, epochs=2, batch_size=16, random_state=0
        ).fit(X_inv, X_var, hooks=Probe())
        assert calls == [("begin", 2), ("epoch", 0), ("epoch", 1), ("end", 2)]
