"""Tests for the batched/parallel CI-test engine behind F-node discovery.

The engine is a performance layer, so the contract under test is
*equivalence*: batched marginal p-values match the scalar test, the
level-batched subset search matches the sequential reference loop, and the
process-pool path is bit-identical to serial — including the observability
counters replayed in the parent process.
"""

import numpy as np
import pytest

from repro.causal import FNodeDiscovery
from repro.causal.ci_tests import regression_invariance_test
from repro.causal.engine import (
    CIEngine,
    batch_ks_pvalues,
    batch_welch_t_pvalues,
    combined_invariance_pvalues,
    resolve_n_jobs,
)
from repro.experiments.bench import reference_discover
from repro.ml import MinMaxScaler
from repro.obs import RunRecorder
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def domain_pair(tiny_5gc):
    """Scaled (source, few-shot target) matrices off the seeded benchmark."""
    X_few, _, _, _ = tiny_5gc.few_shot_split(10, random_state=0)
    scaler = MinMaxScaler().fit(tiny_5gc.X_source)
    return scaler.transform(tiny_5gc.X_source), scaler.transform(X_few)


class TestBatchedStats:
    def test_welch_t_matches_scipy(self, rng):
        from scipy import stats

        A = rng.standard_normal((60, 8))
        B = rng.standard_normal((25, 8)) + 0.5
        batched = batch_welch_t_pvalues(A, B)
        for k in range(8):
            _, p = stats.ttest_ind(A[:, k], B[:, k], equal_var=False)
            assert batched[k] == pytest.approx(p, rel=1e-12)

    def test_ks_matches_scipy(self, rng):
        from scipy import stats

        A = rng.standard_normal((60, 8))
        B = rng.standard_normal((25, 8)) + 0.5
        batched = batch_ks_pvalues(A, B)
        for k in range(8):
            p = stats.ks_2samp(A[:, k], B[:, k], method="asymp").pvalue
            assert batched[k] == pytest.approx(p, rel=1e-12)

    def test_combined_handles_constant_columns(self):
        res_s = np.column_stack([np.full(30, 2.0), np.full(30, 2.0)])
        res_t = np.column_stack([np.full(10, 2.0), np.full(10, 5.0)])
        out = combined_invariance_pvalues(res_s, res_t)
        assert out[0] == 1.0  # same constant in both domains
        assert out[1] == 0.0  # different constants: maximal evidence of drift


class TestMarginalSweep:
    def test_matches_scalar_test(self, domain_pair):
        Xs, Xt = domain_pair
        engine = CIEngine(Xs, Xt)
        batched = engine.marginal_pvalues()
        for j in range(Xs.shape[1]):
            p = regression_invariance_test(Xs[:, j], Xt[:, j])
            assert batched[j] == pytest.approx(p, rel=1e-9, abs=1e-12)

    def test_constant_column(self, rng):
        Xs = rng.standard_normal((50, 3))
        Xt = rng.standard_normal((20, 3))
        Xs[:, 1] = 7.0
        Xt[:, 1] = 7.0
        engine = CIEngine(Xs, Xt)
        p = engine.marginal_pvalues()[1]
        assert p == regression_invariance_test(Xs[:, 1], Xt[:, 1]) == 1.0

    def test_too_few_samples_all_pass(self, rng):
        engine = CIEngine(rng.standard_normal((2, 4)), rng.standard_normal((5, 4)))
        np.testing.assert_array_equal(engine.marginal_pvalues(), np.ones(4))


class TestConditionalCache:
    def test_matches_scalar_test(self, domain_pair):
        Xs, Xt = domain_pair
        engine = CIEngine(Xs, Xt)
        subsets = [(1,), (2,), (1, 2), (3, 5)]
        batched = engine.conditional_pvalues(0, subsets)
        for k, cols in enumerate(subsets):
            p = regression_invariance_test(
                Xs[:, 0], Xt[:, 0], Xs[:, list(cols)], Xt[:, list(cols)]
            )
            assert batched[k] == pytest.approx(p, rel=1e-9, abs=1e-12)

    def test_cache_is_consistent(self, domain_pair):
        Xs, Xt = domain_pair
        engine = CIEngine(Xs, Xt)
        subsets = [(1,), (1, 2)]
        first = engine.conditional_pvalues(0, subsets)
        again = engine.conditional_pvalues(0, subsets)  # cached designs
        np.testing.assert_array_equal(first, again)
        assert (1,) in engine._designs and (1, 2) in engine._designs

    def test_search_skips_cleared_marginal(self, domain_pair):
        Xs, Xt = domain_pair
        engine = CIEngine(Xs, Xt)
        best_p, separating, n_tests, log, completed = engine.search_feature(
            0, (1, 2), 0.9, alpha=0.01, max_cond_size=2
        )
        assert (best_p, separating, n_tests, log, completed) == (0.9, (), 0, [], True)


class TestReferenceEquivalence:
    def test_discovery_matches_reference_loop(self, domain_pair):
        Xs, Xt = domain_pair
        result = FNodeDiscovery().discover(Xs, Xt)
        ref = reference_discover(Xs, Xt)
        np.testing.assert_array_equal(result.variant_indices, ref.variant_indices)
        np.testing.assert_allclose(result.p_values, ref.p_values, rtol=1e-9)
        assert result.parent_sets == ref.parent_sets
        assert result.n_tests == ref.n_tests


class TestParallelEquivalence:
    def test_bit_identical_to_serial(self, domain_pair):
        Xs, Xt = domain_pair
        serial = FNodeDiscovery(n_jobs=1).discover(Xs, Xt)
        parallel = FNodeDiscovery(n_jobs=4).discover(Xs, Xt)
        np.testing.assert_array_equal(serial.variant_indices, parallel.variant_indices)
        np.testing.assert_array_equal(serial.p_values, parallel.p_values)
        assert serial.parent_sets == parallel.parent_sets
        assert serial.n_tests == parallel.n_tests

    def test_shared_memory_bit_identical_to_serial(self, domain_pair):
        from repro.causal.shm import SHM_AVAILABLE

        if not SHM_AVAILABLE:
            pytest.skip("shared memory unavailable on this platform")
        Xs, Xt = domain_pair
        serial = FNodeDiscovery(n_jobs=1).discover(Xs, Xt)
        shm = FNodeDiscovery(n_jobs=2, use_shared_memory=True).discover(Xs, Xt)
        np.testing.assert_array_equal(serial.p_values, shm.p_values)
        assert serial.parent_sets == shm.parent_sets
        assert serial.n_tests == shm.n_tests

    def test_pickling_fallback_bit_identical(self, domain_pair):
        Xs, Xt = domain_pair
        serial = FNodeDiscovery(n_jobs=1).discover(Xs, Xt)
        pickled = FNodeDiscovery(n_jobs=2, use_shared_memory=False).discover(Xs, Xt)
        np.testing.assert_array_equal(serial.p_values, pickled.p_values)
        assert serial.parent_sets == pickled.parent_sets
        assert serial.n_tests == pickled.n_tests

    def test_no_shared_memory_segments_leak(self, domain_pair):
        import glob

        from repro.causal.shm import SHM_AVAILABLE

        if not SHM_AVAILABLE:
            pytest.skip("shared memory unavailable on this platform")
        Xs, Xt = domain_pair
        FNodeDiscovery(n_jobs=2, use_shared_memory=True).discover(Xs, Xt)
        assert glob.glob("/dev/shm/repro_fs_*") == []

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_obs_counters_match_n_tests(self, domain_pair, tmp_path, n_jobs):
        Xs, Xt = domain_pair
        with RunRecorder(tmp_path / f"run{n_jobs}") as rec:
            result = FNodeDiscovery(n_jobs=n_jobs).discover(Xs, Xt)
        total = rec.metrics.counter("ci_tests_total").value
        assert total == result.n_tests
        assert rec.metrics.histogram("ci_test_seconds").count == total
        assert rec.metrics.histogram("ci_test_pvalue").count == total
        per_size = sum(
            rec.metrics.counter(name).value
            for name in rec.metrics.names()
            if name.startswith("ci_tests_cond")
        )
        assert per_size == total

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ValidationError, match="got 0"):
            resolve_n_jobs(0)
        with pytest.raises(ValidationError, match="got -2"):
            resolve_n_jobs(-2)
        with pytest.raises(ValidationError, match="-1 \\(all cores\\)"):
            resolve_n_jobs(-4)
        with pytest.raises(ValidationError):
            resolve_n_jobs(True)
        with pytest.raises(ValidationError):
            resolve_n_jobs(2.5)
