"""CLI-level observability tests: --trace artifact bundle, --seed propagation
to every subcommand, and the no-flags (disabled) default."""

import json

import pytest

import repro.cli as cli
from repro.datasets import FiveGCConfig, FiveGIPCConfig
from repro.experiments.presets import ExperimentPreset, ModelParams


@pytest.fixture()
def micro_preset(monkeypatch):
    """Shrink every subcommand to seconds and pin the preset lookup."""
    preset = ExperimentPreset(
        name="micro",
        fivegc=FiveGCConfig(n_source=320, n_target=300, feature_scale=0.12),
        fivegipc=FiveGIPCConfig(sample_scale=0.05, feature_scale=0.5),
        models=ModelParams(
            tnet_epochs=8, mlp_epochs=10, rf_estimators=5, rf_max_depth=6,
            xgb_estimators=3, xgb_max_depth=2, xgb_max_features=0.4,
        ),
        gan_epochs=20,
        gan_noise_dim=4,
        gan_hidden=32,
        repeats=1,
        shots=(1, 5),
        baseline_epochs=8,
        episodes=20,
    )
    monkeypatch.setattr(cli, "get_preset", lambda name=None: preset)
    return preset


class TestTraceFlag:
    def test_runtime_trace_writes_valid_bundle(
        self, micro_preset, tmp_path, capsys
    ):
        runs_dir = tmp_path / "runs"
        rc = cli.main([
            "runtime", "--dataset", "5gc", "--seed", "0",
            "--trace", "--runs-dir", str(runs_dir),
        ])
        assert rc == 0
        run_dir = runs_dir / "runtime-dataset=5gc-preset=micro-seed=0"
        assert run_dir.is_dir()

        trace = json.loads((run_dir / "trace.json").read_text())
        names = {s["name"] for s in trace["spans"]}
        assert {"runtime.fs", "runtime.gan", "runtime.inference"} <= names

        def descendants(span):
            for child in span["children"]:
                yield child
                yield from descendants(child)

        fs_root = next(s for s in trace["spans"] if s["name"] == "runtime.fs")
        batch_spans = [
            s for s in descendants(fs_root) if s["name"] == "fs.ci_batch"
        ]
        assert batch_spans, "FS span must decompose into CI-test batches"

        metrics = json.loads((run_dir / "metrics.json").read_text())
        assert metrics["ci_tests_total"]["value"] > 0
        timing = metrics["ci_test_seconds"]
        assert timing["count"] == metrics["ci_tests_total"]["value"]
        assert {"p50", "p90", "p99"} <= set(timing)
        assert metrics["gan_epoch_seconds"]["count"] == micro_preset.gan_epochs

        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest == {
            "command": "runtime", "dataset": "5gc",
            "preset": "micro", "seed": 0,
        }
        # events.jsonl is valid JSONL with per-feature FS decisions
        events = [
            json.loads(line)
            for line in (run_dir / "events.jsonl").read_text().splitlines()
        ]
        assert any(e["kind"] == "fs.feature_decision" for e in events)

        err = capsys.readouterr().err
        assert "[obs] telemetry written to" in err

    def test_metrics_out_without_trace(self, micro_preset, tmp_path):
        path = tmp_path / "m.json"
        rc = cli.main([
            "counts", "--dataset", "5gc", "--metrics-out", str(path),
        ])
        assert rc == 0
        metrics = json.loads(path.read_text())
        assert metrics["ci_tests_total"]["value"] > 0
        assert not (tmp_path / "runs").exists()

    def test_disabled_by_default(self, micro_preset, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli.main(["counts", "--dataset", "5gc"]) == 0
        assert list(tmp_path.iterdir()) == []  # no runs/, no artifacts


class TestSeedPropagation:
    CASES = [
        ("table1", "run_table1", ["table1", "--dataset", "5gc"]),
        ("ablation", "run_ablation", ["ablation", "--dataset", "5gc"]),
        ("multitarget", "run_multitarget", ["multitarget"]),
        ("counts", "variant_counts", ["counts", "--dataset", "5gc"]),
        ("runtime", "measure_runtime", ["runtime", "--dataset", "5gc"]),
    ]

    @pytest.mark.parametrize("command,runner,argv", CASES)
    def test_seed_reaches_runner(self, command, runner, argv, monkeypatch):
        captured = {}

        def fake_runner(*args, **kwargs):
            captured.update(kwargs)
            return []

        monkeypatch.setattr(cli, runner, fake_runner)
        for fmt in ("format_table1", "format_ablation", "format_multitarget",
                    "format_variant_counts", "format_runtime"):
            monkeypatch.setattr(cli, fmt, lambda *a, **k: "")
        monkeypatch.setattr(
            cli, "summarize_improvement", lambda *a, **k: {"best_other": None}
        )
        assert cli.main(argv + ["--seed", "7"]) == 0
        assert captured["random_state"] == 7, f"{command} dropped --seed"


def _write_bundle(run_dir, *, seed=0, jaccard=0.8, with_alarm=False):
    """A minimal hand-rolled run bundle for the obs subcommand."""
    run_dir.mkdir(parents=True)
    (run_dir / "manifest.json").write_text(json.dumps(
        {"command": "serve", "seed": seed}
    ))
    (run_dir / "metrics.json").write_text(json.dumps({
        "serve_batches": {"type": "counter", "value": 3 + seed},
        "monitor.jaccard": {"type": "gauge", "value": jaccard},
        "serve.latency": {
            "type": "histogram", "count": 3, "sum": 0.3, "mean": 0.1,
            "min": 0.05, "max": 0.15, "p50": 0.1, "p90": 0.14, "p99": 0.15,
        },
    }))
    events = [{"kind": "serve.batch", "rows": 32}]
    if with_alarm:
        events.append({"kind": "drift.alarm", "source": "serve",
                       "psi_max": 0.4, "features": [2], "rows": 512})
    (run_dir / "events.jsonl").write_text(
        "\n".join(json.dumps(e) for e in events) + "\n"
    )


class TestObsSubcommand:
    def test_summary_renders_bundle(self, tmp_path, capsys):
        _write_bundle(tmp_path / "run", with_alarm=True)
        assert cli.main(["obs", "summary", str(tmp_path / "run")]) == 0
        out = capsys.readouterr().out
        assert "manifest: command=serve seed=0" in out
        assert "serve.latency" in out and "serve_batches" in out
        assert "drift: 1 alarm(s)" in out
        assert "psi_max=0.4" in out

    def test_tail_filters_by_kind(self, tmp_path, capsys):
        _write_bundle(tmp_path / "run", with_alarm=True)
        assert cli.main([
            "obs", "tail", str(tmp_path / "run"), "--kind", "drift.alarm",
        ]) == 0
        out = capsys.readouterr().out
        assert "drift.alarm" in out
        assert "serve.batch" not in out

    def test_diff_reports_deltas(self, tmp_path, capsys):
        _write_bundle(tmp_path / "a", seed=0, jaccard=0.8)
        _write_bundle(tmp_path / "b", seed=1, jaccard=0.6)
        assert cli.main([
            "obs", "diff", str(tmp_path / "a"), str(tmp_path / "b"),
        ]) == 0
        out = capsys.readouterr().out
        assert "monitor.jaccard" in out
        assert "-25.0%" in out  # 0.8 -> 0.6
        assert "serve_batches" in out

    def test_missing_bundle_is_an_error(self, tmp_path, capsys):
        assert cli.main(["obs", "summary", str(tmp_path / "nope")]) == 1
        assert "no run bundle" in capsys.readouterr().err


class TestLoggingFlags:
    def test_log_level_and_verbose_accepted(self, micro_preset, monkeypatch):
        monkeypatch.setattr(cli, "variant_counts", lambda *a, **k: [])
        monkeypatch.setattr(cli, "format_variant_counts", lambda *a, **k: "")
        assert cli.main(["counts", "--log-level", "DEBUG"]) == 0
        assert cli.main(["counts", "-vv"]) == 0
