"""Unit tests for repro.utils.validation and the typed error hierarchy."""

import numpy as np
import pytest

from repro.utils import (
    NotFittedError,
    ReproError,
    ValidationError,
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
    check_X_y,
)


class TestCheckArray:
    def test_accepts_lists(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_array([1, 2, 3])

    def test_accepts_1d_when_requested(self):
        arr = check_array([1.0, 2.0], ndim=1)
        assert arr.shape == (2,)

    def test_rejects_nan_by_default(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_array([[np.nan, 1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            check_array([[np.inf, 1.0]])

    def test_allows_nan_when_opted_in(self):
        arr = check_array([[np.nan, 1.0]], allow_nan=True)
        assert np.isnan(arr[0, 0])

    def test_min_samples(self):
        with pytest.raises(ValidationError, match="at least 3"):
            check_array([[1.0], [2.0]], min_samples=3)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="converted"):
            check_array([["a", "b"]])

    def test_name_in_message(self):
        with pytest.raises(ValidationError, match="my_matrix"):
            check_array([1.0], name="my_matrix")


class TestCheckXY:
    def test_matching_lengths(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert X.shape == (2, 1)
        assert y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError, match="inconsistent lengths"):
            check_X_y([[1.0], [2.0]], [0, 1, 2])

    def test_y_must_be_1d(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            check_X_y([[1.0], [2.0]], [[0], [1]])


class TestCheckIsFitted:
    def test_raises_when_attribute_none(self):
        class Dummy:
            model_ = None

        with pytest.raises(NotFittedError, match="Dummy"):
            check_is_fitted(Dummy(), "model_")

    def test_passes_when_set(self):
        class Dummy:
            model_ = object()

        check_is_fitted(Dummy(), "model_")

    def test_not_fitted_is_repro_error(self):
        assert issubclass(NotFittedError, ReproError)
        assert issubclass(NotFittedError, RuntimeError)


class TestCheckConsistentFeatures:
    def test_match(self):
        check_consistent_features(np.zeros((2, 3)), 3)

    def test_mismatch(self):
        with pytest.raises(ValidationError, match="fitted with 4"):
            check_consistent_features(np.zeros((2, 3)), 4)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).random(3)
        b = check_random_state(42).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")
