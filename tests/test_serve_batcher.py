"""Micro-batch bit-identity: the daemon's load-bearing contract.

Coalesced mixed-size micro-batches must score bit-identically to
per-request execution — across coalescing patterns, tenants, draw counts
and cache evict/reload mid-stream.
"""

import shutil
import threading

import numpy as np
import pytest

from repro.core import FSGANPipeline, ReconstructionConfig
from repro.core.artifacts import save_artifact
from repro.ml import MLPClassifier
from repro.serve import MicroBatcher, PaddedExecutor, PlanCache
from repro.utils.errors import ValidationError

CAP = 64


def _segments(X_test, sizes):
    cuts = np.cumsum([0] + list(sizes))
    return [X_test[a:b] for a, b in zip(cuts[:-1], cuts[1:])]


def _fresh_executor(root, name, n_draws=1):
    cache = PlanCache(root, capacity=8, n_draws=n_draws, micro_batch_rows=CAP)
    return cache.get(name).executor


class TestPaddedExecutorEquivalence:
    @pytest.mark.parametrize("pattern", [
        [(5, 1, 14, 3, 9)],                  # one coalesced batch
        [(5, 1, 14), (3, 9)],                # two batches
        [(5,), (1,), (14,), (3,), (9,)],     # fully per-request
        [(5, 1), (14,), (3, 9)],             # mixed
    ])
    def test_patterns_agree(self, tenant_root, pattern):
        root, names, X_test = tenant_root
        sizes = [n for group in pattern for n in group]
        segments = _segments(X_test, sizes)
        reference = None
        executor = _fresh_executor(root, names[0])
        got, i = [], 0
        for group in pattern:
            batch = [executor.check_request(s)
                     for s in segments[i:i + len(group)]]
            got.extend(executor.score(batch))
            i += len(group)
        other = _fresh_executor(root, names[0])
        reference = [other.score([other.check_request(s)])[0]
                     for s in segments]
        for a, b in zip(got, reference):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("strategy,n_draws", [
        ("gan", 3), ("vae", 2), ("autoencoder", 1), ("nocond", 2),
    ])
    def test_strategies_and_draws(self, tiny_5gc, tmp_path, strategy, n_draws):
        X_few, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
        pipe = FSGANPipeline(
            lambda: MLPClassifier(hidden_sizes=(16,), epochs=8, random_state=0),
            reconstruction_config=ReconstructionConfig(
                strategy=strategy, epochs=2, noise_dim=2, hidden_size=8),
            random_state=0,
        ).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
        save_artifact(pipe, str(tmp_path / "t.npz"))
        segments = _segments(X_test, (7, 1, 12, 2))
        ex1 = _fresh_executor(tmp_path, "t", n_draws)
        coalesced = ex1.score([ex1.check_request(s) for s in segments])
        ex2 = _fresh_executor(tmp_path, "t", n_draws)
        for got, seg in zip(coalesced, segments):
            np.testing.assert_array_equal(
                got, ex2.score([ex2.check_request(seg)])[0])

    def test_single_row_requests(self, tenant_root):
        root, names, X_test = tenant_root
        segments = _segments(X_test, [1] * 6)
        ex1 = _fresh_executor(root, names[0])
        coalesced = ex1.score([ex1.check_request(s) for s in segments])
        ex2 = _fresh_executor(root, names[0])
        for got, seg in zip(coalesced, segments):
            np.testing.assert_array_equal(
                got, ex2.score([ex2.check_request(seg)])[0])


class TestPaddedExecutorValidation:
    def test_rejects_wrong_width(self, tenant_root):
        root, names, X_test = tenant_root
        executor = _fresh_executor(root, names[0])
        with pytest.raises(ValidationError, match="features"):
            executor.check_request(X_test[:3, :-1])

    def test_rejects_oversized_request(self, tenant_root):
        root, names, X_test = tenant_root
        executor = _fresh_executor(root, names[0])
        big = np.repeat(X_test, 5, axis=0)[:CAP + 1]
        with pytest.raises(ValidationError, match="capacity"):
            executor.check_request(big)

    def test_rejects_overfull_batch(self, tenant_root):
        root, names, X_test = tenant_root
        executor = _fresh_executor(root, names[0])
        seg = executor.check_request(X_test[:CAP])
        with pytest.raises(ValidationError, match="capacity"):
            executor.score([seg, seg])

    def test_one_dim_request_becomes_row(self, tenant_root):
        root, names, X_test = tenant_root
        executor = _fresh_executor(root, names[0])
        assert executor.check_request(X_test[0]).shape == (1, X_test.shape[1])


class TestEvictReloadMidStream:
    def test_eviction_continues_rng_stream(self, tenant_root, tmp_path):
        """Evict-then-reload mid-stream fast-forwards to the same position.

        A dropped entry's noise-stream position is remembered per tenant;
        reloading the unchanged bundle resumes the stream exactly where it
        left off, so evict-reload is bit-identical to never evicting.
        """
        root, names, X_test = tenant_root
        for name in names[:2]:
            shutil.copy(root / f"{name}.npz", tmp_path / f"{name}.npz")
        X = X_test[:6]

        # reference: one uninterrupted cache scoring three passes
        ref_cache = PlanCache(tmp_path, capacity=8, micro_batch_rows=CAP)
        ex = ref_cache.get(names[0]).executor
        reference = [ex.score([ex.check_request(X)])[0] for _ in range(3)]
        assert np.any(reference[0] != reference[1])  # RNG moves on

        # capacity-1 cache: tenant 0 is evicted between pass 2 and pass 3
        cache = PlanCache(tmp_path, capacity=1, micro_batch_rows=CAP)
        ex = cache.get(names[0]).executor
        got = [ex.score([ex.check_request(X)])[0] for _ in range(2)]
        cache.get(names[1])  # capacity-1 cache: evicts tenant 0
        assert cache.loaded_tenants() == [names[1]]
        ex = cache.get(names[0]).executor  # reload fast-forwards the stream
        assert cache.misses == 3
        assert cache.rng_fast_forwards == 1
        got.append(ex.score([ex.check_request(X)])[0])
        for a, b in zip(got, reference):
            np.testing.assert_array_equal(a, b)

    def test_batcher_continues_across_reload(self, tenant_root, tmp_path):
        """The reloaded stream continues — no replay of earlier draws."""
        root, names, X_test = tenant_root
        for name in names[:2]:
            shutil.copy(root / f"{name}.npz", tmp_path / f"{name}.npz")

        ref_cache = PlanCache(tmp_path, capacity=8, micro_batch_rows=CAP)
        with MicroBatcher(ref_cache, max_wait=0.0) as batcher:
            ref_a = batcher.score(names[0], X_test[:4])
            ref_b = batcher.score(names[0], X_test[:4])

        cache = PlanCache(tmp_path, capacity=1, micro_batch_rows=CAP)
        with MicroBatcher(cache, max_wait=0.0) as batcher:
            a = batcher.score(names[0], X_test[:4])
            batcher.score(names[1], X_test[:2])   # evicts tenant 0
            b = batcher.score(names[0], X_test[:4])  # reload + fast-forward
        np.testing.assert_array_equal(a, ref_a)
        np.testing.assert_array_equal(b, ref_b)

    def test_new_artifact_version_resets_stream(self, tenant_root, tmp_path):
        """A changed content hash starts the new artifact's stream fresh."""
        root, names, X_test = tenant_root
        shutil.copy(root / f"{names[0]}.npz", tmp_path / f"{names[0]}.npz")
        X = X_test[:6]

        cache = PlanCache(tmp_path, capacity=8, micro_batch_rows=CAP)
        ex = cache.get(names[0]).executor
        first = ex.score([ex.check_request(X)])[0]
        ex.score([ex.check_request(X)])  # advance the stream
        cache.invalidate(names[0])  # position remembered

        # swap in a different bundle under the same tenant name
        shutil.copy(root / f"{names[1]}.npz", tmp_path / f"{names[0]}.npz")
        ex = cache.get(names[0]).executor
        swapped = ex.score([ex.check_request(X)])[0]
        assert cache.rng_fast_forwards == 0  # hash changed: no resume

        # and rolling back to the original bundle replays from its start
        shutil.copy(root / f"{names[0]}.npz", tmp_path / f"{names[0]}.npz")
        ex = cache.get(names[0]).executor
        rolled_back = ex.score([ex.check_request(X)])[0]
        assert np.any(first != swapped)
        np.testing.assert_array_equal(rolled_back, first)


class TestMicroBatcher:
    def test_coalesces_queued_requests(self, tenant_root):
        root, names, X_test = tenant_root
        cache = PlanCache(root, capacity=8, micro_batch_rows=CAP)
        batcher = MicroBatcher(cache, max_wait=0.0)
        # enqueue before starting the scorer so the first batch coalesces
        pendings = [batcher.submit(names[0], X_test[i:i + 2])
                    for i in range(0, 12, 2)]
        batcher.start()
        results = [p.result(10.0) for p in pendings]
        batcher.stop()
        assert batcher.batches < len(pendings)
        fresh = _fresh_executor(root, names[0])
        for pending, got in zip(pendings, results):
            np.testing.assert_array_equal(
                got, fresh.score([fresh.check_request(pending.X)])[0])

    def test_seq_is_per_tenant_admission_order(self, tenant_root):
        root, names, X_test = tenant_root
        cache = PlanCache(root, capacity=8, micro_batch_rows=CAP)
        with MicroBatcher(cache) as batcher:
            a0 = batcher.submit(names[0], X_test[:1])
            b0 = batcher.submit(names[1], X_test[:1])
            a1 = batcher.submit(names[0], X_test[:1])
            for p in (a0, b0, a1):
                p.result(10.0)
        assert (a0.seq, a1.seq, b0.seq) == (0, 1, 0)

    def test_concurrent_submitters_stay_bit_identical(self, tenant_root):
        root, names, X_test = tenant_root
        cache = PlanCache(root, capacity=8, micro_batch_rows=CAP)
        results: dict[tuple, np.ndarray] = {}
        lock = threading.Lock()

        def client(tenant, offsets):
            for off in offsets:
                X = X_test[off:off + 1 + off % 4]
                pending = batcher.submit(tenant, X)
                proba = pending.result(10.0)
                with lock:
                    results[(tenant, pending.seq)] = (X, proba)

        with MicroBatcher(cache, max_wait=0.001) as batcher:
            threads = [
                threading.Thread(target=client,
                                 args=(names[t % 2], range(8 * w, 8 * w + 8)))
                for w, t in enumerate(range(4))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # replay every tenant's stream per-request in seq order
        for tenant in names[:2]:
            executor = _fresh_executor(root, tenant)
            items = sorted((seq, X, proba)
                           for (who, seq), (X, proba) in results.items()
                           if who == tenant)
            assert [seq for seq, _, _ in items] == list(range(len(items)))
            for _seq, X, proba in items:
                np.testing.assert_array_equal(
                    proba, executor.score([executor.check_request(X)])[0])

    def test_no_coalesce_mode_scores_singly(self, tenant_root):
        root, names, X_test = tenant_root
        cache = PlanCache(root, capacity=8, micro_batch_rows=CAP)
        batcher = MicroBatcher(cache, coalesce=False)
        pendings = [batcher.submit(names[0], X_test[i:i + 2])
                    for i in range(0, 8, 2)]
        batcher.start()
        for p in pendings:
            p.result(10.0)
        batcher.stop()
        assert batcher.batches == len(pendings)

    def test_submit_after_stop_raises(self, tenant_root):
        root, names, X_test = tenant_root
        cache = PlanCache(root, capacity=8, micro_batch_rows=CAP)
        batcher = MicroBatcher(cache).start()
        batcher.stop()
        with pytest.raises(ValidationError, match="stopped"):
            batcher.submit(names[0], X_test[:1])

    def test_stop_drains_queued_work(self, tenant_root):
        root, names, X_test = tenant_root
        cache = PlanCache(root, capacity=8, micro_batch_rows=CAP)
        batcher = MicroBatcher(cache, max_wait=0.0)
        pendings = [batcher.submit(names[0], X_test[i:i + 1])
                    for i in range(10)]
        batcher.start()
        batcher.stop()
        for p in pendings:
            assert p.result(0.0) is not None
