"""Failure-injection tests: malformed inputs must raise typed errors, not
corrupt state or crash with cryptic numpy exceptions."""

import numpy as np
import pytest

from repro.baselines import SrcOnly, build_method
from repro.core import FSGANPipeline, FSModel, FeatureSeparator
from repro.gan import ConditionalGAN
from repro.ml import (
    GaussianMixture,
    MLPClassifier,
    MinMaxScaler,
    RandomForestClassifier,
    StandardScaler,
    TNetClassifier,
)
from repro.utils.errors import NotFittedError, ValidationError


def fast_mlp():
    return MLPClassifier(hidden_sizes=(16,), epochs=2, random_state=0)


class TestNaNInjection:
    def test_scalers_reject_nan(self):
        bad = np.array([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(ValidationError):
            MinMaxScaler().fit(bad)
        with pytest.raises(ValidationError):
            StandardScaler().fit(bad)

    def test_classifiers_reject_nan(self, rng):
        X = rng.standard_normal((20, 3))
        X[3, 1] = np.nan
        y = rng.integers(0, 2, 20)
        for clf in (
            MLPClassifier(epochs=1),
            RandomForestClassifier(n_estimators=2),
            TNetClassifier(epochs=1),
        ):
            with pytest.raises(ValidationError):
                clf.fit(X, y)

    def test_separator_rejects_nan(self, rng):
        X = rng.standard_normal((20, 3))
        bad = rng.standard_normal((5, 3))
        bad[0, 0] = np.inf
        with pytest.raises(ValidationError):
            FeatureSeparator().fit(X, bad)

    def test_gan_rejects_nan(self, rng):
        bad = rng.standard_normal((10, 3))
        bad[0, 0] = np.nan
        with pytest.raises(ValidationError):
            ConditionalGAN(epochs=1, conditional=False).fit(
                bad, rng.standard_normal((10, 2))
            )


class TestShapeMismatch:
    def test_pipeline_feature_mismatch(self, rng):
        pipe = FSGANPipeline(fast_mlp)
        with pytest.raises(ValidationError):
            pipe.fit(
                rng.standard_normal((30, 5)),
                rng.integers(0, 2, 30),
                rng.standard_normal((4, 6)),
            )

    def test_method_feature_mismatch(self, rng):
        method = SrcOnly(fast_mlp)
        with pytest.raises(ValidationError):
            method.fit(
                rng.standard_normal((30, 5)),
                rng.integers(0, 2, 30),
                rng.standard_normal((4, 6)),
                np.zeros(4, dtype=int),
            )

    def test_label_length_mismatch(self, rng):
        with pytest.raises(ValidationError):
            MLPClassifier(epochs=1).fit(
                rng.standard_normal((10, 2)), np.zeros(9, dtype=int)
            )


class TestDegenerateData:
    def test_constant_features_survive_pipeline(self, rng):
        """Telemetry often has dead columns; nothing may divide by zero."""
        X = rng.standard_normal((60, 4))
        X[:, 2] = 5.0  # constant column
        y = rng.integers(0, 2, 60)
        X_few = rng.standard_normal((6, 4))
        X_few[:, 2] = 5.0
        fs = FSModel(fast_mlp).fit(X, y, X_few)
        pred = fs.predict(X_few)
        assert np.all(np.isfinite(pred.astype(float)))

    def test_single_class_source_rejected_by_boosting(self, rng):
        from repro.ml import GradientBoostingClassifier

        with pytest.raises(ValidationError):
            GradientBoostingClassifier().fit(
                rng.standard_normal((10, 2)), np.zeros(10, dtype=int)
            )

    def test_gmm_more_components_than_samples(self, rng):
        with pytest.raises(ValidationError):
            GaussianMixture(10).fit(rng.standard_normal((4, 2)))

    def test_empty_labels_rejected(self):
        with pytest.raises(ValidationError):
            MLPClassifier(epochs=1).fit(np.zeros((0, 3)), np.zeros(0))


class TestUseBeforeFit:
    @pytest.mark.parametrize(
        "estimator, call",
        [
            (MinMaxScaler(), lambda e: e.transform([[1.0]])),
            (MLPClassifier(), lambda e: e.predict([[1.0]])),
            (RandomForestClassifier(), lambda e: e.predict([[1.0]])),
            (FeatureSeparator(), lambda e: e.split(np.zeros((1, 2)))),
            (ConditionalGAN(), lambda e: e.generate(np.zeros((1, 2)))),
        ],
    )
    def test_not_fitted_errors(self, estimator, call):
        with pytest.raises(NotFittedError):
            call(estimator)


class TestRegistryMisuse:
    def test_specific_method_with_bad_kwargs(self):
        with pytest.raises(TypeError):
            build_method("dann", random_state=0, nonexistent_param=1)

    def test_registry_validates_name_type(self):
        with pytest.raises((ValidationError, AttributeError)):
            build_method(12345, fast_mlp)
