"""Integration tests: observability threaded through FS, the pipeline and the
drift monitor — plus the training-cache release contract."""

import numpy as np
import pytest

from repro.core import (
    FSConfig,
    FSGANPipeline,
    FeatureSeparator,
    ReconstructionConfig,
)
from repro.core.monitor import DriftMonitor
from repro.ml import MLPClassifier, MinMaxScaler
from repro.obs import RunRecorder
from repro.utils.errors import NotFittedError, ValidationError


def fast_mlp():
    return MLPClassifier(hidden_sizes=(32,), epochs=20, random_state=0)


def small_pipeline():
    return FSGANPipeline(
        fast_mlp,
        reconstruction_config=ReconstructionConfig(
            epochs=5, noise_dim=2, hidden_size=8
        ),
        random_state=0,
    )


@pytest.fixture(scope="module")
def split_5gc(tiny_5gc):
    X_few, y_few, X_test, y_test = tiny_5gc.few_shot_split(5, random_state=0)
    return tiny_5gc, X_few, X_test


class TestFSInstrumentation:
    def test_ci_test_metrics_and_feature_events(self, split_5gc, tmp_path):
        bench, X_few, _ = split_5gc
        scaler = MinMaxScaler().fit(bench.X_source)
        with RunRecorder(tmp_path / "run") as rec:
            FeatureSeparator(FSConfig()).fit(
                scaler.transform(bench.X_source), scaler.transform(X_few)
            )
        n_features = bench.X_source.shape[1]

        total = rec.metrics.counter("ci_tests_total").value
        assert total > 0
        assert rec.metrics.histogram("ci_test_seconds").count == total
        assert rec.metrics.histogram("ci_test_pvalue").count == total
        summary = rec.metrics.histogram("ci_test_seconds").summary()
        assert summary["p50"] <= summary["p90"] <= summary["p99"]
        assert rec.metrics.gauge("fs_n_features").value == n_features

        # one decision event per feature
        decisions = [e for e in rec.events.events if e["kind"] == "fs.feature_decision"]
        assert len(decisions) == n_features
        assert {"feature", "p_value", "variant"} <= set(decisions[0])

        # the span tree decomposes FS into per-CI-test-batch children
        fs_fit = rec.tracer.find("fs.fit")
        assert fs_fit is not None
        discover = rec.tracer.find("fs.discover")
        batches = [c for c in discover.children if c.name == "fs.ci_batch"]
        assert batches and sum(c.tags["n_tests"] for c in batches) > 0

    def test_cond_size_breakdown(self, split_5gc, tmp_path):
        bench, X_few, _ = split_5gc
        scaler = MinMaxScaler().fit(bench.X_source)
        with RunRecorder(tmp_path / "run") as rec:
            FeatureSeparator(FSConfig()).fit(
                scaler.transform(bench.X_source), scaler.transform(X_few)
            )
        per_size = [
            rec.metrics.counter(name).value
            for name in rec.metrics.names()
            if name.startswith("ci_tests_cond")
        ]
        assert sum(per_size) == rec.metrics.counter("ci_tests_total").value


class TestPipelineObservability:
    def test_fit_predict_byte_identical_with_obs(self, split_5gc, tmp_path):
        bench, X_few, X_test = split_5gc
        plain = small_pipeline().fit(bench.X_source, bench.y_source, X_few)
        with RunRecorder(tmp_path / "run") as rec:
            observed = small_pipeline().fit(bench.X_source, bench.y_source, X_few)
            y_obs = observed.predict(X_test)
        y_plain = plain.predict(X_test)
        np.testing.assert_array_equal(y_plain, y_obs)

        fit_span = rec.tracer.find("pipeline.fit")
        assert [c.name for c in fit_span.children[:3]] == [
            "pipeline.scale", "pipeline.fs", "pipeline.model_fit",
        ]
        assert rec.tracer.find("reconstruction.fit") is not None
        assert rec.tracer.find("pipeline.predict") is not None
        assert rec.metrics.histogram("gan_epoch_seconds").count == 5


class TestReleaseTrainingCache:
    @pytest.fixture(scope="class")
    def released(self, split_5gc):
        bench, X_few, _ = split_5gc
        pipe = small_pipeline().fit(bench.X_source, bench.y_source, X_few)
        return pipe.release_training_cache(), bench

    def test_predict_still_works(self, released, split_5gc):
        pipe, _ = released
        _, _, X_test = split_5gc
        assert len(pipe.predict(X_test)) == len(X_test)

    def test_refit_adapter_raises_clear_error(self, released, split_5gc):
        pipe, _ = released
        _, X_few, _ = split_5gc
        with pytest.raises(ValidationError, match="release_training_cache"):
            pipe.refit_adapter(X_few)

    def test_monitor_raises_clear_error(self, released, split_5gc):
        pipe, _ = released
        _, _, X_test = split_5gc
        monitor = DriftMonitor(pipe)
        with pytest.raises(ValidationError, match="release_training_cache"):
            monitor.observe(X_test[:20])

    def test_unfitted_refit_keeps_old_message(self, split_5gc):
        with pytest.raises(NotFittedError):
            small_pipeline().refit_adapter(np.zeros((2, 3)))


class TestMonitorTelemetry:
    def test_observation_emits_metrics_and_events(self, split_5gc, tmp_path):
        bench, X_few, X_test = split_5gc
        pipe = small_pipeline().fit(bench.X_source, bench.y_source, X_few)
        with RunRecorder(tmp_path / "run") as rec:
            report = DriftMonitor(pipe).observe(X_test[:40])
        assert rec.metrics.counter("drift_observations_total").value == 1
        events = [e for e in rec.events.events if e["kind"] == "drift.observe"]
        assert len(events) == 1
        assert events[0]["jaccard"] == pytest.approx(report.jaccard)
        # satellite: p_values is an ndarray (or None), never a scalar surprise
        assert report.p_values is None or isinstance(report.p_values, np.ndarray)
