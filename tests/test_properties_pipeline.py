"""Property-based tests on pipeline-level invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feature_separation import FeatureSeparator
from repro.datasets import FiveGCConfig, make_5gc
from repro.ml import MinMaxScaler


class TestFewShotSplitProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.integers(0, 10_000))
    def test_split_partitions_pool(self, shots, seed):
        bench = make_5gc(
            FiveGCConfig(n_source=64, n_target=80, feature_scale=0.1),
            random_state=0,
        )
        X_few, y_few, X_test, y_test = bench.few_shot_split(shots, random_state=seed)
        assert len(X_few) + len(X_test) == len(bench.X_target)
        assert len(y_few) == len(X_few)
        # every class contributes exactly `shots` (pool has >= shots per class)
        for c in np.unique(bench.y_target):
            assert np.sum(y_few == c) == min(shots, np.sum(bench.y_target == c))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_split_deterministic(self, seed):
        bench = make_5gc(
            FiveGCConfig(n_source=64, n_target=80, feature_scale=0.1),
            random_state=0,
        )
        a = bench.few_shot_split(2, random_state=seed)
        b = bench.few_shot_split(2, random_state=seed)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestSeparatorProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 1_000))
    def test_split_merge_identity_any_seed(self, seed):
        bench = make_5gc(
            FiveGCConfig(n_source=160, n_target=120, feature_scale=0.1),
            random_state=0,
        )
        scaler = MinMaxScaler().fit(bench.X_source)
        Xs = scaler.transform(bench.X_source)
        X_few, _, _, _ = bench.few_shot_split(2, random_state=seed)
        sep = FeatureSeparator().fit(Xs, scaler.transform(X_few))
        X_inv, X_var = sep.split(Xs)
        np.testing.assert_array_equal(sep.merge(X_inv, X_var), Xs)
        # the partition is always exact and disjoint
        merged = np.concatenate([sep.variant_indices_, sep.invariant_indices_])
        assert len(np.unique(merged)) == Xs.shape[1]
