"""Artifact lineage: publish/promote/rollback pointer semantics."""

import numpy as np
import pytest

from repro.adapt.lineage import LINEAGE_SCHEMA, ArtifactLineage
from repro.core.artifacts import load_artifact
from repro.ml import MLPClassifier
from repro.utils.errors import ArtifactError


@pytest.fixture(scope="module")
def models(blob_data):
    """Two cheap fitted models with distinct weights (distinct hashes)."""
    X_train, y_train, X_test, _ = blob_data
    fitted = [
        MLPClassifier(hidden_sizes=(8,), epochs=6, random_state=s).fit(
            X_train, y_train
        )
        for s in (0, 1)
    ]
    return fitted[0], fitted[1], X_test[:8]


@pytest.fixture()
def lineage(tmp_path):
    return ArtifactLineage(tmp_path / "store")


class TestPublish:
    def test_generation_zero_seeds_active_pointer(self, lineage, models):
        model, _, X = models
        version = lineage.publish("t", model, parent=None, state="active")
        assert version.generation == 0
        assert version.parent_hash is None
        assert version.lifecycle_state == "active"
        assert lineage.active("t").content_hash == version.content_hash
        # the pointer resolves to the immutable bundle's bytes
        loaded = load_artifact(lineage.pointer_path("t"))
        np.testing.assert_array_equal(
            loaded.estimator.predict_proba(X), model.predict_proba(X)
        )

    def test_candidate_chains_onto_active(self, lineage, models):
        inc, cand, _ = models
        gen0 = lineage.publish("t", inc, parent=None, state="active")
        gen1 = lineage.publish("t", cand)
        assert gen1.generation == 1
        assert gen1.parent_hash == gen0.content_hash
        assert gen1.lifecycle_state == "candidate"
        # publishing a candidate must not move the pointer
        assert lineage.active("t").content_hash == gen0.content_hash

    def test_manifest_carries_lineage_block(self, lineage, models):
        inc, cand, _ = models
        gen0 = lineage.publish("t", inc, parent=None, state="active")
        gen1 = lineage.publish("t", cand)
        manifest = load_artifact(lineage.version_path(gen1)).manifest
        assert manifest["lineage"] == {
            "parent_hash": gen0.content_hash,
            "generation": 1,
            "lifecycle_state": "candidate",
        }

    def test_same_content_dedupes(self, lineage, models):
        model, _, _ = models
        lineage.publish("t", model, parent=None, state="active")
        lineage.publish("t", model, parent=None, state="active")
        assert len(lineage.history("t")) == 1

    def test_invalid_tenant_rejected(self, lineage, models):
        model, _, _ = models
        for bad in ("", "../escape", ".hidden", "a/b"):
            with pytest.raises(ArtifactError, match="invalid tenant"):
                lineage.publish(bad, model)

    def test_unknown_state_rejected(self, lineage, models):
        model, _, _ = models
        with pytest.raises(ArtifactError, match="lifecycle_state"):
            lineage.publish("t", model, state="deployed")


class TestPromoteRollback:
    def _seed(self, lineage, models):
        inc, cand, _ = models
        gen0 = lineage.publish("t", inc, parent=None, state="active")
        gen1 = lineage.publish("t", cand)
        return gen0, gen1

    def test_promote_flips_pointer_and_retires_incumbent(self, lineage, models):
        gen0, gen1 = self._seed(lineage, models)
        promoted = lineage.promote("t")
        assert promoted.content_hash == gen1.content_hash
        assert lineage.active("t").content_hash == gen1.content_hash
        assert lineage.previous("t").content_hash == gen0.content_hash
        states = {v.generation: v.lifecycle_state for v in lineage.history("t")}
        assert states == {0: "retired", 1: "active"}

    def test_promote_active_is_idempotent(self, lineage, models):
        gen0, _ = self._seed(lineage, models)
        again = lineage.promote("t", gen0.content_hash)
        assert again.content_hash == gen0.content_hash
        assert lineage.active("t").content_hash == gen0.content_hash
        assert lineage.previous("t") is None

    def test_promote_without_candidate_raises(self, lineage, models):
        model, _, _ = models
        lineage.publish("t", model, parent=None, state="active")
        with pytest.raises(ArtifactError, match="no candidate"):
            lineage.promote("t")

    def test_rollback_restores_identical_bytes(self, lineage, models):
        self._seed(lineage, models)
        before = lineage.pointer_path("t").read_bytes()
        lineage.promote("t")
        assert lineage.pointer_path("t").read_bytes() != before
        restored = lineage.rollback("t")
        assert restored.generation == 0
        # pure pointer flip: the rollback serves the *identical bytes* the
        # pre-promotion plan was compiled from
        assert lineage.pointer_path("t").read_bytes() == before

    def test_rollback_ping_pong(self, lineage, models):
        gen0, gen1 = self._seed(lineage, models)
        lineage.promote("t")
        lineage.rollback("t")
        assert lineage.active("t").content_hash == gen0.content_hash
        # a second rollback rolls *forward* again
        lineage.rollback("t")
        assert lineage.active("t").content_hash == gen1.content_hash
        assert lineage.previous("t").content_hash == gen0.content_hash

    def test_rollback_without_previous_raises(self, lineage, models):
        model, _, _ = models
        lineage.publish("t", model, parent=None, state="active")
        with pytest.raises(ArtifactError, match="no previous"):
            lineage.rollback("t")


class TestIndexAndIntrospection:
    def test_mark_moves_lifecycle_state(self, lineage, models):
        inc, cand, _ = models
        lineage.publish("t", inc, parent=None, state="active")
        gen1 = lineage.publish("t", cand)
        shadowed = lineage.mark("t", gen1.content_hash, "shadow")
        assert shadowed.lifecycle_state == "shadow"
        assert lineage.history("t")[-1].lifecycle_state == "shadow"
        with pytest.raises(ArtifactError, match="lifecycle_state"):
            lineage.mark("t", gen1.content_hash, "bogus")

    def test_tenants_enumerates_indices(self, lineage, models):
        model, _, _ = models
        assert lineage.tenants() == []
        lineage.publish("b-tenant", model, parent=None, state="active")
        lineage.publish("a-tenant", model, parent=None, state="active")
        assert lineage.tenants() == ["a-tenant", "b-tenant"]

    def test_load_by_hash_and_default(self, lineage, models):
        inc, cand, X = models
        lineage.publish("t", inc, parent=None, state="active")
        gen1 = lineage.publish("t", cand)
        np.testing.assert_array_equal(
            lineage.load("t").estimator.predict_proba(X),
            inc.predict_proba(X),
        )
        np.testing.assert_array_equal(
            lineage.load("t", gen1.content_hash).estimator.predict_proba(X),
            cand.predict_proba(X),
        )
        with pytest.raises(ArtifactError, match="no lineage version"):
            lineage.load("t", "deadbeef")

    def test_unknown_schema_rejected(self, lineage, models):
        model, _, _ = models
        lineage.publish("t", model, parent=None, state="active")
        path = lineage.index_path("t")
        path.write_text(path.read_text().replace(LINEAGE_SCHEMA, "bogus/v9"))
        with pytest.raises(ArtifactError, match="unknown lineage schema"):
            lineage.active("t")
