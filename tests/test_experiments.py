"""Tests for the experiment harness: presets, runner, reporting."""

import numpy as np
import pytest
from dataclasses import replace

from repro.datasets import FiveGCConfig, FiveGIPCConfig
from repro.experiments import (
    MODEL_NAMES,
    PRESETS,
    SharedArtifacts,
    format_ablation,
    format_multitarget,
    format_runtime,
    format_table1,
    format_variant_counts,
    get_preset,
    make_benchmark,
    measure_runtime,
    model_factories,
    run_ablation,
    run_multitarget,
    run_table1,
    selection_variance,
    summarize_improvement,
    variant_counts,
)
from repro.experiments.presets import ExperimentPreset, ModelParams
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def micro_preset():
    """A very small preset so harness tests run in seconds."""
    return ExperimentPreset(
        name="micro",
        fivegc=FiveGCConfig(n_source=320, n_target=300, feature_scale=0.12),
        fivegipc=FiveGIPCConfig(sample_scale=0.05, feature_scale=0.5),
        models=ModelParams(
            tnet_epochs=8, mlp_epochs=10, rf_estimators=5, rf_max_depth=6,
            xgb_estimators=3, xgb_max_depth=2, xgb_max_features=0.4,
        ),
        gan_epochs=20,
        gan_noise_dim=4,
        gan_hidden=32,
        repeats=1,
        shots=(1, 5),
        baseline_epochs=8,
        episodes=20,
    )


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"smoke", "fast", "paper"}

    def test_get_preset_default_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRESET", raising=False)
        assert get_preset().name == "smoke"
        monkeypatch.setenv("REPRO_PRESET", "fast")
        assert get_preset().name == "fast"

    def test_unknown_preset(self):
        with pytest.raises(ValidationError):
            get_preset("turbo")

    def test_paper_preset_scales(self):
        paper = get_preset("paper")
        assert paper.fivegc.n_source == 3645
        assert paper.gan_epochs == 500
        assert paper.repeats == 20

    def test_model_factories_fresh_instances(self):
        factories = model_factories(get_preset("smoke"))
        assert set(factories) == set(MODEL_NAMES)
        assert factories["MLP"]() is not factories["MLP"]()


class TestMakeBenchmark:
    def test_both_datasets(self, micro_preset):
        b1 = make_benchmark("5gc", micro_preset)
        b2 = make_benchmark("5gipc", micro_preset)
        assert b1.metadata["dataset"] == "5gc"
        assert b2.metadata["dataset"] == "5gipc"

    def test_unknown_dataset(self, micro_preset):
        with pytest.raises(ValidationError):
            make_benchmark("mnist", micro_preset)


class TestSharedArtifacts:
    def test_split_cached(self, micro_preset):
        bench = make_benchmark("5gc", micro_preset)
        shared = SharedArtifacts(bench, micro_preset)
        a = shared.split(1, 0)
        b = shared.split(1, 0)
        assert a is b

    def test_full_model_cached(self, micro_preset):
        bench = make_benchmark("5gc", micro_preset)
        shared = SharedArtifacts(bench, micro_preset)
        assert shared.full_model("MLP") is shared.full_model("MLP")

    def test_separation_shared_between_fs_and_fsgan(self, micro_preset):
        bench = make_benchmark("5gc", micro_preset)
        shared = SharedArtifacts(bench, micro_preset)
        sep = shared.separation(1, 0)
        shared.fsgan_predict("MLP", 1, 0)
        assert shared.separation(1, 0) is sep


class TestRunTable1:
    def test_subset_grid(self, micro_preset):
        results = run_table1(
            "5gc",
            preset=micro_preset,
            methods=("srconly", "fs", "fs+gan", "taronly"),
            models=("MLP",),
        )
        keys = {(c.method, c.model, c.shots) for c in results}
        assert ("fs", "MLP", 1) in keys
        assert len(results) == 4 * len(micro_preset.shots)
        for cell in results:
            assert len(cell.scores) == micro_preset.repeats
            assert 0.0 <= cell.f1_mean <= 1.0

    def test_model_specific_methods_single_column(self, micro_preset):
        results = run_table1(
            "5gc", preset=micro_preset, methods=("fine-tune",), models=("MLP", "RF")
        )
        assert all(c.model == "-" for c in results)

    def test_fs_beats_srconly(self, micro_preset):
        results = run_table1(
            "5gc", preset=micro_preset, methods=("srconly", "fs"), models=("MLP",)
        )
        fs = np.mean([c.f1_mean for c in results if c.method == "fs"])
        src = np.mean([c.f1_mean for c in results if c.method == "srconly"])
        assert fs > src

    def test_format_table1_renders(self, micro_preset):
        results = run_table1(
            "5gc", preset=micro_preset, methods=("srconly", "fs"), models=("MLP",)
        )
        text = format_table1(results, dataset="5GC")
        assert "FS (ours)" in text and "SrcOnly" in text

    def test_summarize_improvement(self, micro_preset):
        results = run_table1(
            "5gc", preset=micro_preset,
            methods=("srconly", "fs", "fs+gan", "s&t"), models=("MLP",),
        )
        summary = summarize_improvement(results)
        assert summary["best_other"] == "s&t"
        assert np.isfinite(summary["fsgan_gain"])


class TestAblation:
    def test_all_strategies(self, micro_preset):
        results = run_ablation(
            "5gc", preset=micro_preset, model="MLP",
            strategies=("gan", "autoencoder"),
        )
        methods = {c.method for c in results}
        assert methods == {"FS+GAN", "FS+VanillaAE"}
        text = format_ablation(results, dataset="5GC")
        assert "FS+GAN" in text


class TestMultitarget:
    def test_grid_and_overlap(self, micro_preset):
        preset = replace(micro_preset, shots=(5,))
        result = run_multitarget(preset=preset, model="MLP")
        assert set(result["scores"]) == {
            (a, t, 5) for a in (1, 2) for t in (1, 2)
        }
        assert 0.0 <= result["overlap"] <= 1.0
        text = format_multitarget(result)
        assert "FS+GAN_1" in text and "FS+GAN_2" in text


class TestSensitivity:
    def test_variant_counts_monotone_ish(self, micro_preset):
        result = variant_counts("5gc", preset=micro_preset)
        counts = [row["n_variant_mean"] for row in result["rows"]]
        assert counts[0] <= counts[-1] + 1  # grows (allowing test noise)
        assert "shots" in format_variant_counts(result)

    def test_selection_variance_fields(self, micro_preset):
        result = selection_variance(
            "5gc", preset=micro_preset, model="MLP", shots=1, n_selections=2
        )
        assert result["fs"]["std"] >= 0.0
        assert result["fs+gan"]["range"] >= 0.0


class TestRuntime:
    def test_measurements_positive(self, micro_preset):
        result = measure_runtime("5gc", preset=micro_preset, shots=5,
                                 n_inference_samples=8)
        assert result["fs_seconds"] > 0
        assert result["gan_train_seconds"] > 0
        assert result["inference_seconds_per_sample"] > 0
        # the paper's ordering: training steps dwarf per-sample inference
        assert result["gan_train_seconds"] > result["inference_seconds_per_sample"]
        assert "Running time" in format_runtime(result)
