"""Unit tests for MLPClassifier and TNetClassifier."""

import numpy as np
import pytest

from repro.ml import MLPClassifier, TNetClassifier, accuracy_score
from repro.utils.errors import NotFittedError, ValidationError


class TestMLPClassifier:
    def test_learns_blobs(self, blob_data):
        X, y, X_test, y_test = blob_data
        clf = MLPClassifier(hidden_sizes=(32,), epochs=40, random_state=0).fit(X, y)
        assert accuracy_score(y_test, clf.predict(X_test)) > 0.9

    def test_loss_decreases(self, blob_data):
        X, y, _, _ = blob_data
        clf = MLPClassifier(hidden_sizes=(32,), epochs=30, random_state=0).fit(X, y)
        assert clf.loss_curve_[-1] < clf.loss_curve_[0]

    def test_proba_sums_to_one(self, blob_data):
        X, y, X_test, _ = blob_data
        clf = MLPClassifier(epochs=5, random_state=0).fit(X, y)
        np.testing.assert_allclose(clf.predict_proba(X_test).sum(axis=1), 1.0)

    def test_deterministic_given_seed(self, blob_data):
        X, y, X_test, _ = blob_data
        p1 = MLPClassifier(epochs=10, random_state=3).fit(X, y).predict(X_test)
        p2 = MLPClassifier(epochs=10, random_state=3).fit(X, y).predict(X_test)
        np.testing.assert_array_equal(p1, p2)

    def test_string_labels_round_trip(self):
        X = np.vstack([np.zeros((20, 2)), np.ones((20, 2)) * 5])
        y = np.array(["normal"] * 20 + ["fault"] * 20)
        clf = MLPClassifier(epochs=30, random_state=0).fit(X, y)
        assert set(clf.predict(X)) <= {"normal", "fault"}

    def test_fine_tune_improves_on_shifted_data(self, blob_data):
        X, y, X_test, y_test = blob_data
        shift = 3.0 * np.ones(X.shape[1])
        clf = MLPClassifier(hidden_sizes=(32,), epochs=40, random_state=0).fit(X, y)
        before = accuracy_score(y_test, clf.predict(X_test + shift))
        clf.fine_tune(X + shift, y, epochs=40)
        after = accuracy_score(y_test, clf.predict(X_test + shift))
        assert after >= before

    def test_fine_tune_rejects_unseen_labels(self, blob_data):
        X, y, _, _ = blob_data
        clf = MLPClassifier(epochs=2, random_state=0).fit(X, y)
        with pytest.raises(ValidationError, match="unseen"):
            clf.fine_tune(X[:4], np.array([99, 99, 99, 99]))

    def test_fine_tune_before_fit(self, blob_data):
        X, y, _, _ = blob_data
        with pytest.raises(NotFittedError):
            MLPClassifier().fine_tune(X, y)

    def test_sample_weight_shifts_decisions(self, blob_data):
        X, y, X_test, _ = blob_data
        w = np.where(y == 1, 500.0, 1.0)
        clf = MLPClassifier(hidden_sizes=(16,), epochs=40, random_state=0)
        clf.fit(X, y, sample_weight=w)
        assert np.mean(clf.predict(X_test) == 1) > 0.4

    def test_rejects_empty_hidden(self):
        with pytest.raises(ValidationError):
            MLPClassifier(hidden_sizes=())


class TestTNetClassifier:
    def test_learns_blobs(self, blob_data):
        X, y, X_test, y_test = blob_data
        clf = TNetClassifier(width=32, epochs=40, random_state=0).fit(X, y)
        assert accuracy_score(y_test, clf.predict(X_test)) > 0.9

    def test_feature_importances_shape_and_range(self, blob_data):
        X, y, _, _ = blob_data
        clf = TNetClassifier(width=16, epochs=5, random_state=0).fit(X, y)
        gates = clf.feature_importances()
        assert gates.shape == (X.shape[1],)
        assert np.all((gates > 0) & (gates < 1))

    def test_gate_suppresses_noise_features(self, rng):
        # one informative feature + five pure-noise features
        n = 300
        y = rng.integers(0, 2, n)
        X = np.column_stack([3.0 * y + 0.3 * rng.standard_normal(n),
                             rng.standard_normal((n, 5)).reshape(n, 5)])
        clf = TNetClassifier(width=16, epochs=60, random_state=0).fit(X, y)
        gates = clf.feature_importances()
        assert gates[0] > gates[1:].mean()

    def test_proba_sums_to_one(self, blob_data):
        X, y, X_test, _ = blob_data
        clf = TNetClassifier(width=16, epochs=5, random_state=0).fit(X, y)
        np.testing.assert_allclose(clf.predict_proba(X_test).sum(axis=1), 1.0)

    def test_deterministic_given_seed(self, blob_data):
        X, y, X_test, _ = blob_data
        p1 = TNetClassifier(width=16, epochs=8, random_state=1).fit(X, y).predict(X_test)
        p2 = TNetClassifier(width=16, epochs=8, random_state=1).fit(X, y).predict(X_test)
        np.testing.assert_array_equal(p1, p2)

    def test_rejects_bad_width(self):
        with pytest.raises(ValidationError):
            TNetClassifier(width=0)

    def test_feature_count_checked(self, blob_data):
        X, y, _, _ = blob_data
        clf = TNetClassifier(width=16, epochs=2, random_state=0).fit(X, y)
        with pytest.raises(ValidationError):
            clf.predict(np.zeros((2, X.shape[1] + 2)))
