"""End-to-end integration tests asserting the paper's qualitative results
(the "shape" targets listed in DESIGN.md §4) on the small benchmarks."""

import numpy as np
import pytest

from repro.core import FSGANPipeline, FSModel, ReconstructionConfig
from repro.ml import MLPClassifier, MinMaxScaler, cross_val_f1, macro_f1


def fast_mlp():
    return MLPClassifier(hidden_sizes=(64,), epochs=40, random_state=0)


@pytest.fixture(scope="module")
def scenario(tiny_5gc):
    """SrcOnly reference numbers computed once for the module."""
    X_few, y_few, X_test, y_test = tiny_5gc.few_shot_split(5, random_state=0)
    scaler = MinMaxScaler().fit(tiny_5gc.X_source)
    src_model = fast_mlp().fit(scaler.transform(tiny_5gc.X_source), tiny_5gc.y_source)
    srconly_f1 = macro_f1(y_test, src_model.predict(scaler.transform(X_test)))
    return {
        "bench": tiny_5gc,
        "few": (X_few, y_few),
        "test": (X_test, y_test),
        "srconly": srconly_f1,
    }


class TestDriftCollapse:
    def test_in_domain_vs_cross_domain_gap(self, scenario):
        """SrcOnly: high in-domain CV, collapse on target (§VI-B)."""
        bench = scenario["bench"]
        in_domain = cross_val_f1(
            fast_mlp,
            MinMaxScaler().fit_transform(bench.X_source),
            bench.y_source,
            n_splits=3,
            random_state=0,
        )
        # at this reduced sample budget the absolute in-domain CV score is
        # lower than the paper's >0.98 (3,645 samples) and the collapse gap
        # smaller than the paper's ~80 points; only the direction and a
        # clear margin are asserted here — the benchmark harness measures
        # the full-scale gap
        assert in_domain > 0.7
        assert scenario["srconly"] < in_domain - 0.05


class TestOurMethods:
    def test_fs_large_improvement(self, scenario):
        bench = scenario["bench"]
        X_few, _ = scenario["few"]
        X_test, y_test = scenario["test"]
        fs = FSModel(fast_mlp).fit(bench.X_source, bench.y_source, X_few)
        fs_f1 = macro_f1(y_test, fs.predict(X_test))
        assert fs_f1 > scenario["srconly"] + 0.1

    def test_fsgan_large_improvement(self, scenario):
        bench = scenario["bench"]
        X_few, _ = scenario["few"]
        X_test, y_test = scenario["test"]
        pipe = FSGANPipeline(
            fast_mlp,
            reconstruction_config=ReconstructionConfig(
                epochs=300, hidden_size=128, noise_dim=6
            ),
            random_state=0,
        )
        pipe.fit(bench.X_source, bench.y_source, X_few)
        f1 = macro_f1(y_test, pipe.predict(X_test))
        assert f1 > scenario["srconly"] + 0.1

    def test_fs_improves_with_shots(self, scenario):
        """FS identifies more variants (and stays strong) with more shots."""
        bench = scenario["bench"]
        n_variant = []
        for shots in (1, 10):
            X_few, _, _, _ = bench.few_shot_split(shots, random_state=3)
            fs = FSModel(fast_mlp).fit(bench.X_source, bench.y_source, X_few)
            n_variant.append(fs.n_variant_)
        assert n_variant[0] <= n_variant[1]


class TestVarianceAcrossSelections:
    def test_fs_variance_small(self, scenario):
        """§VI-C: results stable across random target selections (±2.6 F1)."""
        bench = scenario["bench"]
        scores = []
        for seed in range(3):
            X_few, _, X_test, y_test = bench.few_shot_split(5, random_state=seed)
            fs = FSModel(fast_mlp).fit(bench.X_source, bench.y_source, X_few)
            scores.append(macro_f1(y_test, fs.predict(X_test)))
        assert np.ptp(scores) < 0.12


class TestBinaryTask:
    def test_5gipc_fault_detection(self, tiny_5gipc):
        X_few, _, X_test, y_test = tiny_5gipc.few_shot_split(5, random_state=0)
        scaler = MinMaxScaler().fit(tiny_5gipc.X_source)
        src = fast_mlp().fit(
            scaler.transform(tiny_5gipc.X_source), tiny_5gipc.y_source
        )
        srconly = macro_f1(y_test, src.predict(scaler.transform(X_test)))
        fs = FSModel(fast_mlp).fit(tiny_5gipc.X_source, tiny_5gipc.y_source, X_few)
        assert macro_f1(y_test, fs.predict(X_test)) > srconly
