"""Compiled inference plans and the serve runtime.

The load-bearing contract: at float64 a compiled plan's ``predict_proba``
is bit-identical to the live pipeline's — in this process, across
successive batches (the RNG streams advance in lockstep), and across a
save → fresh-interpreter → compile → score cycle.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import FSGANPipeline, ReconstructionConfig
from repro.core.artifacts import save_artifact
from repro.ml import MLPClassifier
from repro.serve import InferencePlan, read_input, run_serve, write_output
from repro.serve.runtime import load_plan
from repro.utils.errors import ArtifactError, ValidationError

SRC = str(Path(__file__).resolve().parents[1] / "src")


def fast_mlp():
    return MLPClassifier(hidden_sizes=(16,), epochs=8, random_state=0)


def _fit(tiny_5gc, strategy="gan"):
    X_few, _, X_test, _ = tiny_5gc.few_shot_split(5, random_state=0)
    pipe = FSGANPipeline(
        fast_mlp,
        reconstruction_config=ReconstructionConfig(
            strategy=strategy, epochs=2, noise_dim=2, hidden_size=8),
        random_state=0,
    ).fit(tiny_5gc.X_source, tiny_5gc.y_source, X_few)
    return pipe, X_test


class TestPlanParity:
    @pytest.mark.parametrize("strategy,n_draws", [
        ("gan", 1), ("gan", 3), ("nocond", 2), ("vae", 2),
        ("autoencoder", 1),
    ])
    def test_bit_identical_to_pipeline(self, tiny_5gc, strategy, n_draws):
        pipe, X_test = _fit(tiny_5gc, strategy)
        plan = pipe.compile(n_draws=n_draws)
        # first batch, then a second one: the cloned RNG stays in lockstep
        for lo, hi in ((0, 32), (32, 48)):
            np.testing.assert_array_equal(
                plan.predict_proba(X_test[lo:hi]),
                pipe.predict_proba(X_test[lo:hi], n_draws=n_draws))

    def test_transform_matches_pipeline(self, tiny_5gc):
        pipe, X_test = _fit(tiny_5gc)
        plan = pipe.compile()
        np.testing.assert_array_equal(
            plan.transform(X_test[:16]).copy(),
            pipe.transform(X_test[:16]))

    def test_compile_does_not_perturb_pipeline_stream(self, tiny_5gc):
        pipe, X_test = _fit(tiny_5gc)
        before = pipe.predict_proba(X_test[:8])
        pipe.compile()  # compiling must not consume pipeline noise
        pipe2, _ = _fit(tiny_5gc)
        pipe2.predict_proba(X_test[:8])
        np.testing.assert_array_equal(
            pipe.predict_proba(X_test[:8]), pipe2.predict_proba(X_test[:8]))
        assert before.shape == (8, before.shape[1])

    def test_predict_returns_class_labels(self, tiny_5gc):
        pipe, X_test = _fit(tiny_5gc)
        plan = pipe.compile()
        labels = plan.predict(X_test[:10])
        assert set(np.unique(labels)) <= set(pipe.model_.classes_)

    def test_batch_size_change_reallocates_safely(self, tiny_5gc):
        pipe, X_test = _fit(tiny_5gc)
        plan = pipe.compile()
        for n in (7, 31, 7):
            np.testing.assert_array_equal(
                plan.predict_proba(X_test[:n]),
                pipe.predict_proba(X_test[:n]))


class TestPlanValidation:
    def test_unfitted_pipeline_rejected(self):
        from repro.utils.errors import NotFittedError

        with pytest.raises(NotFittedError):
            InferencePlan(FSGANPipeline(fast_mlp))

    def test_bad_n_draws(self, tiny_5gc):
        pipe, _ = _fit(tiny_5gc)
        with pytest.raises(ValidationError, match="n_draws"):
            pipe.compile(n_draws=0)

    def test_wrong_feature_count(self, tiny_5gc):
        pipe, X_test = _fit(tiny_5gc)
        plan = pipe.compile()
        with pytest.raises(ValidationError, match="features"):
            plan.predict_proba(X_test[:4, :5])

    def test_spans_emitted(self, tiny_5gc, tmp_path):
        from repro.obs import RunRecorder

        pipe, X_test = _fit(tiny_5gc)
        plan = pipe.compile()
        with RunRecorder(tmp_path / "run") as rec:
            plan.predict_proba(X_test[:4])
        assert rec.tracer.find("serve.batch") is not None
        assert rec.tracer.find("serve.reconstruct") is not None


class TestServeRuntime:
    def test_read_input_formats(self, tmp_path, rng):
        X = rng.normal(size=(6, 4))
        np.save(tmp_path / "x.npy", X)
        np.savez(tmp_path / "x.npz", X=X)
        np.savetxt(tmp_path / "x.csv", X, delimiter=",")
        np.testing.assert_array_equal(read_input(tmp_path / "x.npy"), X)
        np.testing.assert_array_equal(read_input(tmp_path / "x.npz"), X)
        np.testing.assert_allclose(read_input(tmp_path / "x.csv"), X,
                                   rtol=1e-15)

    def test_read_input_csv_skips_header_row(self, tmp_path, rng):
        X = rng.normal(size=(5, 3))
        path = tmp_path / "headed.csv"
        body = "\n".join(",".join(f"{v:.17g}" for v in row) for row in X)
        path.write_text("alpha,beta,gamma\n" + body + "\n")
        np.testing.assert_allclose(read_input(path), X, rtol=1e-15)

    def test_read_input_csv_non_numeric_cell_is_artifact_error(self, tmp_path):
        path = tmp_path / "bad_cell.csv"
        path.write_text("1.0,2.0\n3.0,oops\n")
        with pytest.raises(ArtifactError, match="non-numeric cell"):
            read_input(path)

    def test_read_input_errors(self, tmp_path):
        with pytest.raises(ArtifactError, match="no input file"):
            read_input(tmp_path / "missing.npy")
        np.savez(tmp_path / "bad.npz", Y=np.zeros((2, 2)))
        with pytest.raises(ArtifactError, match="'X'"):
            read_input(tmp_path / "bad.npz")
        np.save(tmp_path / "one_d.npy", np.zeros(5))
        with pytest.raises(ArtifactError, match="2-D"):
            read_input(tmp_path / "one_d.npy")
        (tmp_path / "x.parquet").write_bytes(b"xx")
        with pytest.raises(ArtifactError, match="unsupported input format"):
            read_input(tmp_path / "x.parquet")

    def test_write_output_json_and_npz(self, tmp_path):
        proba = np.array([[0.25, 0.75], [0.5, 0.5]])
        labels = np.array([1, 0])
        out = write_output(tmp_path / "scores.json", proba=proba,
                           labels=labels)
        payload = json.loads(out.read_text())
        assert payload["labels"] == [1, 0]
        out = write_output(tmp_path / "scores.npz", proba=proba,
                           labels=labels)
        data = np.load(out)
        np.testing.assert_array_equal(data["proba"], proba)

    def test_load_plan_rejects_non_pipeline_artifact(self, tiny_5gc,
                                                     tmp_path):
        from repro.ml import MinMaxScaler

        scaler = MinMaxScaler().fit(tiny_5gc.X_source)
        save_artifact(scaler, tmp_path / "scaler.npz")
        with pytest.raises(ArtifactError, match="fsgan_pipeline"):
            load_plan(tmp_path / "scaler.npz")

    def test_run_serve_summary_and_parity(self, tiny_5gc, tmp_path):
        pipe, X_test = _fit(tiny_5gc)
        save_artifact(pipe, tmp_path / "pipe.npz")
        expected = pipe.predict_proba(X_test[:12])
        np.save(tmp_path / "batch.npy", X_test[:12])
        summary = run_serve(
            tmp_path / "pipe.npz", tmp_path / "batch.npy",
            output_path=tmp_path / "scores.npz",
        )
        assert summary["kind"] == "fsgan_pipeline"
        assert summary["n_samples"] == 12
        assert summary["schema_version"] == 2
        got = np.load(tmp_path / "scores.npz")["proba"]
        np.testing.assert_array_equal(got, expected)

    def test_run_serve_reports_stage_percentiles(self, tiny_5gc, tmp_path):
        pipe, X_test = _fit(tiny_5gc)
        save_artifact(pipe, tmp_path / "pipe.npz")
        np.save(tmp_path / "batch.npy", X_test[:16])
        summary = run_serve(
            tmp_path / "pipe.npz", tmp_path / "batch.npy", repeat=3
        )
        assert summary["repeat"] == 3
        # every pipeline stage observed once per pass
        assert set(summary["stages"]) == {
            "scale", "split", "generate", "merge", "predict"
        }
        for stage in summary["stages"].values():
            assert stage["count"] == 3
            assert 0.0 <= stage["p50"] <= stage["p90"] <= stage["p99"]
        assert summary["latency"]["count"] == 3

    def test_run_serve_with_exporters_and_drift(self, tiny_5gc, tmp_path):
        pipe, X_test = _fit(tiny_5gc)
        save_artifact(pipe, tmp_path / "pipe.npz")
        # a strongly shifted batch so drift scores are unambiguous
        batch = X_test[:200].copy()
        batch[:, :] += 5.0
        np.save(tmp_path / "batch.npy", batch)
        snapshot_path = tmp_path / "metrics.jsonl"

        summary = run_serve(
            tmp_path / "pipe.npz", tmp_path / "batch.npy",
            repeat=2, track_drift=True, prom_port=0,
            snapshot_path=snapshot_path,
        )
        assert summary["prometheus"].startswith("http://127.0.0.1:")
        assert "drift" in summary
        assert summary["drift"]["psi_max"] > 0.25
        assert summary["drift"]["alarmed"]

        from repro.obs.exporters import SnapshotWriter

        snaps = SnapshotWriter.read(snapshot_path)
        assert snaps, "snapshot writer produced no snapshots"
        final = snaps[-1]["metrics"]
        assert final["serve.latency"]["count"] == 2
        assert final["serve.psi_max"]["value"] > 0.25


_CHILD = """
import sys
import numpy as np
from repro.serve import load_plan

plan, loaded = load_plan(sys.argv[1])
X = np.load(sys.argv[2], allow_pickle=False)
np.save(sys.argv[3], plan.predict_proba(X))
"""


class TestCrossProcessBitIdentity:
    def test_fresh_process_compiled_plan_matches(self, tiny_5gc, tmp_path):
        """The PR's acceptance criterion: train here, save, reload in a
        fresh interpreter with no training config, compile, score — and get
        float64 bit-identical probabilities."""
        pipe, X_test = _fit(tiny_5gc)
        save_artifact(pipe, tmp_path / "pipe.npz",
                      provenance={"dataset": "5gc", "seed": 0})
        # expected AFTER save: both sides consume from the saved RNG state
        expected = pipe.predict_proba(X_test[:24])
        np.save(tmp_path / "batch.npy", X_test[:24])
        subprocess.run(
            [sys.executable, "-c", _CHILD, str(tmp_path / "pipe.npz"),
             str(tmp_path / "batch.npy"), str(tmp_path / "got.npy")],
            check=True, env=dict(os.environ, PYTHONPATH=SRC), timeout=600,
        )
        got = np.load(tmp_path / "got.npy")
        assert got.dtype == np.float64
        np.testing.assert_array_equal(got, expected)
