"""Didactic walkthrough of the causal machinery behind the FS method.

Builds a five-node telemetry micro-system with a known causal graph, drifts
it with a soft intervention on one node, and shows:

1. the PC algorithm recovering the causal skeleton from observational data;
2. why marginal two-sample tests over-flag (the intervened node's *children*
   shift too) while the F-node subset-search flags exactly the true target;
3. the exact Ψ-FCI-style variant (full PC with the F-node included).

Run:
    python examples/causal_discovery_demo.py
"""

import numpy as np

from repro.causal import (
    FNodeDiscovery,
    discover_targets_pc,
    pc_algorithm,
    regression_invariance_test,
)

NAMES = ["load", "pkts_in", "pkts_out", "cpu", "mem"]


def sample(n, rng, *, intervene=False):
    """load → pkts_in → pkts_out; load → cpu; mem independent.

    The drift softly intervenes on ``pkts_in`` (index 1): its conditional
    mechanism given ``load`` changes, and ``pkts_out`` shifts *marginally*
    as a consequence without its own mechanism changing.
    """
    load = rng.standard_normal(n)
    pkts_in = 0.9 * load + 0.4 * rng.standard_normal(n)
    if intervene:
        pkts_in = pkts_in + 2.5
    pkts_out = 0.9 * pkts_in + 0.4 * rng.standard_normal(n)
    cpu = 0.7 * load + 0.5 * rng.standard_normal(n)
    mem = rng.standard_normal(n)
    return np.column_stack([load, pkts_in, pkts_out, cpu, mem])


def main() -> None:
    rng = np.random.default_rng(0)
    X_source = sample(2000, rng)
    X_target = sample(120, rng, intervene=True)

    print("1) PC algorithm on observational (source) data")
    result = pc_algorithm(X_source, NAMES, alpha=0.01)
    for a, b, directed in sorted(result.graph.edges(), key=str):
        arrow = "->" if directed else "--"
        print(f"   {a} {arrow} {b}")
    print(f"   ({result.n_tests} conditional-independence tests)")

    print("\n2) marginal tests vs the F-node subset search")
    print(f"   {'feature':>9} {'marginal p':>12} {'flagged by FS?':>15}")
    fs = FNodeDiscovery(alpha=0.01).discover(X_source, X_target)
    for j, name in enumerate(NAMES):
        p_marginal = regression_invariance_test(X_source[:, j], X_target[:, j])
        flagged = "VARIANT" if j in fs.variant_indices else "invariant"
        print(f"   {name:>9} {p_marginal:>12.2e} {flagged:>15}")
    print("   note: pkts_out shifts marginally (tiny p) because its parent")
    print("   drifted, yet FS clears it by conditioning on pkts_in — only")
    print("   the true intervention target is flagged.")

    print("\n3) exact Ψ-FCI-style discovery (full PC with the F-node)")
    result, pc_result = discover_targets_pc(
        X_source, X_target, alpha=0.01, feature_names=NAMES
    )
    flagged = [NAMES[j] for j in result.variant_indices]
    print(f"   intervention targets: {flagged}")
    print(f"   F-node edges: "
          f"{sorted(pc_result.graph.children('F'))} (all outgoing)")


if __name__ == "__main__":
    main()
