"""5GC failure classification: the paper's Table I scenario in miniature.

Compares the two proposed methods (FS, FS+GAN) against representative
baselines from each group of Table I — naive (SrcOnly, S&T), domain-
independent (CORAL, DANN) and causal (CMT, ICD) — across two downstream
models and two few-shot budgets, printing a compact results table.

Run:
    python examples/failure_classification_5gc.py            # quick
    REPRO_PRESET=fast python examples/failure_classification_5gc.py
"""

import os

from repro.experiments import (
    format_table1,
    get_preset,
    run_table1,
    summarize_improvement,
)


def main() -> None:
    preset = get_preset(os.environ.get("REPRO_PRESET", "smoke"))
    print(f"preset: {preset.name} "
          f"({preset.fivegc.n_source} source samples, "
          f"feature_scale={preset.fivegc.feature_scale})\n")

    results = run_table1(
        "5gc",
        preset=preset,
        methods=("srconly", "s&t", "coral", "dann", "cmt", "icd", "fs", "fs+gan"),
        models=("TNet", "MLP"),
    )
    print(format_table1(results, dataset="5GC"))

    summary = summarize_improvement(results)
    print(
        f"\nDrift mitigation (gain over SrcOnly): "
        f"FS+GAN {100 * summary['fsgan_gain']:+.1f} F1 points vs "
        f"best other method ({summary['best_other']}) "
        f"{100 * summary['best_other_gain']:+.1f} points"
    )

    for cell in results:
        if cell.method == "fs" and cell.model == "TNet" and cell.n_variant:
            print(f"FS variant features at {cell.shots} shot(s): "
                  f"{cell.n_variant[0]}")


if __name__ == "__main__":
    main()
