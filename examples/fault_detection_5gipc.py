"""5GIPC fault detection: binary task, GMM domain splitting, multi-target DA.

Walks through three things the paper does with the 5GIPC dataset:

1. recover the source/target domain split with GMM clustering (the paper's
   §IV-B protocol — the larger cluster is the source domain);
2. run FS+GAN fault detection on the drifted target;
3. the Table III scenario: two distinct target domains, two FS+GAN adapters,
   one never-retrained TNet model, cross-evaluated.

Run:
    python examples/fault_detection_5gipc.py
"""

import numpy as np

from repro.core import FSGANPipeline, ReconstructionConfig
from repro.datasets import FiveGIPCConfig, make_5gipc, make_5gipc_multitarget
from repro.ml import (
    MinMaxScaler,
    TNetClassifier,
    macro_f1,
    split_domains_by_gmm,
)


def tnet():
    return TNetClassifier(epochs=30, random_state=0)


def gmm_domain_split_demo(bench) -> None:
    """Re-derive the domain split from pooled data with GMM, as §IV-B does."""
    pooled = np.vstack([bench.X_source, bench.X_target])
    true_domain = np.concatenate(
        [np.zeros(len(bench.X_source)), np.ones(len(bench.X_target))]
    )
    groups = split_domains_by_gmm(pooled, n_domains=2, random_state=0)
    # the larger recovered cluster should be dominated by source samples
    source_purity = np.mean(true_domain[groups[0]] == 0)
    print(f"GMM domain split: clusters of {len(groups[0])} / {len(groups[1])} "
          f"samples, source purity of the large cluster: {source_purity:.2f}")


def main() -> None:
    config = FiveGIPCConfig(sample_scale=0.12, feature_scale=1.0)
    bench = make_5gipc(config, random_state=0)
    print(f"5GIPC: {bench.n_features} features, "
          f"{len(bench.X_source)} source / {len(bench.X_target)} target samples")

    gmm_domain_split_demo(bench)

    # --- fault detection under drift (5 shots per fault type = 25 samples)
    X_few, _, X_test, y_test = bench.few_shot_split(5, random_state=0)
    scaler = MinMaxScaler().fit(bench.X_source)
    src_model = tnet()
    src_model.fit(scaler.transform(bench.X_source), bench.y_source)
    srconly = macro_f1(y_test, src_model.predict(scaler.transform(X_test)))

    pipe = FSGANPipeline(
        tnet,
        reconstruction_config=ReconstructionConfig.paper_5gipc(),
        random_state=0,
    )
    pipe.fit(bench.X_source, bench.y_source, X_few)
    ours = macro_f1(y_test, pipe.predict(X_test))
    print(f"\nFault detection F1 — SrcOnly: {100 * srconly:.1f}, "
          f"FS+GAN: {100 * ours:.1f} "
          f"({pipe.n_variant_} variant features found)")

    # --- Table III in miniature: two target domains, one frozen model
    bench_1, bench_2 = make_5gipc_multitarget(config, random_state=0)
    X_few_1, _, X_test_1, y_test_1 = bench_1.few_shot_split(5, random_state=0)
    X_few_2, _, X_test_2, y_test_2 = bench_2.few_shot_split(5, random_state=0)

    adapter_1 = FSGANPipeline(tnet, random_state=0)
    adapter_1.fit(bench_1.X_source, bench_1.y_source, X_few_1)
    # adapter 2 reuses adapter 1's downstream model: only FS + GAN refresh
    adapter_2 = FSGANPipeline(tnet, random_state=0)
    adapter_2.fit(bench_2.X_source, bench_2.y_source, X_few_2)

    print("\nTable III scenario (TNet trained once on Source):")
    for name, adapter in (("FS+GAN_1", adapter_1), ("FS+GAN_2", adapter_2)):
        f1_t1 = macro_f1(y_test_1, adapter.predict(X_test_1))
        f1_t2 = macro_f1(y_test_2, adapter.predict(X_test_2))
        print(f"  {name}: Target_1 F1={100 * f1_t1:5.1f}  "
              f"Target_2 F1={100 * f1_t2:5.1f}")


if __name__ == "__main__":
    main()
