"""Operational drift monitoring: detect drift onset, refresh only the adapter.

Simulates the lifecycle the paper argues for (§VI-F): a network-management
model is deployed once (trained on source data with all features) and, as
network conditions evolve, only the lightweight FS + GAN *adapter* is
refreshed — never the model.

The script generates a stream of target-domain "epochs" with growing drift
strength, monitors the FS p-values to decide when re-adaptation is needed,
and shows the frozen model's F1 with and without the adapter refresh.

Run:
    python examples/drift_monitoring.py
"""

import numpy as np

from repro.core import FSGANPipeline, FeatureSeparator, ReconstructionConfig
from repro.datasets import FiveGCConfig, make_5gc
from repro.datasets.fivegc import build_5gc_scm
from repro.ml import MLPClassifier, macro_f1


def main() -> None:
    config = FiveGCConfig(n_source=800, n_target=480, feature_scale=0.25)
    bench = make_5gc(config, random_state=0)
    scm, interventions, _ = build_5gc_scm(config)

    # deploy: model + adapter fitted against the first observed drift
    X_few, _, _, _ = bench.few_shot_split(5, random_state=0)
    pipe = FSGANPipeline(
        lambda: MLPClassifier(epochs=30, random_state=0),
        reconstruction_config=ReconstructionConfig(epochs=250),
        random_state=0,
    )
    pipe.fit(bench.X_source, bench.y_source, X_few)
    deployed_model = pipe.model_  # this object must never be replaced
    print(f"deployed: model trained on source, adapter with "
          f"{pipe.n_variant_} variant features\n")

    rng = np.random.default_rng(42)
    print(f"{'epoch':>6}{'drift':>7}{'flagged':>9}{'F1 stale':>10}{'F1 fresh':>10}")
    for epoch, drift in enumerate((1.0, 1.5, 2.2), start=1):
        # the network evolves: same SCM, stronger interventions
        stronger = tuple(
            type(iv)(node=iv.node, shift=drift * iv.shift,
                     scale=1 + drift * (iv.scale - 1),
                     noise_factor=iv.noise_factor)
            for iv in interventions
        )
        labels = rng.integers(0, scm.n_classes, 400)
        X_epoch = scm.sample(labels, interventions=stronger, random_state=rng)

        # a small freshly labeled batch per epoch (the few-shot budget)
        few_idx = np.concatenate(
            [np.where(labels == c)[0][:5] for c in range(scm.n_classes)]
        )
        test_mask = np.ones(len(labels), dtype=bool)
        test_mask[few_idx] = False

        # monitoring signal: how many features FS would flag right now
        monitor = FeatureSeparator()
        monitor.fit(
            pipe.scaler_.transform(bench.X_source),
            pipe.scaler_.transform(X_epoch[few_idx]),
        )

        f1_stale = macro_f1(labels[test_mask], pipe.predict(X_epoch[test_mask]))
        pipe.refit_adapter(X_epoch[few_idx])  # FS + GAN only
        f1_fresh = macro_f1(labels[test_mask], pipe.predict(X_epoch[test_mask]))
        assert pipe.model_ is deployed_model  # the model was never touched

        print(f"{epoch:>6}{drift:>7.1f}{monitor.n_variant_:>9}"
              f"{100 * f1_stale:>10.1f}{100 * f1_fresh:>10.1f}")

    print("\nthe deployed model object was never retrained or replaced")


if __name__ == "__main__":
    main()
