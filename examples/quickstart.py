"""Quickstart: mitigate data drift with FS+GAN in ~30 lines.

Generates a scaled-down 5GC failure-classification benchmark (source = the
digital twin, target = the drifted real network), trains the full pipeline,
and compares it against the unadapted source model.

Run:
    python examples/quickstart.py
"""

from repro.core import FSGANPipeline, ReconstructionConfig
from repro.datasets import FiveGCConfig, make_5gc
from repro.ml import MLPClassifier, MinMaxScaler, macro_f1


def main() -> None:
    # 1. A drift benchmark: source domain + target pool with soft-intervention drift.
    bench = make_5gc(
        FiveGCConfig(n_source=800, n_target=480, feature_scale=0.25), random_state=0
    )
    # The paper's few-shot protocol: 5 labeled target samples per fault type.
    X_few, y_few, X_test, y_test = bench.few_shot_split(5, random_state=0)
    print(f"{bench.n_features} features, {bench.n_classes} classes, "
          f"{len(X_few)} target training samples, {len(X_test)} target test samples")

    # 2. The unadapted baseline: train on source, predict drifted target data.
    scaler = MinMaxScaler().fit(bench.X_source)
    src_model = MLPClassifier(epochs=30, random_state=0)
    src_model.fit(scaler.transform(bench.X_source), bench.y_source)
    srconly = macro_f1(y_test, src_model.predict(scaler.transform(X_test)))

    # 3. FS+GAN: causal feature separation + GAN reconstruction.  The
    #    downstream model trains on source only and is never retrained.
    pipeline = FSGANPipeline(
        lambda: MLPClassifier(epochs=30, random_state=0),
        reconstruction_config=ReconstructionConfig(epochs=300),
        random_state=0,
    )
    pipeline.fit(bench.X_source, bench.y_source, X_few)
    ours = macro_f1(y_test, pipeline.predict(X_test))

    print(f"\nFS found {pipeline.n_variant_} domain-variant features "
          f"(ground truth: {len(bench.true_variant_indices)})")
    print(f"SrcOnly macro-F1 on drifted target: {100 * srconly:5.1f}")
    print(f"FS+GAN  macro-F1 on drifted target: {100 * ours:5.1f}")


if __name__ == "__main__":
    main()
