"""Setup script (legacy path kept so `pip install -e .` works offline,
where the `wheel` package required by PEP 660 editable installs is absent)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Few-shot domain adaptation for data drift mitigation in network "
        "management (ICDCS 2025 reproduction)"
    ),
    license="Apache-2.0",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
