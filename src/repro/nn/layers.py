"""Layers for the numpy neural-network substrate.

Every layer implements the explicit-backprop protocol:

- ``forward(x, training)`` caches whatever it needs and returns the output;
- ``backward(grad_output)`` returns the gradient w.r.t. the input and stores
  parameter gradients in ``layer.grads`` (same keys as ``layer.params``).

Shapes are ``(batch, features)`` throughout.  This substrate replaces PyTorch
(unavailable offline) for all the paper's neural components.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import get_initializer, zeros
from repro.utils.errors import ValidationError
from repro.utils.validation import check_random_state


class Layer:
    """Base class: a differentiable module with optional parameters."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        init: str = "he_normal",
        random_state=None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValidationError(
                f"Dense dimensions must be positive, got ({in_features}, {out_features})"
            )
        rng = check_random_state(random_state)
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": get_initializer(init)(rng, in_features, out_features),
            "b": zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.in_features:
            raise ValidationError(
                f"Dense expected {self.in_features} input features, got {x.shape[1]}"
            )
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._x
        self.grads["W"] = x.T @ grad_output
        self.grads["b"] = grad_output.sum(axis=0)
        return grad_output @ self.params["W"].T


class ReLU(Layer):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope (CTGAN discriminator uses 0.2)."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValidationError("negative_slope must be non-negative")
        self.negative_slope = negative_slope

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Tanh(Layer):
    """Hyperbolic tangent (generator output for continuous columns)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Logistic sigmoid (discriminator output)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._out * (1.0 - self._out)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, *, random_state=None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValidationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = check_random_state(random_state)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm1d(Layer):
    """Batch normalization over the batch axis with learned scale/shift.

    Keeps running statistics for inference, as in the CTGAN generator blocks.
    """

    def __init__(self, num_features: int, *, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValidationError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params = {"gamma": np.ones(num_features), "beta": np.zeros(num_features)}
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ValidationError(
                f"BatchNorm1d expected {self.num_features} features, got {x.shape[1]}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        self._std = np.sqrt(var + self.eps)
        self._x_hat = (x - mean) / self._std
        self._training = training
        return self.params["gamma"] * self._x_hat + self.params["beta"]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, std = self._x_hat, self._std
        self.grads["gamma"] = (grad_output * x_hat).sum(axis=0)
        self.grads["beta"] = grad_output.sum(axis=0)
        g = grad_output * self.params["gamma"]
        if not self._training:
            return g / std
        n = grad_output.shape[0]
        return (g - g.mean(axis=0) - x_hat * (g * x_hat).mean(axis=0)) / std


class GradientReversal(Layer):
    """Identity forward; multiplies gradients by ``-lambda`` on the way back.

    The core trick of DANN (Ganin & Lempitsky 2015): the feature extractor is
    trained to *confuse* the domain classifier attached after this layer.
    """

    def __init__(self, lambda_: float = 1.0) -> None:
        super().__init__()
        self.lambda_ = lambda_

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return -self.lambda_ * grad_output


class Concat(Layer):
    """Concatenates a fixed conditioning block to the input along features.

    Used by the conditional GAN so the whole generator can stay a single
    :class:`~repro.nn.network.Sequential` even when intermediate layers need
    the conditioning vector re-appended (CTGAN-style skip of conditions).
    """

    def __init__(self) -> None:
        super().__init__()
        self.condition: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.condition is None:
            raise ValidationError("Concat.condition must be set before forward()")
        self._split = x.shape[1]
        return np.concatenate([x, self.condition], axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output[:, : self._split]


class GumbelSoftmax(Layer):
    """Gumbel-softmax head for discrete one-hot blocks (Jang et al. 2017).

    During training, Gumbel noise is added to the logits before a
    temperature-scaled softmax, giving differentiable almost-one-hot
    samples; at inference the plain tempered softmax is returned.  Used by
    the CTGAN-style generator for discrete columns (paper §V-C3).
    """

    def __init__(self, temperature: float = 0.5, *, random_state=None) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValidationError("temperature must be positive")
        self.temperature = temperature
        self._rng = check_random_state(random_state)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            uniform = np.clip(self._rng.random(x.shape), 1e-12, 1.0 - 1e-12)
            x = x + (-np.log(-np.log(uniform)))
        z = (x - x.max(axis=1, keepdims=True)) / self.temperature
        e = np.exp(z)
        self._out = e / e.sum(axis=1, keepdims=True)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        s = self._out
        dot = np.sum(grad_output * s, axis=1, keepdims=True)
        return s * (grad_output - dot) / self.temperature


class BlockActivation(Layer):
    """Applies a different activation to each contiguous slice of the input.

    ``blocks`` is a list of ``(width, layer)`` pairs covering the full input
    width — e.g. tanh heads for continuous scalars interleaved with
    Gumbel-softmax heads for one-hot indicator blocks, matching a
    :class:`repro.gan.transformer.TabularTransformer` layout.
    """

    def __init__(self, blocks) -> None:
        super().__init__()
        if not blocks:
            raise ValidationError("BlockActivation requires at least one block")
        self.blocks = list(blocks)
        self._slices = []
        pos = 0
        for width, _layer in self.blocks:
            if width < 1:
                raise ValidationError("block widths must be >= 1")
            self._slices.append((pos, pos + width))
            pos += width
        self.total_width = pos

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.total_width:
            raise ValidationError(
                f"BlockActivation expected {self.total_width} features, "
                f"got {x.shape[1]}"
            )
        out = np.empty_like(x)
        for (a, b), (_w, layer) in zip(self._slices, self.blocks):
            out[:, a:b] = layer.forward(x[:, a:b], training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.empty_like(grad_output)
        for (a, b), (_w, layer) in zip(self._slices, self.blocks):
            grad[:, a:b] = layer.backward(grad_output[:, a:b])
        return grad
