"""Layers for the numpy neural-network substrate (fused engine).

Every layer implements the explicit-backprop protocol:

- ``forward(x, training)`` caches whatever it needs and returns the output;
- ``backward(grad_output)`` returns the gradient w.r.t. the input and stores
  parameter gradients in ``layer.grads`` (same keys as ``layer.params``).

Shapes are ``(batch, features)`` throughout.  This substrate replaces PyTorch
(unavailable offline) for all the paper's neural components.

**Buffer ownership (fused engine).**  Layers write activations, masks and
input gradients into preallocated :class:`~repro.nn.workspace.Workspace`
buffers keyed by batch shape, and ``backward`` writes parameter gradients
into the *existing* ``grads`` arrays (``out=`` ufunc forms throughout), so
after the first minibatch of a given shape a training step allocates
nothing.  The contract this buys:

- an array returned by ``layer.forward``/``layer.backward`` is owned by that
  layer and valid only until its **next** forward/backward call — model-level
  ``predict``/``generate`` surfaces copy at the boundary;
- a layer never mutates its input ``x`` or ``grad_output`` (they belong to
  the neighbouring layer);
- the ``grads`` arrays are stable objects for the whole life of the layer —
  optimizers may alias them.

All float64 computations are bit-identical to the pre-fusion implementations
frozen in :mod:`repro.nn.reference` (same ufuncs, same operation order);
random draws are always taken at float64 so the float32 fast path (see
:meth:`Layer.to`) consumes the RNG stream identically.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import get_initializer, zeros
from repro.nn.workspace import Workspace
from repro.utils.errors import ValidationError
from repro.utils.validation import check_random_state


class Layer:
    """Base class: a differentiable module with optional parameters."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self._ws = Workspace()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def to(self, dtype) -> "Layer":
        """Convert parameters/gradients to ``dtype`` and reset the workspace.

        Call before training (the optimizers size their state off the
        parameter arrays).  Returns ``self`` for chaining.
        """
        dtype = np.dtype(dtype)
        for key in self.params:
            self.params[key] = np.ascontiguousarray(self.params[key], dtype=dtype)
            self.grads[key] = np.ascontiguousarray(self.grads[key], dtype=dtype)
        self._ws.clear()
        return self

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        init: str = "he_normal",
        random_state=None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValidationError(
                f"Dense dimensions must be positive, got ({in_features}, {out_features})"
            )
        rng = check_random_state(random_state)
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": get_initializer(init)(rng, in_features, out_features),
            "b": zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.in_features:
            raise ValidationError(
                f"Dense expected {self.in_features} input features, got {x.shape[1]}"
            )
        self._x = x
        W, b = self.params["W"], self.params["b"]
        out = self._ws.get("out", (x.shape[0], self.out_features), W.dtype)
        np.matmul(x, W, out=out)
        out += b
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._x
        W = self.params["W"]
        np.matmul(x.T, grad_output, out=self.grads["W"])
        np.sum(grad_output, axis=0, out=self.grads["b"])
        gin = self._ws.get("gin", (grad_output.shape[0], self.in_features), W.dtype)
        np.matmul(grad_output, W.T, out=gin)
        return gin


class ReLU(Layer):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = self._ws.get("mask", x.shape, bool)
        np.greater(x, 0, out=mask)
        self._mask = mask
        out = self._ws.get("out", x.shape, x.dtype)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        gin = self._ws.get("gin", grad_output.shape, grad_output.dtype)
        np.multiply(grad_output, self._mask, out=gin)
        return gin


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope (CTGAN discriminator uses 0.2)."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        if negative_slope < 0:
            raise ValidationError("negative_slope must be non-negative")
        self.negative_slope = negative_slope

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = self._ws.get("mask", x.shape, bool)
        np.greater(x, 0, out=mask)
        self._mask = mask
        out = self._ws.get("out", x.shape, x.dtype)
        np.multiply(x, self.negative_slope, out=out)
        np.copyto(out, x, where=mask)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        gin = self._ws.get("gin", grad_output.shape, grad_output.dtype)
        np.multiply(grad_output, self.negative_slope, out=gin)
        np.copyto(gin, grad_output, where=self._mask)
        return gin


class Tanh(Layer):
    """Hyperbolic tangent (generator output for continuous columns)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self._ws.get("out", x.shape, x.dtype)
        np.tanh(x, out=out)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        gin = self._ws.get("gin", grad_output.shape, grad_output.dtype)
        np.square(self._out, out=gin)
        np.subtract(1.0, gin, out=gin)
        np.multiply(grad_output, gin, out=gin)
        return gin


class Sigmoid(Layer):
    """Logistic sigmoid (discriminator output)."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self._ws.get("out", x.shape, x.dtype)
        np.clip(x, -60.0, 60.0, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._out
        gin = self._ws.get("gin", grad_output.shape, grad_output.dtype)
        tmp = self._ws.get("tmp", grad_output.shape, grad_output.dtype)
        np.multiply(grad_output, out, out=gin)
        np.subtract(1.0, out, out=tmp)
        np.multiply(gin, tmp, out=gin)
        return gin


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, *, random_state=None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValidationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = check_random_state(random_state)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # draw at float64 regardless of compute dtype: the RNG stream (and
        # therefore the mask) must match the float64 reference bit for bit
        u = self._ws.get("u", x.shape, np.float64)
        self._rng.random(out=u)
        keep_mask = self._ws.get("keep", x.shape, bool)
        np.less(u, keep, out=keep_mask)
        mask = self._ws.get("mask", x.shape, x.dtype)
        np.divide(keep_mask, keep, out=mask)
        self._mask = mask
        out = self._ws.get("out", x.shape, x.dtype)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        gin = self._ws.get("gin", grad_output.shape, grad_output.dtype)
        np.multiply(grad_output, self._mask, out=gin)
        return gin


class BatchNorm1d(Layer):
    """Batch normalization over the batch axis with learned scale/shift.

    Keeps running statistics for inference, as in the CTGAN generator blocks.
    """

    def __init__(self, num_features: int, *, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValidationError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params = {"gamma": np.ones(num_features), "beta": np.zeros(num_features)}
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def to(self, dtype) -> "BatchNorm1d":
        super().to(dtype)
        dtype = np.dtype(dtype)
        self.running_mean = np.ascontiguousarray(self.running_mean, dtype=dtype)
        self.running_var = np.ascontiguousarray(self.running_var, dtype=dtype)
        return self

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.num_features:
            raise ValidationError(
                f"BatchNorm1d expected {self.num_features} features, got {x.shape[1]}"
            )
        d = self.num_features
        dt = x.dtype
        if training:
            mean = self._ws.get("mean", (d,), dt)
            var = self._ws.get("var", (d,), dt)
            np.mean(x, axis=0, out=mean)
            np.var(x, axis=0, out=var)
            tmp = self._ws.get("stat_tmp", (d,), dt)
            self.running_mean *= self.momentum
            np.multiply(mean, 1 - self.momentum, out=tmp)
            self.running_mean += tmp
            self.running_var *= self.momentum
            np.multiply(var, 1 - self.momentum, out=tmp)
            self.running_var += tmp
        else:
            mean, var = self.running_mean, self.running_var
        std = self._ws.get("std", (d,), dt)
        np.add(var, self.eps, out=std)
        np.sqrt(std, out=std)
        self._std = std
        x_hat = self._ws.get("x_hat", x.shape, dt)
        np.subtract(x, mean, out=x_hat)
        np.divide(x_hat, std, out=x_hat)
        self._x_hat = x_hat
        self._training = training
        out = self._ws.get("out", x.shape, dt)
        np.multiply(x_hat, self.params["gamma"], out=out)
        out += self.params["beta"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, std = self._x_hat, self._std
        dt = grad_output.dtype
        tmp = self._ws.get("tmp", grad_output.shape, dt)
        np.multiply(grad_output, x_hat, out=tmp)
        np.sum(tmp, axis=0, out=self.grads["gamma"])
        np.sum(grad_output, axis=0, out=self.grads["beta"])
        gin = self._ws.get("gin", grad_output.shape, dt)
        np.multiply(grad_output, self.params["gamma"], out=gin)
        if not self._training:
            np.divide(gin, std, out=gin)
            return gin
        d = self.num_features
        g_mean = self._ws.get("g_mean", (d,), dt)
        np.mean(gin, axis=0, out=g_mean)
        gx_mean = self._ws.get("gx_mean", (d,), dt)
        np.multiply(gin, x_hat, out=tmp)
        np.mean(tmp, axis=0, out=gx_mean)
        np.multiply(x_hat, gx_mean, out=tmp)
        np.subtract(gin, g_mean, out=gin)
        gin -= tmp
        np.divide(gin, std, out=gin)
        return gin


class GradientReversal(Layer):
    """Identity forward; multiplies gradients by ``-lambda`` on the way back.

    The core trick of DANN (Ganin & Lempitsky 2015): the feature extractor is
    trained to *confuse* the domain classifier attached after this layer.
    """

    def __init__(self, lambda_: float = 1.0) -> None:
        super().__init__()
        self.lambda_ = lambda_

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        gin = self._ws.get("gin", grad_output.shape, grad_output.dtype)
        np.multiply(grad_output, -self.lambda_, out=gin)
        return gin


class Concat(Layer):
    """Concatenates a fixed conditioning block to the input along features.

    Used by the conditional GAN so the whole generator can stay a single
    :class:`~repro.nn.network.Sequential` even when intermediate layers need
    the conditioning vector re-appended (CTGAN-style skip of conditions).
    """

    def __init__(self) -> None:
        super().__init__()
        self.condition: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if self.condition is None:
            raise ValidationError("Concat.condition must be set before forward()")
        self._split = x.shape[1]
        cond = self.condition
        out = self._ws.get("out", (x.shape[0], x.shape[1] + cond.shape[1]), x.dtype)
        out[:, : self._split] = x
        out[:, self._split:] = cond
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output[:, : self._split]


class GumbelSoftmax(Layer):
    """Gumbel-softmax head for discrete one-hot blocks (Jang et al. 2017).

    During training, Gumbel noise is added to the logits before a
    temperature-scaled softmax, giving differentiable almost-one-hot
    samples; at inference the plain tempered softmax is returned.  Used by
    the CTGAN-style generator for discrete columns (paper §V-C3).
    """

    def __init__(self, temperature: float = 0.5, *, random_state=None) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValidationError("temperature must be positive")
        self.temperature = temperature
        self._rng = check_random_state(random_state)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            # Gumbel noise drawn at float64 (stream parity with reference)
            u = self._ws.get("u", x.shape, np.float64)
            self._rng.random(out=u)
            np.clip(u, 1e-12, 1.0 - 1e-12, out=u)
            np.log(u, out=u)
            np.negative(u, out=u)
            np.log(u, out=u)
            np.negative(u, out=u)
            logits = self._ws.get("logits", x.shape, x.dtype)
            np.add(x, u, out=logits)
        else:
            logits = x
        row = self._ws.get("row", (x.shape[0], 1), x.dtype)
        np.max(logits, axis=1, keepdims=True, out=row)
        out = self._ws.get("out", x.shape, x.dtype)
        np.subtract(logits, row, out=out)
        out /= self.temperature
        np.exp(out, out=out)
        np.sum(out, axis=1, keepdims=True, out=row)
        np.divide(out, row, out=out)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        s = self._out
        tmp = self._ws.get("tmp", grad_output.shape, grad_output.dtype)
        dot = self._ws.get("dot", (grad_output.shape[0], 1), grad_output.dtype)
        np.multiply(grad_output, s, out=tmp)
        np.sum(tmp, axis=1, keepdims=True, out=dot)
        gin = self._ws.get("gin", grad_output.shape, grad_output.dtype)
        np.subtract(grad_output, dot, out=gin)
        np.multiply(s, gin, out=gin)
        gin /= self.temperature
        return gin


class BlockActivation(Layer):
    """Applies a different activation to each contiguous slice of the input.

    ``blocks`` is a list of ``(width, layer)`` pairs covering the full input
    width — e.g. tanh heads for continuous scalars interleaved with
    Gumbel-softmax heads for one-hot indicator blocks, matching a
    :class:`repro.gan.transformer.TabularTransformer` layout.
    """

    def __init__(self, blocks) -> None:
        super().__init__()
        if not blocks:
            raise ValidationError("BlockActivation requires at least one block")
        self.blocks = list(blocks)
        self._slices = []
        pos = 0
        for width, _layer in self.blocks:
            if width < 1:
                raise ValidationError("block widths must be >= 1")
            self._slices.append((pos, pos + width))
            pos += width
        self.total_width = pos

    def to(self, dtype) -> "BlockActivation":
        super().to(dtype)
        for _width, layer in self.blocks:
            layer.to(dtype)
        return self

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.shape[1] != self.total_width:
            raise ValidationError(
                f"BlockActivation expected {self.total_width} features, "
                f"got {x.shape[1]}"
            )
        out = self._ws.get("out", x.shape, x.dtype)
        for (a, b), (_w, layer) in zip(self._slices, self.blocks):
            out[:, a:b] = layer.forward(x[:, a:b], training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self._ws.get("gin", grad_output.shape, grad_output.dtype)
        for (a, b), (_w, layer) in zip(self._slices, self.blocks):
            grad[:, a:b] = layer.backward(grad_output[:, a:b])
        return grad
