"""Straight-line fused training kernel for the cGAN minibatch update.

The generic engine in :mod:`repro.nn.layers` removes per-batch allocations,
but at the paper's network sizes (hidden 128–256, batch 64) the remaining
cost is *dispatch*: ~40 layer-method calls, ~150 workspace lookups and ~30
per-parameter optimizer updates per minibatch, each wrapping numpy work
that takes only a few microseconds.  This module flattens the entire cGAN
minibatch update — generator forward, discriminator real/fake updates,
generator update — into one Python frame of ``out=`` ufunc calls over
buffers bound once per batch size, and adds three structural optimizations
that are exact (bit-identical in float64) rather than approximate:

- **flat-parameter Adam** — all parameters (and gradients) of a network are
  re-pointed into views of one contiguous vector, so an Adam step is ~12
  ufunc calls over a single array instead of ~12 per parameter.  Adam is
  elementwise, so the update per element is unchanged.
- **dead-gradient skipping** — the input gradient of each network's first
  ``Dense`` is never used, and the discriminator's *parameter* gradients
  during the generator update are discarded by ``zero_grad`` without being
  read.  The kernel simply does not compute them (and therefore needs no
  ``zero_grad`` at all: every gradient it keeps is fully overwritten).
- **batch-norm mean reuse** — ``np.var(x, axis=0)`` internally recomputes
  the mean; the kernel computes ``mean((x - mean)**2, axis=0)`` from the
  centered matrix it needs anyway for ``x_hat``.  numpy's ``_var`` performs
  exactly these operations, so the result is bit-identical.
- **LeakyReLU scale masks** — ``where(x > 0, x, slope * x)`` becomes a
  single multiply by a precomputed mask ``sm ∈ {slope, 1.0}``.  This is
  exact because ``x * 1.0 == x`` bitwise and ``(1.0 - slope) + slope``
  rounds to exactly ``1.0`` for the paper's slope of 0.2 (asserted at
  construction).  It replaces the six masked-``copyto`` forward ops and six
  backward ops per minibatch — the most expensive elementwise calls — with
  plain multiplies, and lets most activations update in place, shrinking
  the per-minibatch working set to fit cache.

Every remaining ufunc sequence mirrors :mod:`repro.nn.layers` /
:mod:`repro.nn.optimizers` operation for operation, which in turn mirror
the frozen baselines in :mod:`repro.nn.reference`; the regression tests
assert the kernel reproduces the reference training trajectory bit for bit.

The kernel is architecture-specific by design: it accepts exactly the
CTGAN-style generator (Dense–BN–ReLU ×2 → Dense–Tanh) and discriminator
(Dense–LeakyReLU–Dropout ×2 → Dense–Sigmoid) built by
:class:`repro.gan.cgan.ConditionalGAN`.  Everything else keeps using the
generic layer engine.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm1d,
    Dense,
    Dropout,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import BinaryCrossEntropy
from repro.utils.errors import ValidationError


def consolidate(layers) -> tuple[np.ndarray, np.ndarray, list]:
    """Re-point all params/grads of ``layers`` into two flat vectors.

    Returns ``(flat_params, flat_grads, segments)`` where ``segments`` is a
    list of 1-D views (one per parameter, in optimizer iteration order).
    After this call ``layer.params[key]`` / ``layer.grads[key]`` are
    contiguous 2-D/1-D views of the flat vectors: ``state_dict`` round-trips
    and the generic layer engine keep working unchanged, while elementwise
    optimizer math can run over the single flat array.
    """
    entries = []
    for layer in layers:
        for key in layer.params:
            entries.append((layer, key))
    if not entries:
        raise ValidationError("consolidate() needs at least one parameter")
    dt = entries[0][0].params[entries[0][1]].dtype
    total = sum(layer.params[key].size for layer, key in entries)
    flat_p = np.empty(total, dtype=dt)
    flat_g = np.zeros(total, dtype=dt)
    segments = []
    offset = 0
    for layer, key in entries:
        arr = layer.params[key]
        end = offset + arr.size
        pview = flat_p[offset:end].reshape(arr.shape)
        pview[...] = arr
        layer.params[key] = pview
        layer.grads[key] = flat_g[offset:end].reshape(arr.shape)
        segments.append(flat_p[offset:end])
        offset = end
    return flat_p, flat_g, segments


class FlatAdam:
    """Adam over one flat parameter vector (see :func:`consolidate`).

    Performs exactly the per-element operations of
    :class:`repro.nn.optimizers.Adam` — Adam is elementwise, so running the
    same ufunc chain over the concatenation of all parameters produces
    bit-identical updates — in ~12 ufunc calls total per step.
    """

    def __init__(self, flat_params, flat_grads, *, lr, beta1=0.9,
                 beta2=0.999, eps=1e-8, weight_decay=0.0) -> None:
        self.p = flat_params
        self.g = flat_grads
        self.lr = lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.weight_decay = weight_decay
        self._t = 0
        self._m = np.zeros_like(flat_params)
        self._v = np.zeros_like(flat_params)
        self._num = np.empty_like(flat_params)
        self._den = np.empty_like(flat_params)
        self._tmp = np.empty_like(flat_params)

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        m, v, g = self._m, self._v, self.g
        num, den, tmp = self._num, self._den, self._tmp
        m *= b1
        np.multiply(g, 1 - b1, out=tmp)
        m += tmp
        v *= b2
        np.square(g, out=tmp)
        tmp *= 1 - b2
        v += tmp
        np.divide(m, bias1, out=num)
        np.divide(v, bias2, out=den)
        np.sqrt(den, out=den)
        den += self.eps
        np.divide(num, den, out=num)
        if self.weight_decay:
            np.multiply(self.p, self.weight_decay, out=tmp)
            num += tmp
        num *= self.lr
        self.p -= num


def _expect(layer, cls, what):
    if not isinstance(layer, cls):
        raise ValidationError(
            f"FusedCGANTrainer: expected {cls.__name__} at {what}, "
            f"got {type(layer).__name__}"
        )
    return layer


class FusedCGANTrainer:
    """One-frame fused minibatch update for the CTGAN-style G/D pair.

    Binds the training set once (:meth:`bind`), lazily builds one buffer
    block per distinct batch size, and then performs the full alternating
    update of Eqs. (8)–(9) with zero allocations and zero per-layer
    dispatch.  Parameters are consolidated into flat vectors (shared with
    the live ``Sequential`` objects as views), so serving, ``state_dict``
    and ``discriminate`` see every update immediately.
    """

    def __init__(self, generator, discriminator, *, noise_dim, conditional,
                 lr, weight_decay, dtype) -> None:
        g, d = generator.layers, discriminator.layers
        if len(g) != 8 or len(d) != 8:
            raise ValidationError("FusedCGANTrainer: unexpected network depth")
        self.gd1 = _expect(g[0], Dense, "G[0]")
        self.gbn1 = _expect(g[1], BatchNorm1d, "G[1]")
        _expect(g[2], ReLU, "G[2]")
        self.gd2 = _expect(g[3], Dense, "G[3]")
        self.gbn2 = _expect(g[4], BatchNorm1d, "G[4]")
        _expect(g[5], ReLU, "G[5]")
        self.gd3 = _expect(g[6], Dense, "G[6]")
        _expect(g[7], Tanh, "G[7]")
        self.dd1 = _expect(d[0], Dense, "D[0]")
        self.dl1 = _expect(d[1], LeakyReLU, "D[1]")
        self.ddr1 = _expect(d[2], Dropout, "D[2]")
        self.dd2 = _expect(d[3], Dense, "D[3]")
        self.dl2 = _expect(d[4], LeakyReLU, "D[4]")
        self.ddr2 = _expect(d[5], Dropout, "D[5]")
        self.dd3 = _expect(d[6], Dense, "D[6]")
        _expect(d[7], Sigmoid, "D[7]")
        slope = self.dl1.negative_slope
        if self.dl2.negative_slope != slope:
            raise ValidationError("FusedCGANTrainer: mismatched LeakyReLU slopes")
        # the scale-mask trick needs (1 - slope) + slope to round to exactly
        # 1.0, so that x * sm is bitwise where(x > 0, x, slope * x)
        self._sm_scale = 1.0 - slope
        if self._sm_scale + slope != 1.0:
            raise ValidationError(
                f"FusedCGANTrainer: LeakyReLU slope {slope!r} breaks the "
                "exact scale-mask identity (1 - slope) + slope == 1"
            )

        self.dtype = np.dtype(dtype)
        self.noise_dim = noise_dim
        self.conditional = conditional
        self.n_invariant = self.gd1.in_features - noise_dim
        self.n_variant = self.gd3.out_features
        self.hidden = self.gd1.out_features
        self.d_in = self.dd1.in_features

        g_params, g_grads, g_segs = consolidate(
            [self.gd1, self.gbn1, self.gd2, self.gbn2, self.gd3]
        )
        d_params, d_grads, d_segs = consolidate(
            [self.dd1, self.dd2, self.dd3]
        )
        self._g_segs = [flat for flat in g_segs]
        self._d_segs = [flat for flat in d_segs]
        self._g_grads, self._d_grads = g_grads, d_grads
        self.g_opt = FlatAdam(g_params, g_grads, lr=lr,
                              weight_decay=weight_decay)
        self.d_opt = FlatAdam(d_params, d_grads, lr=lr,
                              weight_decay=weight_decay)
        self.bce = BinaryCrossEntropy()
        self._bufs: dict[int, dict] = {}
        self._X_inv = self._X_var = self._y = None

    # -- data ---------------------------------------------------------------
    def bind(self, X_inv, X_var, y_onehot) -> None:
        """Attach the (already casted, contiguous) training arrays."""
        self._X_inv, self._X_var, self._y = X_inv, X_var, y_onehot

    # -- buffers ------------------------------------------------------------
    def _buffers(self, m: int) -> dict:
        B = self._bufs.get(m)
        if B is None:
            dt, h = self.dtype, self.hidden
            n_inv, nv = self.n_invariant, self.n_variant
            B = self._bufs[m] = {
                "inv": np.empty((m, n_inv), dt),
                "var": np.empty((m, nv), dt),
                "cond": (np.empty((m, self._y.shape[1]), dt)
                         if self.conditional else None),
                "real_in": np.empty((m, self.d_in), dt),
                "fake_in": np.empty((m, self.d_in), dt),
                "g_in": np.empty((m, n_inv + self.noise_dim), dt),
                "z": np.empty((m, self.noise_dim), np.float64),
                "ones": np.ones((m, 1), dt),
                "zeros": np.zeros((m, 1), dt),
                # generator forward/backward ("a" buffers are updated in
                # place: pre-activation -> scaled x_hat -> ReLU output)
                "a1": np.empty((m, h), dt), "xh1": np.empty((m, h), dt),
                "a2": np.empty((m, h), dt), "xh2": np.empty((m, h), dt),
                "a3": np.empty((m, nv), dt), "g_out": np.empty((m, nv), dt),
                "gmask1": np.empty((m, h), bool),
                "gmask2": np.empty((m, h), bool),
                "sq": np.empty((m, h), dt),
                "gt": np.empty((m, nv), dt),
                "ga": np.empty((m, h), dt), "gbn": np.empty((m, h), dt),
                # discriminator forward/backward ("t" buffers update in
                # place: pre-activation -> LeakyReLU -> dropout output)
                "t1": np.empty((m, h), dt),
                "t2": np.empty((m, h), dt),
                "t3": np.empty((m, 1), dt), "p": np.empty((m, 1), dt),
                "u": np.empty((m, h), np.float64),
                "kmask": np.empty((m, h), bool),
                "dmask": np.empty((m, h), bool),
                "sm1": np.empty((m, h), dt),
                "sm2": np.empty((m, h), dt),
                "dropm1": np.empty((m, h), dt),
                "dropm2": np.empty((m, h), dt),
                "gp": np.empty((m, 1), dt), "ptmp": np.empty((m, 1), dt),
                "gh2": np.empty((m, h), dt), "gh1": np.empty((m, h), dt),
                "gx": np.empty((m, self.d_in), dt),
            }
        return B

    # -- fused passes -------------------------------------------------------
    def _g_forward(self, B) -> np.ndarray:
        """Generator forward on ``B['g_in']`` (training mode), into B.

        ``a1``/``a2`` are reused in place (pre-activation, then the scaled
        batch-norm output, then the ReLU output): each rewrite is the exact
        ufunc the generic layer runs, only with ``out=`` aliased to an
        argument, which is safe for elementwise ops.
        """
        bn1, bn2 = self.gbn1, self.gbn2
        a1, xh1 = B["a1"], B["xh1"]
        a2, xh2 = B["a2"], B["xh2"]
        sq = B["sq"]

        np.matmul(B["g_in"], self.gd1.params["W"], out=a1)
        a1 += self.gd1.params["b"]
        self._bn_forward(bn1, a1, xh1, sq)
        np.multiply(xh1, bn1.params["gamma"], out=a1)
        a1 += bn1.params["beta"]
        np.greater(a1, 0, out=B["gmask1"])
        a1 *= B["gmask1"]  # a1 is now the first ReLU output

        np.matmul(a1, self.gd2.params["W"], out=a2)
        a2 += self.gd2.params["b"]
        self._bn_forward(bn2, a2, xh2, sq)
        np.multiply(xh2, bn2.params["gamma"], out=a2)
        a2 += bn2.params["beta"]
        np.greater(a2, 0, out=B["gmask2"])
        a2 *= B["gmask2"]  # a2 is now the second ReLU output

        np.matmul(a2, self.gd3.params["W"], out=B["a3"])
        B["a3"] += self.gd3.params["b"]
        np.tanh(B["a3"], out=B["g_out"])
        return B["g_out"]

    def _bn_forward(self, bn, x, x_hat, sq) -> None:
        """Training-mode batch norm: ``x -> x_hat`` plus running stats.

        ``np.var`` recomputes the mean internally; centering first and
        averaging the squares performs numpy's exact ``_var`` operations on
        the matrix we need anyway, so ``var`` (and everything downstream)
        is bit-identical to the generic layer.
        """
        d = bn.num_features
        ws = bn._ws
        dt = x.dtype
        mean = ws.get("mean", (d,), dt)
        var = ws.get("var", (d,), dt)
        np.mean(x, axis=0, out=mean)
        np.subtract(x, mean, out=x_hat)
        np.multiply(x_hat, x_hat, out=sq)
        np.mean(sq, axis=0, out=var)
        tmp = ws.get("stat_tmp", (d,), dt)
        bn.running_mean *= bn.momentum
        np.multiply(mean, 1 - bn.momentum, out=tmp)
        bn.running_mean += tmp
        bn.running_var *= bn.momentum
        np.multiply(var, 1 - bn.momentum, out=tmp)
        bn.running_var += tmp
        std = ws.get("std", (d,), dt)
        np.add(var, bn.eps, out=std)
        np.sqrt(std, out=std)
        np.divide(x_hat, std, out=x_hat)

    def _bn_backward(self, bn, grad, x_hat, tmp, out) -> np.ndarray:
        """Training-mode batch-norm backward (param grads + input grad)."""
        d = bn.num_features
        ws = bn._ws
        dt = grad.dtype
        std = ws.get("std", (d,), dt)
        np.multiply(grad, x_hat, out=tmp)
        np.sum(tmp, axis=0, out=bn.grads["gamma"])
        np.sum(grad, axis=0, out=bn.grads["beta"])
        np.multiply(grad, bn.params["gamma"], out=out)
        g_mean = ws.get("g_mean", (d,), dt)
        np.mean(out, axis=0, out=g_mean)
        gx_mean = ws.get("gx_mean", (d,), dt)
        np.multiply(out, x_hat, out=tmp)
        np.mean(tmp, axis=0, out=gx_mean)
        np.multiply(x_hat, gx_mean, out=tmp)
        np.subtract(out, g_mean, out=out)
        out -= tmp
        np.divide(out, std, out=out)
        return out

    def _d_forward(self, B, x) -> np.ndarray:
        """Discriminator forward on ``x`` (training mode), into B.

        LeakyReLU runs as a single multiply by the scale mask
        ``sm = mask * (1 - slope) + slope`` (exact, see the module docstring)
        and ``t1``/``t2`` are updated in place through activation and
        dropout, so the layer-1/2 blocks touch two float buffers each.
        """
        slope = self.dl1.negative_slope
        scale = self._sm_scale
        keep1 = 1.0 - self.ddr1.rate
        keep2 = 1.0 - self.ddr2.rate
        t1, t2 = B["t1"], B["t2"]
        sm1, sm2 = B["sm1"], B["sm2"]
        u, kmask, dmask = B["u"], B["kmask"], B["dmask"]

        np.matmul(x, self.dd1.params["W"], out=t1)
        t1 += self.dd1.params["b"]
        np.greater(t1, 0, out=dmask)
        np.multiply(dmask, scale, out=sm1)
        sm1 += slope
        t1 *= sm1  # == where(t1 > 0, t1, slope * t1) bitwise
        # dropout masks are drawn at float64 (RNG stream parity; layer rngs)
        self.ddr1._rng.random(out=u)
        np.less(u, keep1, out=kmask)
        np.divide(kmask, keep1, out=B["dropm1"])
        t1 *= B["dropm1"]  # t1 is now the dropout output

        np.matmul(t1, self.dd2.params["W"], out=t2)
        t2 += self.dd2.params["b"]
        np.greater(t2, 0, out=dmask)
        np.multiply(dmask, scale, out=sm2)
        sm2 += slope
        t2 *= sm2
        self.ddr2._rng.random(out=u)
        np.less(u, keep2, out=kmask)
        np.divide(kmask, keep2, out=B["dropm2"])
        t2 *= B["dropm2"]

        t3 = B["t3"]
        np.matmul(t2, self.dd3.params["W"], out=t3)
        t3 += self.dd3.params["b"]
        p = B["p"]
        np.clip(t3, -60.0, 60.0, out=p)
        np.negative(p, out=p)
        np.exp(p, out=p)
        p += 1.0
        np.divide(1.0, p, out=p)
        return p

    def _d_backward(self, B, x, grad, *, param_grads, input_grad):
        """Discriminator backward from loss grad ``grad`` (shape (m, 1)).

        ``param_grads=False`` skips all weight/bias gradients (generator
        step: they would be zeroed unread); ``input_grad=False`` skips the
        first layer's input gradient (discriminator steps: unused).

        After :meth:`_d_forward`, ``t1``/``t2`` hold the dropout outputs
        (the inputs of Dense 2/3) and ``sm1``/``sm2`` the LeakyReLU scale
        masks, so each activation backward is one in-place multiply.
        """
        gp, ptmp, p = B["gp"], B["ptmp"], B["p"]
        gh2, gh1 = B["gh2"], B["gh1"]

        np.multiply(grad, p, out=gp)
        np.subtract(1.0, p, out=ptmp)
        np.multiply(gp, ptmp, out=gp)
        if param_grads:
            np.matmul(B["t2"].T, gp, out=self.dd3.grads["W"])
            np.sum(gp, axis=0, out=self.dd3.grads["b"])
        np.matmul(gp, self.dd3.params["W"].T, out=gh2)
        gh2 *= B["dropm2"]
        gh2 *= B["sm2"]
        if param_grads:
            np.matmul(B["t1"].T, gh2, out=self.dd2.grads["W"])
            np.sum(gh2, axis=0, out=self.dd2.grads["b"])
        np.matmul(gh2, self.dd2.params["W"].T, out=gh1)
        gh1 *= B["dropm1"]
        gh1 *= B["sm1"]
        if param_grads:
            np.matmul(x.T, gh1, out=self.dd1.grads["W"])
            np.sum(gh1, axis=0, out=self.dd1.grads["b"])
        if input_grad:
            np.matmul(gh1, self.dd1.params["W"].T, out=B["gx"])
            return B["gx"]
        return None

    def _g_backward(self, B, grad_fake) -> None:
        """Generator backward from d(loss)/d(fake_var) (param grads only)."""
        gt, ga, gbn, sq = B["gt"], B["ga"], B["gbn"], B["sq"]

        np.square(B["g_out"], out=gt)
        np.subtract(1.0, gt, out=gt)
        np.multiply(grad_fake, gt, out=gt)
        np.matmul(B["a2"].T, gt, out=self.gd3.grads["W"])
        np.sum(gt, axis=0, out=self.gd3.grads["b"])
        np.matmul(gt, self.gd3.params["W"].T, out=ga)
        np.multiply(ga, B["gmask2"], out=ga)
        self._bn_backward(self.gbn2, ga, B["xh2"], sq, gbn)
        np.matmul(B["a1"].T, gbn, out=self.gd2.grads["W"])
        np.sum(gbn, axis=0, out=self.gd2.grads["b"])
        np.matmul(gbn, self.gd2.params["W"].T, out=ga)
        np.multiply(ga, B["gmask1"], out=ga)
        self._bn_backward(self.gbn1, ga, B["xh1"], sq, gbn)
        np.matmul(B["g_in"].T, gbn, out=self.gd1.grads["W"])
        np.sum(gbn, axis=0, out=self.gd1.grads["b"])
        # the input gradient of G[0] has no consumer: skipped

    def grad_norm(self, which: str) -> float:
        """Global gradient L2 norm (training-telemetry hooks).

        Matches :meth:`repro.nn.optimizers.Optimizer.grad_norm`: per-parameter
        squared norms summed in parameter order.
        """
        flat = self._g_grads if which == "g" else self._d_grads
        total = 0.0
        pos = 0
        for seg in (self._g_segs if which == "g" else self._d_segs):
            chunk = flat[pos:pos + seg.size]
            total += float(np.dot(chunk, chunk))
            pos += seg.size
        return float(np.sqrt(total))

    # -- the minibatch update ----------------------------------------------
    def minibatch(self, idx, rng, *, d_steps, want_grad_norms=False):
        """One alternating cGAN update on the rows ``idx``.

        Returns ``(d_losses, g_loss, d_grad_norm, g_grad_norm)`` where
        ``d_losses`` has one entry per discriminator step (the reference
        loop's ``0.5 * (loss_real + loss_fake)``).
        """
        m = idx.shape[0]
        B = self._buffers(m)
        n_inv, nv = self.n_invariant, self.n_variant
        bce = self.bce
        inv, var = B["inv"], B["var"]
        real_in, fake_in, g_in, z = B["real_in"], B["fake_in"], B["g_in"], B["z"]

        np.take(self._X_inv, idx, axis=0, out=inv)
        np.take(self._X_var, idx, axis=0, out=var)
        real_in[:, :n_inv] = inv
        real_in[:, n_inv:n_inv + nv] = var
        fake_in[:, :n_inv] = inv
        if self.conditional:
            cond = B["cond"]
            np.take(self._y, idx, axis=0, out=cond)
            real_in[:, n_inv + nv:] = cond
            fake_in[:, n_inv + nv:] = cond
        g_in[:, :n_inv] = inv

        d_losses = []
        d_grad_norm = g_grad_norm = 0.0
        for _ in range(d_steps):
            # --- discriminator step (Eq. 8)
            rng.standard_normal(out=z)
            g_in[:, n_inv:] = z
            fake_var = self._g_forward(B)
            fake_in[:, n_inv:n_inv + nv] = fake_var
            p = self._d_forward(B, real_in)
            loss_real = bce.forward(p, B["ones"])
            self._d_backward(B, real_in, bce.backward(),
                             param_grads=True, input_grad=False)
            if want_grad_norms:
                d_grad_norm = self.grad_norm("d")
            self.d_opt.step()
            p = self._d_forward(B, fake_in)
            loss_fake = bce.forward(p, B["zeros"])
            self._d_backward(B, fake_in, bce.backward(),
                             param_grads=True, input_grad=False)
            self.d_opt.step()
            d_losses.append(0.5 * (loss_real + loss_fake))

        # --- generator step (Eq. 9, non-saturating)
        rng.standard_normal(out=z)
        g_in[:, n_inv:] = z
        fake_var = self._g_forward(B)
        fake_in[:, n_inv:n_inv + nv] = fake_var
        p = self._d_forward(B, fake_in)
        g_loss = bce.forward(p, B["ones"])
        gx = self._d_backward(B, fake_in, bce.backward(),
                              param_grads=False, input_grad=True)
        self._g_backward(B, gx[:, n_inv:n_inv + nv])
        if want_grad_norms:
            g_grad_norm = self.grad_norm("g")
        self.g_opt.step()
        return d_losses, g_loss, d_grad_norm, g_grad_norm
