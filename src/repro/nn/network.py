"""Sequential network container and training utilities."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_random_state


class Sequential(Layer):
    """A stack of layers applied in order, with reverse-order backprop."""

    def __init__(self, layers: list[Layer]) -> None:
        super().__init__()
        if not layers:
            raise ValidationError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def to(self, dtype) -> "Sequential":
        """Convert every layer's parameters/buffers to ``dtype`` (in order).

        ``float64`` is the default compute dtype everywhere; ``float32`` is
        the fast path for training/serving where tolerance-bounded deviation
        from the float64 trajectory is acceptable.  Call before constructing
        the optimizer (optimizer state is sized off the parameter arrays).
        """
        for layer in self.layers:
            layer.to(dtype)
        self._ws.clear()
        return self

    def trainable_layers(self) -> list[Layer]:
        """All layers carrying parameters, flattening nested Sequentials."""
        found: list[Layer] = []
        for layer in self.layers:
            if isinstance(layer, Sequential):
                found.extend(layer.trainable_layers())
            elif layer.params:
                found.append(layer)
        return found

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for layer in self.trainable_layers() for p in layer.params.values())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter (and batch-norm statistic) arrays."""
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.trainable_layers()):
            for key, value in layer.params.items():
                state[f"{i}.{key}"] = value.copy()
            if hasattr(layer, "running_mean"):
                state[f"{i}.running_mean"] = layer.running_mean.copy()
                state[f"{i}.running_var"] = layer.running_var.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        for i, layer in enumerate(self.trainable_layers()):
            for key in layer.params:
                name = f"{i}.{key}"
                if name not in state:
                    raise ValidationError(f"state dict is missing {name!r}")
                if state[name].shape != layer.params[key].shape:
                    raise ValidationError(
                        f"shape mismatch for {name!r}: "
                        f"{state[name].shape} vs {layer.params[key].shape}"
                    )
                layer.params[key][...] = state[name]
            if hasattr(layer, "running_mean"):
                layer.running_mean[...] = state[f"{i}.running_mean"]
                layer.running_var[...] = state[f"{i}.running_var"]


def iterate_minibatches(
    n_samples: int,
    batch_size: int,
    rng: np.random.Generator | int | None = None,
    *,
    shuffle: bool = True,
    drop_last: bool = False,
):
    """Yield index arrays covering ``range(n_samples)`` in minibatches."""
    if batch_size <= 0:
        raise ValidationError("batch_size must be positive")
    rng = check_random_state(rng)
    order = rng.permutation(n_samples) if shuffle else np.arange(n_samples)
    for start in range(0, n_samples, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and len(batch) < batch_size:
            return
        yield batch
