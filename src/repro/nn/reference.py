"""Frozen pre-fusion nn implementations — the benchmark/equivalence baseline.

When the live substrate in :mod:`repro.nn.layers` / :mod:`repro.nn.optimizers`
was rewritten as a fused, allocation-free engine, the original per-batch
allocating implementations were frozen here, exactly as
:func:`repro.experiments.bench.reference_discover` froze the pre-engine FS
loop.  They serve two purposes:

- **timing baseline** — ``repro bench --suite nn`` trains
  :class:`ReferenceConditionalGAN` against the fused
  :class:`repro.gan.cgan.ConditionalGAN` on identical data and seeds, so the
  speedup isolates the fusion being benchmarked;
- **correctness oracle** — the regression tests assert the fused float64
  engine reproduces these implementations *bit for bit* (identical parameter
  trajectories), proving the optimization is not an approximation.

Nothing here is exported through :mod:`repro.nn`; do not "optimize" this
module — its value is that it never changes.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import get_initializer, zeros
from repro.nn.layers import Layer
from repro.nn.network import Sequential, iterate_minibatches
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, check_is_fitted, check_random_state


class ReferenceDense(Layer):
    """Pre-fusion fully connected layer (rebinding gradients per batch)."""

    def __init__(self, in_features, out_features, *, init="he_normal",
                 random_state=None) -> None:
        super().__init__()
        rng = check_random_state(random_state)
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": get_initializer(init)(rng, in_features, out_features),
            "b": zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x = None

    def forward(self, x, training=False):
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_output):
        x = self._x
        self.grads["W"] = x.T @ grad_output
        self.grads["b"] = grad_output.sum(axis=0)
        return grad_output @ self.params["W"].T


class ReferenceReLU(Layer):
    def forward(self, x, training=False):
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output):
        return grad_output * self._mask


class ReferenceLeakyReLU(Layer):
    def __init__(self, negative_slope=0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x, training=False):
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output):
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class ReferenceTanh(Layer):
    def forward(self, x, training=False):
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_output):
        return grad_output * (1.0 - self._out**2)


class ReferenceSigmoid(Layer):
    def forward(self, x, training=False):
        self._out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return self._out

    def backward(self, grad_output):
        return grad_output * self._out * (1.0 - self._out)


class ReferenceDropout(Layer):
    def __init__(self, rate=0.5, *, random_state=None) -> None:
        super().__init__()
        self.rate = rate
        self._rng = check_random_state(random_state)
        self._mask = None

    def forward(self, x, training=False):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output):
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class ReferenceBatchNorm1d(Layer):
    def __init__(self, num_features, *, momentum=0.9, eps=1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params = {"gamma": np.ones(num_features), "beta": np.zeros(num_features)}
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x, training=False):
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        self._std = np.sqrt(var + self.eps)
        self._x_hat = (x - mean) / self._std
        self._training = training
        return self.params["gamma"] * self._x_hat + self.params["beta"]

    def backward(self, grad_output):
        x_hat, std = self._x_hat, self._std
        self.grads["gamma"] = (grad_output * x_hat).sum(axis=0)
        self.grads["beta"] = grad_output.sum(axis=0)
        g = grad_output * self.params["gamma"]
        if not self._training:
            return g / std
        return (g - g.mean(axis=0) - x_hat * (g * x_hat).mean(axis=0)) / std


class _ReferenceOptimizer:
    def __init__(self, layers, *, lr, weight_decay=0.0) -> None:
        self.layers = [layer for layer in layers if layer.params]
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self):
        for layer in self.layers:
            for key in layer.grads:
                layer.grads[key][...] = 0.0

    def _iter_params(self):
        for li, layer in enumerate(self.layers):
            for key in layer.params:
                yield (li, key), layer.params[key], layer.grads[key]


class ReferenceSGD(_ReferenceOptimizer):
    """Pre-fusion SGD, including the velocity-rebinding momentum step."""

    def __init__(self, layers, *, lr=0.01, momentum=0.0, weight_decay=0.0) -> None:
        super().__init__(layers, lr=lr, weight_decay=weight_decay)
        self.momentum = momentum
        self._velocity: dict = {}

    def step(self):
        for key, param, grad in self._iter_params():
            g = grad
            if self.weight_decay:
                g = g + self.weight_decay * param
            if self.momentum:
                v = self._velocity.get(key)
                if v is None:
                    v = np.zeros_like(param)
                v = self.momentum * v - self.lr * g
                self._velocity[key] = v
                param += v
            else:
                param -= self.lr * g


class ReferenceAdam(_ReferenceOptimizer):
    """Pre-fusion Adam allocating ~7 temporaries per parameter per step."""

    def __init__(self, layers, *, lr=2e-4, beta1=0.9, beta2=0.999, eps=1e-8,
                 weight_decay=0.0) -> None:
        super().__init__(layers, lr=lr, weight_decay=weight_decay)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: dict = {}
        self._v: dict = {}
        self._t = 0

    def step(self):
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for key, param, grad in self._iter_params():
            m = self._m.get(key)
            if m is None:
                m = np.zeros_like(param)
                self._m[key] = m
                self._v[key] = np.zeros_like(param)
            v = self._v[key]
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param
            param -= self.lr * update


class ReferenceBinaryCrossEntropy:
    _EPS = 1e-12

    def forward(self, prediction, target):
        p = np.clip(prediction, self._EPS, 1.0 - self._EPS)
        self._p, self._t = p, target
        return float(-np.mean(target * np.log(p) + (1.0 - target) * np.log(1.0 - p)))

    def backward(self):
        p, t = self._p, self._t
        return ((p - t) / (p * (1.0 - p))) / p.size


class ReferenceConditionalGAN:
    """The pre-fusion CTGAN-style training/serving loop, frozen verbatim.

    Consumes the RNG in exactly the same order as the fused
    :class:`repro.gan.cgan.ConditionalGAN` (layer seeds, minibatch
    permutations, noise and dropout draws), which is what makes bit-identical
    trajectory comparison possible.  Telemetry hooks were dropped — they
    never touched the RNG.
    """

    def __init__(self, *, noise_dim=16, hidden_size=128, epochs=200,
                 batch_size=64, lr=2e-4, weight_decay=1e-6, conditional=True,
                 d_steps=1, dropout=0.25, random_state=None) -> None:
        self.noise_dim = noise_dim
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.conditional = conditional
        self.d_steps = d_steps
        self.dropout = dropout
        self.random_state = random_state
        self.generator_: Sequential | None = None
        self.discriminator_: Sequential | None = None
        self.n_invariant_: int | None = None
        self.n_variant_: int | None = None
        self.n_classes_: int | None = None
        self.history_: dict[str, list[float]] = {"d_loss": [], "g_loss": []}

    def _build_generator(self, rng):
        h = self.hidden_size
        in_dim = self.n_invariant_ + self.noise_dim
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        return Sequential(
            [
                ReferenceDense(in_dim, h, random_state=seed()),
                ReferenceBatchNorm1d(h),
                ReferenceReLU(),
                ReferenceDense(h, h, random_state=seed()),
                ReferenceBatchNorm1d(h),
                ReferenceReLU(),
                ReferenceDense(h, self.n_variant_, init="glorot_uniform",
                               random_state=seed()),
                ReferenceTanh(),
            ]
        )

    def _build_discriminator(self, rng):
        h = self.hidden_size
        in_dim = self.n_invariant_ + self.n_variant_
        if self.conditional:
            in_dim += self.n_classes_
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        return Sequential(
            [
                ReferenceDense(in_dim, h, random_state=seed()),
                ReferenceLeakyReLU(0.2),
                ReferenceDropout(self.dropout, random_state=seed()),
                ReferenceDense(h, h, random_state=seed()),
                ReferenceLeakyReLU(0.2),
                ReferenceDropout(self.dropout, random_state=seed()),
                ReferenceDense(h, 1, init="glorot_uniform", random_state=seed()),
                ReferenceSigmoid(),
            ]
        )

    def fit(self, X_inv, X_var, y_onehot=None):
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        if self.conditional:
            if y_onehot is None:
                raise ValidationError("conditional GAN requires y_onehot")
            y_onehot = check_array(y_onehot, name="y_onehot")
            self.n_classes_ = y_onehot.shape[1]
        else:
            self.n_classes_ = 0
        self.n_invariant_ = X_inv.shape[1]
        self.n_variant_ = X_var.shape[1]
        rng = check_random_state(self.random_state)
        self._rng = rng
        self.generator_ = self._build_generator(rng)
        self.discriminator_ = self._build_discriminator(rng)
        g_opt = ReferenceAdam(self.generator_.trainable_layers(), lr=self.lr,
                              weight_decay=self.weight_decay)
        d_opt = ReferenceAdam(self.discriminator_.trainable_layers(), lr=self.lr,
                              weight_decay=self.weight_decay)
        bce = ReferenceBinaryCrossEntropy()
        n = X_inv.shape[0]
        batch = min(self.batch_size, n)
        self.history_ = {"d_loss": [], "g_loss": []}
        for _epoch in range(self.epochs):
            d_losses, g_losses = [], []
            for idx in iterate_minibatches(n, batch, rng):
                inv = X_inv[idx]
                var = X_var[idx]
                cond = y_onehot[idx] if self.conditional else None
                m = inv.shape[0]

                for _ in range(self.d_steps):
                    z = rng.standard_normal((m, self.noise_dim))
                    fake_var = self.generator_.forward(
                        np.concatenate([inv, z], axis=1), training=True
                    )
                    real_in = self._d_input(inv, var, cond)
                    fake_in = self._d_input(inv, fake_var, cond)
                    d_real = self.discriminator_.forward(real_in, training=True)
                    loss_real = bce.forward(d_real, np.ones_like(d_real))
                    self.discriminator_.backward(bce.backward())
                    d_opt.step()
                    d_opt.zero_grad()
                    d_fake = self.discriminator_.forward(fake_in, training=True)
                    loss_fake = bce.forward(d_fake, np.zeros_like(d_fake))
                    self.discriminator_.backward(bce.backward())
                    d_opt.step()
                    d_opt.zero_grad()
                    d_losses.append(0.5 * (loss_real + loss_fake))

                z = rng.standard_normal((m, self.noise_dim))
                g_in = np.concatenate([inv, z], axis=1)
                fake_var = self.generator_.forward(g_in, training=True)
                fake_in = self._d_input(inv, fake_var, cond)
                d_fake = self.discriminator_.forward(fake_in, training=True)
                g_loss = bce.forward(d_fake, np.ones_like(d_fake))
                grad_d_in = self.discriminator_.backward(bce.backward())
                grad_fake = grad_d_in[:, self.n_invariant_:self.n_invariant_ + self.n_variant_]
                self.generator_.backward(grad_fake)
                g_opt.step()
                g_opt.zero_grad()
                d_opt.zero_grad()
                g_losses.append(g_loss)

            self.history_["d_loss"].append(float(np.mean(d_losses)))
            self.history_["g_loss"].append(float(np.mean(g_losses)))
        return self

    def _d_input(self, inv, var, cond):
        if self.conditional:
            return np.concatenate([inv, var, cond], axis=1)
        return np.concatenate([inv, var], axis=1)

    def generate(self, X_inv, *, n_draws=1, random_state=None):
        """Pre-fusion serving path: one full forward per Monte-Carlo draw."""
        check_is_fitted(self, "generator_")
        X_inv = check_array(X_inv, name="X_inv")
        rng = check_random_state(random_state) if random_state is not None else self._rng
        total = np.zeros((X_inv.shape[0], self.n_variant_))
        for _ in range(n_draws):
            z = rng.standard_normal((X_inv.shape[0], self.noise_dim))
            total += self.generator_.forward(
                np.concatenate([X_inv, z], axis=1), training=False
            )
        return total / n_draws
