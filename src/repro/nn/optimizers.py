"""Optimizers for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


class Optimizer:
    """Base optimizer operating on a list of layers with params/grads dicts."""

    def __init__(self, layers, *, lr: float, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValidationError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValidationError("weight_decay must be non-negative")
        self.layers = [layer for layer in layers if layer.params]
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all parameter gradients to zero."""
        for layer in self.layers:
            for key in layer.grads:
                layer.grads[key][...] = 0.0

    def grad_norm(self) -> float:
        """Global L2 norm of all current gradients (training-telemetry hooks)."""
        total = 0.0
        for _, _, grad in self._iter_params():
            total += float(np.dot(grad.ravel(), grad.ravel()))
        return float(np.sqrt(total))

    def _iter_params(self):
        for li, layer in enumerate(self.layers):
            for key in layer.params:
                yield (li, key), layer.params[key], layer.grads[key]


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, layers, *, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(layers, lr=lr, weight_decay=weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValidationError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict = {}

    def step(self) -> None:
        for key, param, grad in self._iter_params():
            g = grad
            if self.weight_decay:
                g = g + self.weight_decay * param
            if self.momentum:
                v = self._velocity.get(key)
                if v is None:
                    v = np.zeros_like(param)
                v = self.momentum * v - self.lr * g
                self._velocity[key] = v
                param += v
            else:
                param -= self.lr * g


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba 2015) with decoupled weight decay.

    The paper trains generator and discriminator with lr 2e-4 and a decay of
    1e-6; we map that decay onto ``weight_decay``.
    """

    def __init__(self, layers, *, lr: float = 2e-4, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(layers, lr=lr, weight_decay=weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValidationError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: dict = {}
        self._v: dict = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for key, param, grad in self._iter_params():
            m = self._m.get(key)
            if m is None:
                m = np.zeros_like(param)
                self._m[key] = m
                self._v[key] = np.zeros_like(param)
            v = self._v[key]
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param
            param -= self.lr * update
