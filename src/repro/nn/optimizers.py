"""Optimizers for the numpy neural-network substrate (fused engine).

Both optimizers update parameters strictly in place with preallocated
scratch buffers (``out=`` ufunc forms), so a step allocates nothing after
the first call — and the float64 parameter trajectories are bit-identical
to the pre-fusion implementations frozen in :mod:`repro.nn.reference`
(same ufuncs, same operation order).

State (Adam moments and step count, SGD velocities) round-trips through
``state_dict``/``load_state_dict`` so training can be checkpointed and
resumed exactly.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


class Optimizer:
    """Base optimizer operating on a list of layers with params/grads dicts."""

    def __init__(self, layers, *, lr: float, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValidationError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValidationError("weight_decay must be non-negative")
        self.layers = [layer for layer in layers if layer.params]
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all parameter gradients to zero."""
        for layer in self.layers:
            for key in layer.grads:
                layer.grads[key][...] = 0.0

    def grad_norm(self) -> float:
        """Global L2 norm of all current gradients (training-telemetry hooks)."""
        total = 0.0
        for _, _, grad in self._iter_params():
            total += float(np.dot(grad.ravel(), grad.ravel()))
        return float(np.sqrt(total))

    def state_dict(self) -> dict:
        """Serializable snapshot of the optimizer state (base: empty)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict` (base: no-op)."""

    def _iter_params(self):
        for li, layer in enumerate(self.layers):
            for key in layer.params:
                yield (li, key), layer.params[key], layer.grads[key]

    def _state_arrays(self, store: dict, *, copy: bool) -> dict[str, np.ndarray]:
        """Flatten a ``{(layer, key): array}`` store into string-keyed arrays."""
        out = {}
        for (li, key), arr in store.items():
            out[f"{li}.{key}"] = arr.copy() if copy else arr
        return out

    def _load_state_arrays(self, store: dict, arrays: dict, name: str) -> None:
        """Restore a flattened store in place, validating against the params."""
        for key, param, _grad in self._iter_params():
            li, pkey = key
            flat = f"{li}.{pkey}"
            if flat not in arrays:
                raise ValidationError(f"optimizer state is missing {name}[{flat!r}]")
            value = np.asarray(arrays[flat])
            if value.shape != param.shape:
                raise ValidationError(
                    f"optimizer state shape mismatch for {name}[{flat!r}]: "
                    f"{value.shape} vs {param.shape}"
                )
            buf = store.get(key)
            if buf is None:
                buf = store[key] = np.zeros_like(param)
            buf[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum.

    The momentum step updates the velocity buffer in place
    (``v *= momentum; v -= lr * g``) instead of rebinding a fresh array
    every step.
    """

    def __init__(self, layers, *, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(layers, lr=lr, weight_decay=weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValidationError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: dict = {}
        self._scratch: dict = {}

    def step(self) -> None:
        for key, param, grad in self._iter_params():
            tmp = self._scratch.get(key)
            if tmp is None:
                tmp = self._scratch[key] = np.empty_like(param)
            g = grad
            if self.weight_decay:
                np.multiply(param, self.weight_decay, out=tmp)
                np.add(grad, tmp, out=tmp)
                g = tmp
            if self.momentum:
                v = self._velocity.get(key)
                if v is None:
                    v = self._velocity[key] = np.zeros_like(param)
                v *= self.momentum
                if g is tmp:
                    tmp *= self.lr
                else:
                    np.multiply(g, self.lr, out=tmp)
                v -= tmp
                param += v
            else:
                if g is tmp:
                    tmp *= self.lr
                else:
                    np.multiply(g, self.lr, out=tmp)
                param -= tmp

    def state_dict(self) -> dict:
        return {"velocity": self._state_arrays(self._velocity, copy=True)}

    def load_state_dict(self, state: dict) -> None:
        self._load_state_arrays(self._velocity, state.get("velocity", {}), "velocity")


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba 2015) with decoupled weight decay.

    The paper trains generator and discriminator with lr 2e-4 and a decay of
    1e-6; we map that decay onto ``weight_decay``.  Moments and scratch are
    preallocated per parameter on the first step; afterwards a step performs
    zero allocations.
    """

    def __init__(self, layers, *, lr: float = 2e-4, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(layers, lr=lr, weight_decay=weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValidationError("betas must be in [0, 1)")
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m: dict = {}
        self._v: dict = {}
        self._t = 0
        self._scratch: dict = {}

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        wd = self.weight_decay
        for key, param, grad in self._iter_params():
            m = self._m.get(key)
            if m is None:
                m = self._m[key] = np.zeros_like(param)
                self._v[key] = np.zeros_like(param)
                self._scratch[key] = (np.empty_like(param), np.empty_like(param),
                                      np.empty_like(param))
            v = self._v[key]
            num, den, tmp = self._scratch[key]
            m *= b1
            np.multiply(grad, 1 - b1, out=tmp)
            m += tmp
            v *= b2
            np.square(grad, out=tmp)
            tmp *= 1 - b2
            v += tmp
            np.divide(m, bias1, out=num)
            np.divide(v, bias2, out=den)
            np.sqrt(den, out=den)
            den += self.eps
            np.divide(num, den, out=num)
            if wd:
                np.multiply(param, wd, out=tmp)
                num += tmp
            num *= self.lr
            param -= num

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": self._state_arrays(self._m, copy=True),
            "v": self._state_arrays(self._v, copy=True),
        }

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state.get("t", 0))
        self._load_state_arrays(self._m, state.get("m", {}), "m")
        self._load_state_arrays(self._v, state.get("v", {}), "v")
        for key, param, _grad in self._iter_params():
            if key not in self._scratch:
                self._scratch[key] = (np.empty_like(param), np.empty_like(param),
                                      np.empty_like(param))
