"""Shape-keyed scratch-buffer pool backing the fused nn engine.

Minibatch training on the numpy substrate used to allocate dozens of
temporaries per batch (layer activations, masks, input gradients, optimizer
scratch).  A :class:`Workspace` turns each of those into a named, preallocated
buffer keyed by ``(name, shape, dtype)``: the first batch of a given shape
allocates, every later batch reuses.  Training loops typically see exactly two
shapes per tensor (the full batch and the smaller remainder batch), so the
pool stays tiny while the steady state allocates nothing.

Buffers are owned by whoever holds the workspace — a layer's forward output
is valid only until that layer's next forward call.  Code that hands arrays
to callers (model ``predict``/``generate`` surfaces) must copy at the
boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Named, shape-keyed pool of reusable numpy buffers."""

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict[tuple, np.ndarray] = {}

    def get(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Return the buffer for ``(name, shape, dtype)``, allocating once.

        The contents are unspecified on first use — callers must fully
        overwrite (``out=`` semantics), never read-modify-write.
        """
        if not isinstance(shape, tuple):
            shape = tuple(shape)
        key = (name, shape, np.dtype(dtype).char)
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`get`, but the buffer is zero-filled on every call."""
        buf = self.get(name, shape, dtype)
        buf[...] = 0.0
        return buf

    def clear(self) -> None:
        """Drop every buffer (e.g. after a dtype switch)."""
        self._bufs.clear()

    def __len__(self) -> int:
        return len(self._bufs)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._bufs)
