"""Weight initializers for the numpy neural-network substrate."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/sigmoid layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValidationError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He normal initialization, suited to ReLU-family layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValidationError(f"fan_in and fan_out must be positive, got {fan_in}, {fan_out}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros(shape) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


_INITIALIZERS = {"glorot_uniform": glorot_uniform, "he_normal": he_normal}


def get_initializer(name: str):
    """Look up an initializer by name; raises on unknown names."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        raise ValidationError(
            f"Unknown initializer {name!r}; available: {sorted(_INITIALIZERS)}"
        ) from None
