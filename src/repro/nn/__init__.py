"""From-scratch numpy neural-network substrate (replaces PyTorch offline).

Provides dense layers, batch norm, dropout, activations, a gradient-reversal
layer (for DANN), losses, SGD/Adam optimizers, and a Sequential container with
explicit backpropagation.  All of the paper's neural components — the
conditional GAN, the MLP/TNet classifiers, DANN, SCL, MatchNet and ProtoNet —
are built on this package.
"""

from repro.nn.initializers import get_initializer, glorot_uniform, he_normal, zeros
from repro.nn.layers import (
    BatchNorm1d,
    BlockActivation,
    Concat,
    Dense,
    Dropout,
    GradientReversal,
    GumbelSoftmax,
    Layer,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import (
    BinaryCrossEntropy,
    Loss,
    MSELoss,
    SoftmaxCrossEntropy,
    softmax,
    supervised_contrastive_loss,
)
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.workspace import Workspace

__all__ = [
    "Adam",
    "BatchNorm1d",
    "BinaryCrossEntropy",
    "BlockActivation",
    "Concat",
    "Dense",
    "Dropout",
    "GradientReversal",
    "GumbelSoftmax",
    "Layer",
    "LeakyReLU",
    "Loss",
    "MSELoss",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "Tanh",
    "Workspace",
    "get_initializer",
    "glorot_uniform",
    "he_normal",
    "iterate_minibatches",
    "softmax",
    "supervised_contrastive_loss",
    "zeros",
]
