"""Loss functions for the numpy neural-network substrate (fused engine).

Each loss exposes ``forward(prediction, target) -> float`` and
``backward() -> np.ndarray`` returning the gradient w.r.t. the prediction,
already divided by the batch size so optimizers see mean gradients.

Like the layers, losses keep shape-keyed workspace buffers: after the first
batch of a given shape, ``forward``/``backward`` allocate nothing, and the
float64 results are bit-identical to the pre-fusion forms (same ufuncs, same
operation order).  The array returned by ``backward`` is owned by the loss
and valid until its next ``forward`` call.
"""

from __future__ import annotations

import numpy as np

from repro.nn.workspace import Workspace
from repro.utils.errors import ValidationError

_EPS = 1e-12


class Loss:
    """Base class for losses."""

    def __init__(self) -> None:
        self._ws = Workspace()

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)


class MSELoss(Loss):
    """Mean squared error over all elements."""

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        if prediction.shape != target.shape:
            raise ValidationError(
                f"MSE shapes differ: {prediction.shape} vs {target.shape}"
            )
        diff = self._ws.get("diff", prediction.shape, np.result_type(prediction, target))
        np.subtract(prediction, target, out=diff)
        self._diff = diff
        sq = self._ws.get("sq", diff.shape, diff.dtype)
        np.square(diff, out=sq)
        return float(np.mean(sq))

    def backward(self) -> np.ndarray:
        diff = self._diff
        grad = self._ws.get("grad", diff.shape, diff.dtype)
        np.multiply(2.0, diff, out=grad)
        grad /= diff.size
        return grad


class BinaryCrossEntropy(Loss):
    """BCE on probabilities in (0, 1), as produced by a sigmoid output layer.

    Matches the discriminator objective of Eq. (8) in the paper and the
    non-saturating generator objective of Eq. (9) when the target is all-ones.
    """

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        if prediction.shape != target.shape:
            raise ValidationError(
                f"BCE shapes differ: {prediction.shape} vs {target.shape}"
            )
        dt = np.result_type(prediction, target)
        p = self._ws.get("p", prediction.shape, dt)
        np.clip(prediction, _EPS, 1.0 - _EPS, out=p)
        self._p, self._t = p, target
        # target * log(p) + (1 - target) * log(1 - p), kept in that order
        a = self._ws.get("a", p.shape, dt)
        b = self._ws.get("b", p.shape, dt)
        c = self._ws.get("c", p.shape, dt)
        np.log(p, out=a)
        np.multiply(target, a, out=a)
        np.subtract(1.0, p, out=b)
        np.log(b, out=b)
        np.subtract(1.0, target, out=c)
        np.multiply(c, b, out=b)
        np.add(a, b, out=a)
        return float(-np.mean(a))

    def backward(self) -> np.ndarray:
        p, t = self._p, self._t
        grad = self._ws.get("grad", p.shape, p.dtype)
        tmp = self._ws.get("tmp", p.shape, p.dtype)
        np.subtract(p, t, out=grad)
        np.subtract(1.0, p, out=tmp)
        np.multiply(p, tmp, out=tmp)
        np.divide(grad, tmp, out=grad)
        grad /= p.size
        return grad


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on logits, targets as one-hot rows.

    ``backward`` returns the well-known ``(softmax - onehot) / batch`` form,
    keeping the classifier's output layer linear (no separate softmax layer).
    """

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        if prediction.shape != target.shape:
            raise ValidationError(
                f"Cross-entropy shapes differ: {prediction.shape} vs {target.shape}"
            )
        dt = np.result_type(prediction, target)
        row = self._ws.get("row", (prediction.shape[0], 1), dt)
        np.max(prediction, axis=1, keepdims=True, out=row)
        z = self._ws.get("z", prediction.shape, dt)
        np.subtract(prediction, row, out=z)
        probs = self._ws.get("probs", z.shape, dt)
        np.exp(z, out=probs)
        np.sum(probs, axis=1, keepdims=True, out=row)
        logp = self._ws.get("logp", z.shape, dt)
        np.log(row, out=self._ws.get("logsum", row.shape, dt))
        np.subtract(z, self._ws.get("logsum", row.shape, dt), out=logp)
        np.divide(probs, row, out=probs)
        self._probs = probs
        self._t = target
        np.multiply(target, logp, out=logp)
        per_row = self._ws.get("per_row", (z.shape[0],), dt)
        np.sum(logp, axis=1, out=per_row)
        return float(-np.mean(per_row))

    def backward(self) -> np.ndarray:
        grad = self._ws.get("grad", self._probs.shape, self._probs.dtype)
        np.subtract(self._probs, self._t, out=grad)
        grad /= self._t.shape[0]
        return grad

    @property
    def probabilities(self) -> np.ndarray:
        """Softmax probabilities from the most recent forward pass."""
        return self._probs


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = z - z.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def supervised_contrastive_loss(
    embeddings: np.ndarray, labels: np.ndarray, *, temperature: float = 0.1
) -> tuple[float, np.ndarray]:
    """Supervised contrastive loss (Khosla et al. 2020) with analytic gradient.

    Used by the SCL baseline.  Embeddings are L2-normalized internally; the
    returned gradient is w.r.t. the *raw* embeddings, chaining through the
    normalization.

    Returns
    -------
    (loss, grad):
        Scalar loss and gradient array shaped like ``embeddings``.
    """
    if embeddings.ndim != 2:
        raise ValidationError("embeddings must be 2-D")
    n = embeddings.shape[0]
    if n != labels.shape[0]:
        raise ValidationError("embeddings and labels length mismatch")
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True) + _EPS
    z = embeddings / norms

    sim = z @ z.T / temperature
    np.fill_diagonal(sim, -np.inf)
    # log-softmax over each row excluding self
    row_max = sim.max(axis=1, keepdims=True)
    exp = np.exp(sim - row_max)
    denom = exp.sum(axis=1, keepdims=True)
    log_prob = sim - row_max - np.log(denom + _EPS)
    prob = exp / (denom + _EPS)

    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    pos_counts = same.sum(axis=1)
    valid = pos_counts > 0
    if not np.any(valid):
        return 0.0, np.zeros_like(embeddings)

    loss = 0.0
    grad_z = np.zeros_like(z)
    # dL/d sim[i, j] accumulated, then chained to z.
    dsim = np.zeros((n, n))
    for i in np.where(valid)[0]:
        pos = np.where(same[i])[0]
        loss -= log_prob[i, pos].mean()
        # d(-mean_p log_prob[i,p]) / d sim[i,j] = prob[i,j] - 1{j in pos}/|pos|
        dsim[i] += prob[i]
        dsim[i, pos] -= 1.0 / len(pos)
    loss /= valid.sum()
    dsim /= valid.sum()
    dsim[~np.isfinite(dsim)] = 0.0

    # sim = z z^T / T  (diagonal excluded; dsim diagonal already ~0)
    np.fill_diagonal(dsim, 0.0)
    grad_z = (dsim @ z + dsim.T @ z) / temperature

    # chain through z = e / ||e||
    dot = np.sum(grad_z * z, axis=1, keepdims=True)
    grad_e = (grad_z - z * dot) / norms
    return float(loss), grad_e
