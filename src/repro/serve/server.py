"""Stdlib HTTP front for the serving daemon.

Wire format (JSON over HTTP/1.1, documented in DESIGN.md):

``POST /v1/score/<tenant>``
    Request body ``{"x": [[...row...], ...]}`` (one or more feature rows).
    Response ``200`` with ``{"tenant", "seq", "rows", "proba", "labels"}``
    — ``seq`` is the tenant-local admission number (per-tenant scoring
    order), ``proba`` the class-probability rows, ``labels`` the argmax
    class labels.  Errors: ``404`` unknown tenant, ``400`` malformed body
    or bad shape (including a request larger than the micro-batch
    capacity), ``503`` while shutting down, ``500`` anything else.

``POST /v1/admin/rollback/<tenant>`` / ``POST /v1/admin/promote/<tenant>``
    One-command lifecycle admin over the daemon's artifact lineage:
    rollback flips the active pointer back to the previous version,
    promote activates the latest candidate/shadow version.  Response
    ``200`` with ``{"tenant", "action", "active", "generation", "file"}``.
    Errors: ``409`` nothing to roll back / no candidate, ``400`` other
    lineage errors (including ``manage_lineage=False``).

``GET /v1/tenants``
    ``{"root", "known": [...], "loaded": {...}}`` — every bundle under
    the artifact root plus per-entry cache stats for hot tenants.

``GET /v1/stats``
    Daemon counters: batcher (batches, coalescing fill) and cache
    (hits/misses/evictions/reloads) statistics.

``GET /healthz``
    ``{"status": "ok"}`` liveness probe.

``GET /metrics``
    Prometheus text-format 0.0.4 exposition of the live registry (same
    rendering as ``repro.obs.exporters``).

The server is a daemon-threaded ``ThreadingHTTPServer``: request handler
threads block on the micro-batcher's :class:`PendingRequest` events while
the single scorer thread does the numpy work, so concurrent clients
coalesce naturally.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.obs.logging import get_logger
from repro.utils.errors import ArtifactError, ValidationError

__all__ = ["DaemonHTTPServer"]

#: refuse request bodies larger than this many bytes (64 MiB)
MAX_BODY_BYTES = 64 * 1024 * 1024

logger = get_logger("repro.serve.server")


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning daemon's batcher/cache."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self):
        return self.server.serve_daemon

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif path == "/v1/tenants":
            cache = self.daemon.cache
            stats = cache.stats()
            self._send_json(200, {
                "root": str(cache.root),
                "known": cache.known_tenants(),
                "loaded": stats["loaded"],
            })
        elif path == "/v1/stats":
            self._send_json(200, self.daemon.stats())
        elif path in ("/metrics", "/"):
            from repro.obs.exporters.prometheus import (
                CONTENT_TYPE,
                render_prometheus,
            )

            body = render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_error_json(404, f"no route for GET {path}")

    def _do_admin(self, action: str, tenant: str) -> None:
        """Lifecycle admin: promote / rollback via the daemon's lineage."""
        try:
            if action == "rollback":
                version = self.daemon.rollback(tenant)
            else:
                version = self.daemon.promote(tenant)
        except (ArtifactError, ValidationError) as exc:
            message = str(exc)
            status = 409 if ("no previous" in message
                             or "no candidate" in message) else 400
            self._send_error_json(status, message)
            return
        except Exception as exc:  # noqa: BLE001 — handler must answer
            logger.error("admin %s failed: %s", action, exc)
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        self._send_json(200, {
            "tenant": tenant,
            "action": action,
            "active": version.content_hash,
            "generation": version.generation,
            "file": version.file,
        })

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        for action in ("rollback", "promote"):
            prefix = f"/v1/admin/{action}/"
            if path.startswith(prefix):
                self._do_admin(action, path[len(prefix):])
                return
        if not path.startswith("/v1/score/"):
            self._send_error_json(404, f"no route for POST {path}")
            return
        tenant = path[len("/v1/score/"):]
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0:
                raise ValidationError("empty request body")
            if length > MAX_BODY_BYTES:
                raise ValidationError(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                )
            try:
                payload = json.loads(self.rfile.read(length))
            except (ValueError, UnicodeDecodeError) as exc:
                raise ValidationError(f"request body is not JSON: {exc}")
            if not isinstance(payload, dict) or "x" not in payload:
                raise ValidationError('request JSON must carry an "x" key')
            try:
                X = np.asarray(payload["x"], dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise ValidationError(f'"x" is not a numeric matrix: {exc}')
            pending = self.daemon.submit(tenant, X)
            proba = pending.result(timeout=self.daemon.config.request_timeout)
        except ArtifactError as exc:
            message = str(exc)
            status = 404 if "no artifact file" in message else 400
            self._send_error_json(status, message)
            return
        except ValidationError as exc:
            status = 503 if "stopped" in str(exc) else 400
            self._send_error_json(status, str(exc))
            return
        except TimeoutError as exc:
            self._send_error_json(504, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 — handler must answer
            logger.error("score request failed: %s", exc)
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        codes = np.argmax(proba, axis=1)
        plan = self.daemon.cache.get(tenant).plan
        classes = getattr(plan.model, "classes_", None)
        labels = classes[codes] if classes is not None else codes
        self._send_json(200, {
            "tenant": tenant,
            "seq": pending.seq,
            "rows": int(proba.shape[0]),
            "proba": proba.tolist(),
            "labels": np.asarray(labels).tolist(),
        })

    def log_message(self, fmt: str, *args) -> None:  # keep requests off stderr
        logger.debug("http %s", fmt % args)


class DaemonHTTPServer:
    """Background HTTP endpoint bound to a :class:`ServeDaemon`.

    ``port=0`` (the default) binds an ephemeral port; read :attr:`port` /
    :attr:`url` after :meth:`start`.
    """

    def __init__(self, daemon, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self._daemon = daemon
        self.host = host
        self._requested_port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "DaemonHTTPServer":
        if self._server is not None:
            raise ValidationError("daemon HTTP server already started")
        server = ThreadingHTTPServer((self.host, self._requested_port),
                                     _Handler)
        server.daemon_threads = True
        server.serve_daemon = self._daemon
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "DaemonHTTPServer":
        return self.start() if not self.running else self

    def __exit__(self, *exc) -> None:
        self.stop()
