"""Tenant registry: LRU cache of compiled plans with validated hot reload.

The daemon serves many tenants — one ``(domain, target)`` adapter artifact
each, the paper's deployment shape — out of a directory of versioned
``.npz`` bundles (``<root>/<tenant>.npz``, the ``ArtifactStore`` layout).
:class:`PlanCache` keeps at most ``capacity`` tenants hot: each entry is a
loaded artifact compiled into an :class:`~repro.serve.plan.InferencePlan`
wrapped in a fixed-capacity :class:`~repro.serve.batcher.PaddedExecutor`.

Reload semantics:

- **Load and reload always validate.**  Every (re)load goes through
  :func:`repro.core.artifacts.load_artifact`, which recomputes the sha256
  content hash over all array payloads and rejects a bundle whose hash
  disagrees with its manifest — a half-written or tampered hot swap never
  reaches the scoring path.
- **Hot reload is stat-triggered.**  Each cache hit re-stats the bundle;
  a changed ``(mtime_ns, size)`` evicts the stale entry and reloads (and
  re-validates) from disk, so publishing a new artifact version is just an
  atomic file replace (or a lineage pointer flip).
- **The RNG stream survives eviction.**  A compiled plan's noise stream
  starts from the RNG state saved in the artifact and its position (total
  standard-normal values drawn) is tracked on the plan.  When an entry is
  dropped — LRU eviction, explicit invalidation, or a deleted bundle —
  the cache remembers ``(content_hash, position)``; reloading the *same*
  bundle fast-forwards the fresh plan to that position, so evict-reload
  mid-stream is bit-identical to never evicting.  A changed content hash
  (a genuinely new artifact version, including a lineage rollback) resets
  the stream to the new artifact's saved state — which is exactly what
  makes rollback restore pre-promotion scoring bit for bit.

The cache also carries per-tenant **shadow state**: a second compiled
plan (the lineage's candidate version) scored concurrently with the
incumbent by the micro-batcher, with divergence folded into a
:class:`~repro.adapt.shadow.ShadowEvaluator` until it reaches a
promote/abort verdict.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import get_metrics
from repro.serve.batcher import DEFAULT_CAPACITY, PaddedExecutor
from repro.serve.plan import fast_forward_rng
from repro.utils.errors import ArtifactError

__all__ = ["PlanCache", "ShadowState", "TenantEntry"]

#: tenant names are path components; keep them boring and traversal-proof
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class TenantEntry:
    """One hot tenant: compiled plan + executor + load-time metadata."""

    tenant: str
    path: Path
    plan: object
    executor: PaddedExecutor
    manifest: dict
    mtime_ns: int
    size: int
    loaded_at: float
    hits: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def content_hash(self) -> str | None:
        return self.manifest.get("content_hash")


@dataclass
class ShadowState:
    """One tenant's live shadow evaluation: candidate entry + evaluator."""

    tenant: str
    content_hash: str
    entry: TenantEntry
    evaluator: object
    on_verdict: object | None = None
    verdict: str | None = None
    errors: int = 0


class PlanCache:
    """Bounded LRU of compiled tenant plans over an artifact directory.

    Parameters
    ----------
    root:
        Directory of ``<tenant>.npz`` artifact bundles.
    capacity:
        Maximum number of tenants kept hot; the least-recently-used entry
        is evicted on overflow.
    n_draws:
        Monte-Carlo draws per sample for every compiled plan.
    micro_batch_rows:
        Fixed row capacity of each tenant's :class:`PaddedExecutor` (and
        therefore the daemon's maximum micro-batch size).
    """

    def __init__(self, root, *, capacity: int = 8, n_draws: int = 1,
                 micro_batch_rows: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ArtifactError("cache capacity must be >= 1")
        self.root = Path(root)
        self.capacity = int(capacity)
        self.n_draws = int(n_draws)
        self.micro_batch_rows = int(micro_batch_rows)
        self._entries: OrderedDict[str, TenantEntry] = OrderedDict()
        #: remembered noise-stream positions of dropped entries:
        #: tenant → (content_hash, values drawn); same-hash reloads resume
        self._rng_positions: dict[str, tuple[str | None, int]] = {}
        self._shadows: dict[str, ShadowState] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.reloads = 0
        self.rng_fast_forwards = 0

    # -- name / path handling ------------------------------------------------

    def path_for(self, tenant: str) -> Path:
        """The bundle path a tenant name resolves to (validated)."""
        if not _TENANT_NAME.match(tenant or ""):
            raise ArtifactError(
                f"invalid tenant name {tenant!r} (letters, digits, '._-' "
                f"only, must not start with a separator)"
            )
        return self.root / f"{tenant}.npz"

    def known_tenants(self) -> list[str]:
        """Every tenant with a bundle under ``root`` (loaded or not)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.npz")
                      if _TENANT_NAME.match(p.stem))

    # -- cache ---------------------------------------------------------------

    def get(self, tenant: str) -> TenantEntry:
        """The hot entry for ``tenant`` — loading, reloading or evicting."""
        path = self.path_for(tenant)
        with self._lock:
            entry = self._entries.get(tenant)
            registry = get_metrics()
            if entry is not None:
                try:
                    stat = path.stat()
                except OSError:
                    # bundle deleted out from under us: drop and report
                    self._remember_rng(entry)
                    del self._entries[tenant]
                    self._publish_gauges(registry)
                    raise ArtifactError(f"no artifact file at {path}") from None
                if (stat.st_mtime_ns, stat.st_size) == (entry.mtime_ns,
                                                        entry.size):
                    entry.hits += 1
                    self.hits += 1
                    self._entries.move_to_end(tenant)
                    if registry.enabled:
                        registry.counter("daemon.cache_hits_total").inc()
                    return entry
                # stat changed: sha256-validated reload through load_artifact
                self._remember_rng(entry)
                del self._entries[tenant]
                self.reloads += 1
                if registry.enabled:
                    registry.counter("daemon.cache_reloads_total").inc()
            else:
                self.misses += 1
                if registry.enabled:
                    registry.counter("daemon.cache_misses_total").inc()
            entry = self._load(tenant, path)
            self._entries[tenant] = entry
            self._entries.move_to_end(tenant)
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                self._remember_rng(evicted)
                self.evictions += 1
                if registry.enabled:
                    registry.counter("daemon.cache_evictions_total").inc()
            self._publish_gauges(registry)
            return entry

    def _remember_rng(self, entry: TenantEntry) -> None:
        """Record a dropped entry's noise-stream position for resumption."""
        self._rng_positions[entry.tenant] = (
            entry.content_hash, int(getattr(entry.plan, "rng_draws", 0))
        )

    def _load(self, tenant: str, path: Path, *,
              resume_rng: bool = True) -> TenantEntry:
        from repro.serve.runtime import load_plan

        plan, loaded = load_plan(path, n_draws=self.n_draws)
        if resume_rng:
            stored = self._rng_positions.get(tenant)
            if stored is not None:
                stored_hash, draws = stored
                if (stored_hash is not None
                        and stored_hash == loaded.manifest.get("content_hash")):
                    if draws > 0:
                        # same bundle back in the cache: resume its noise
                        # stream where the dropped entry left off
                        fast_forward_rng(plan, draws)
                        self.rng_fast_forwards += 1
                        registry = get_metrics()
                        if registry.enabled:
                            registry.counter(
                                "daemon.rng_fast_forwards_total"
                            ).inc()
                else:
                    # a different artifact version: its stream starts fresh
                    del self._rng_positions[tenant]
        stat = path.stat()
        return TenantEntry(
            tenant=tenant,
            path=path,
            plan=plan,
            executor=PaddedExecutor(plan, capacity=self.micro_batch_rows),
            manifest=loaded.manifest,
            mtime_ns=stat.st_mtime_ns,
            size=stat.st_size,
            loaded_at=time.time(),
        )

    def _publish_gauges(self, registry) -> None:
        if registry.enabled:
            registry.gauge("daemon.tenants_loaded").set(len(self._entries))

    def invalidate(self, tenant: str | None = None) -> None:
        """Drop one tenant (or all) from the cache; next access reloads.

        The dropped entries' noise-stream positions are remembered, so
        reloading an unchanged bundle resumes its stream (see module docs).
        """
        with self._lock:
            if tenant is None:
                for entry in self._entries.values():
                    self._remember_rng(entry)
                self._entries.clear()
            else:
                entry = self._entries.pop(tenant, None)
                if entry is not None:
                    self._remember_rng(entry)
            self._publish_gauges(get_metrics())

    # -- shadow mode ---------------------------------------------------------

    def start_shadow(self, tenant: str, path, content_hash: str, *,
                     evaluator, on_verdict=None) -> ShadowState:
        """Load a candidate bundle for concurrent shadow scoring.

        The micro-batcher scores every ``tenant`` batch through the shadow
        entry's executor after the incumbent's and folds both outputs into
        ``evaluator`` (a :class:`~repro.adapt.shadow.ShadowEvaluator`).
        ``on_verdict(state)`` fires once, from the scorer thread, when the
        evaluator reaches a verdict.
        """
        self.path_for(tenant)  # validates the tenant name
        path = Path(path)
        with self._lock:
            if tenant in self._shadows:
                raise ArtifactError(
                    f"tenant {tenant!r} already has a shadow candidate"
                )
            entry = self._load(tenant, path, resume_rng=False)
            if content_hash and entry.content_hash != content_hash:
                raise ArtifactError(
                    f"shadow candidate hash mismatch for {tenant!r}: "
                    f"expected {content_hash}, loaded {entry.content_hash}"
                )
            state = ShadowState(
                tenant=tenant,
                content_hash=entry.content_hash,
                entry=entry,
                evaluator=evaluator,
                on_verdict=on_verdict,
            )
            self._shadows[tenant] = state
            return state

    def shadow_for(self, tenant: str) -> ShadowState | None:
        with self._lock:
            return self._shadows.get(tenant)

    def stop_shadow(self, tenant: str) -> ShadowState | None:
        """Detach (and return) a tenant's shadow state, if any."""
        with self._lock:
            return self._shadows.pop(tenant, None)

    def loaded_tenants(self) -> list[str]:
        """Hot tenants in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            loaded = {
                name: {
                    "hits": entry.hits,
                    "content_hash": entry.content_hash,
                    "loaded_at": entry.loaded_at,
                    "schema_version": entry.manifest.get("schema_version"),
                    "rng_draws": int(getattr(entry.plan, "rng_draws", 0)),
                }
                for name, entry in self._entries.items()
            }
            rng_positions = {
                tenant: {"content_hash": stored[0], "rng_draws": stored[1]}
                for tenant, stored in self._rng_positions.items()
            }
            shadows = {
                tenant: {
                    "content_hash": state.content_hash,
                    "verdict": state.verdict,
                    "errors": state.errors,
                    **(state.evaluator.stats()
                       if hasattr(state.evaluator, "stats") else {}),
                }
                for tenant, state in self._shadows.items()
            }
        return {
            "capacity": self.capacity,
            "micro_batch_rows": self.micro_batch_rows,
            "n_draws": self.n_draws,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "reloads": self.reloads,
            "rng_fast_forwards": self.rng_fast_forwards,
            "rng_positions": rng_positions,
            "loaded": loaded,
            "shadows": shadows,
        }
