"""Tenant registry: LRU cache of compiled plans with validated hot reload.

The daemon serves many tenants — one ``(domain, target)`` adapter artifact
each, the paper's deployment shape — out of a directory of versioned
``.npz`` bundles (``<root>/<tenant>.npz``, the ``ArtifactStore`` layout).
:class:`PlanCache` keeps at most ``capacity`` tenants hot: each entry is a
loaded artifact compiled into an :class:`~repro.serve.plan.InferencePlan`
wrapped in a fixed-capacity :class:`~repro.serve.batcher.PaddedExecutor`.

Reload semantics:

- **Load and reload always validate.**  Every (re)load goes through
  :func:`repro.core.artifacts.load_artifact`, which recomputes the sha256
  content hash over all array payloads and rejects a bundle whose hash
  disagrees with its manifest — a half-written or tampered hot swap never
  reaches the scoring path.
- **Hot reload is stat-triggered.**  Each cache hit re-stats the bundle;
  a changed ``(mtime_ns, size)`` evicts the stale entry and reloads (and
  re-validates) from disk, so publishing a new artifact version is just an
  atomic file replace.
- **Eviction (and reload) resets the RNG stream.**  A compiled plan's
  noise stream starts from the RNG state saved in the artifact; evicting a
  tenant and loading it again replays from that saved state.  Scoring is
  therefore deterministic per cache generation, not across evictions —
  the micro-batch equivalence tests pin down both behaviours.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import get_metrics
from repro.serve.batcher import DEFAULT_CAPACITY, PaddedExecutor
from repro.utils.errors import ArtifactError

__all__ = ["PlanCache", "TenantEntry"]

#: tenant names are path components; keep them boring and traversal-proof
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class TenantEntry:
    """One hot tenant: compiled plan + executor + load-time metadata."""

    tenant: str
    path: Path
    plan: object
    executor: PaddedExecutor
    manifest: dict
    mtime_ns: int
    size: int
    loaded_at: float
    hits: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def content_hash(self) -> str | None:
        return self.manifest.get("content_hash")


class PlanCache:
    """Bounded LRU of compiled tenant plans over an artifact directory.

    Parameters
    ----------
    root:
        Directory of ``<tenant>.npz`` artifact bundles.
    capacity:
        Maximum number of tenants kept hot; the least-recently-used entry
        is evicted on overflow.
    n_draws:
        Monte-Carlo draws per sample for every compiled plan.
    micro_batch_rows:
        Fixed row capacity of each tenant's :class:`PaddedExecutor` (and
        therefore the daemon's maximum micro-batch size).
    """

    def __init__(self, root, *, capacity: int = 8, n_draws: int = 1,
                 micro_batch_rows: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ArtifactError("cache capacity must be >= 1")
        self.root = Path(root)
        self.capacity = int(capacity)
        self.n_draws = int(n_draws)
        self.micro_batch_rows = int(micro_batch_rows)
        self._entries: OrderedDict[str, TenantEntry] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.reloads = 0

    # -- name / path handling ------------------------------------------------

    def path_for(self, tenant: str) -> Path:
        """The bundle path a tenant name resolves to (validated)."""
        if not _TENANT_NAME.match(tenant or ""):
            raise ArtifactError(
                f"invalid tenant name {tenant!r} (letters, digits, '._-' "
                f"only, must not start with a separator)"
            )
        return self.root / f"{tenant}.npz"

    def known_tenants(self) -> list[str]:
        """Every tenant with a bundle under ``root`` (loaded or not)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.npz")
                      if _TENANT_NAME.match(p.stem))

    # -- cache ---------------------------------------------------------------

    def get(self, tenant: str) -> TenantEntry:
        """The hot entry for ``tenant`` — loading, reloading or evicting."""
        path = self.path_for(tenant)
        with self._lock:
            entry = self._entries.get(tenant)
            registry = get_metrics()
            if entry is not None:
                try:
                    stat = path.stat()
                except OSError:
                    # bundle deleted out from under us: drop and report
                    del self._entries[tenant]
                    self._publish_gauges(registry)
                    raise ArtifactError(f"no artifact file at {path}") from None
                if (stat.st_mtime_ns, stat.st_size) == (entry.mtime_ns,
                                                        entry.size):
                    entry.hits += 1
                    self.hits += 1
                    self._entries.move_to_end(tenant)
                    if registry.enabled:
                        registry.counter("daemon.cache_hits_total").inc()
                    return entry
                # stat changed: sha256-validated reload through load_artifact
                del self._entries[tenant]
                self.reloads += 1
                if registry.enabled:
                    registry.counter("daemon.cache_reloads_total").inc()
            else:
                self.misses += 1
                if registry.enabled:
                    registry.counter("daemon.cache_misses_total").inc()
            entry = self._load(tenant, path)
            self._entries[tenant] = entry
            self._entries.move_to_end(tenant)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self.evictions += 1
                if registry.enabled:
                    registry.counter("daemon.cache_evictions_total").inc()
            self._publish_gauges(registry)
            return entry

    def _load(self, tenant: str, path: Path) -> TenantEntry:
        from repro.serve.runtime import load_plan

        plan, loaded = load_plan(path, n_draws=self.n_draws)
        stat = path.stat()
        return TenantEntry(
            tenant=tenant,
            path=path,
            plan=plan,
            executor=PaddedExecutor(plan, capacity=self.micro_batch_rows),
            manifest=loaded.manifest,
            mtime_ns=stat.st_mtime_ns,
            size=stat.st_size,
            loaded_at=time.time(),
        )

    def _publish_gauges(self, registry) -> None:
        if registry.enabled:
            registry.gauge("daemon.tenants_loaded").set(len(self._entries))

    def invalidate(self, tenant: str | None = None) -> None:
        """Drop one tenant (or all) from the cache; next access reloads."""
        with self._lock:
            if tenant is None:
                self._entries.clear()
            else:
                self._entries.pop(tenant, None)
            self._publish_gauges(get_metrics())

    def loaded_tenants(self) -> list[str]:
        """Hot tenants in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        with self._lock:
            loaded = {
                name: {
                    "hits": entry.hits,
                    "content_hash": entry.content_hash,
                    "loaded_at": entry.loaded_at,
                    "schema_version": entry.manifest.get("schema_version"),
                }
                for name, entry in self._entries.items()
            }
        return {
            "capacity": self.capacity,
            "micro_batch_rows": self.micro_batch_rows,
            "n_draws": self.n_draws,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "reloads": self.reloads,
            "loaded": loaded,
        }
