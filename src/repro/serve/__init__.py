"""Serving layer: compiled inference plans, batch runtime, and the daemon."""

from repro.serve.batcher import MicroBatcher, PaddedExecutor, PendingRequest
from repro.serve.daemon import DaemonConfig, ServeDaemon, run_daemon
from repro.serve.plan import InferencePlan, clone_rng
from repro.serve.registry import PlanCache, TenantEntry
from repro.serve.runtime import (
    load_plan,
    read_input,
    run_serve,
    stage_summaries,
    write_output,
)
from repro.serve.server import DaemonHTTPServer

__all__ = [
    "DaemonConfig",
    "DaemonHTTPServer",
    "InferencePlan",
    "MicroBatcher",
    "PaddedExecutor",
    "PendingRequest",
    "PlanCache",
    "ServeDaemon",
    "TenantEntry",
    "clone_rng",
    "load_plan",
    "read_input",
    "run_daemon",
    "run_serve",
    "stage_summaries",
    "write_output",
]
