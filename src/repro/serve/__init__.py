"""Serving layer: compiled inference plans and the batch-scoring runtime."""

from repro.serve.plan import InferencePlan, clone_rng
from repro.serve.runtime import (
    load_plan,
    read_input,
    run_serve,
    stage_summaries,
    write_output,
)

__all__ = [
    "InferencePlan",
    "clone_rng",
    "load_plan",
    "read_input",
    "run_serve",
    "stage_summaries",
    "write_output",
]
