"""Compiled inference plans: the allocation-free serve path of a pipeline.

:meth:`FSGANPipeline.compile` flattens the pipeline's inference chain —
scale → split variant/invariant → batched MC generator forward → merge →
downstream ``predict_proba`` — into an :class:`InferencePlan` that replays
the exact ufunc sequence of the live pipeline into preallocated workspace
buffers.  At float64 the plan's probabilities are **bit-identical** to
``FSGANPipeline.predict_proba``; at float32 they match within the fused-path
tolerance contract (see EXPERIMENTS.md).

The plan owns a *clone* of the reconstruction model's RNG, snapshotted at
compile time, so serving never perturbs the pipeline's noise stream (and
vice versa): a plan compiled at state S produces the same draws the pipeline
would have produced from S.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gan.autoencoder import VanillaAutoencoder
from repro.gan.cgan import ConditionalGAN
from repro.gan.vae import ConditionalVAE
from repro.nn.workspace import Workspace
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, check_is_fitted

__all__ = ["InferencePlan", "clone_rng", "fast_forward_rng"]


def clone_rng(rng: np.random.Generator) -> np.random.Generator:
    """Independent Generator starting at ``rng``'s current state."""
    new = np.random.Generator(type(rng.bit_generator)())
    new.bit_generator.state = rng.bit_generator.state
    return new


def fast_forward_rng(plan: "InferencePlan", n_values: int) -> "InferencePlan":
    """Advance a freshly compiled plan's noise stream by ``n_values`` draws.

    ``Generator.standard_normal`` produces one sequential value stream:
    drawing N values in chunks yields the same values *and* final state as
    one N-value call, so discarding ``n_values`` draws lands the plan on
    exactly the state an uninterrupted plan would have reached.  The serve
    cache uses this to resume a tenant's stream after eviction or reload
    (see :class:`repro.serve.registry.PlanCache`).
    """
    remaining = int(n_values)
    if remaining < 0:
        raise ValidationError("cannot fast-forward a negative draw count")
    if remaining and plan._rng is None:
        raise ValidationError("plan has no RNG stream to fast-forward")
    if remaining:
        scratch = np.empty(min(remaining, 65536), dtype=np.float64)
        while remaining > 0:
            chunk = min(remaining, scratch.size)
            plan._rng.standard_normal(out=scratch[:chunk])
            remaining -= chunk
    plan.rng_draws = int(n_values)
    return plan


class InferencePlan:
    """Preallocated batch scorer compiled from a fitted :class:`FSGANPipeline`.

    Stage buffers live in a plan-owned :class:`Workspace`; after the first
    batch of a given size the plan allocates nothing but the downstream
    model's own output.  Build via :meth:`FSGANPipeline.compile`.
    """

    def __init__(self, pipeline, *, n_draws: int = 1) -> None:
        check_is_fitted(pipeline, "model_")
        if not hasattr(pipeline.model_, "predict_proba"):
            raise ValidationError("the downstream model has no predict_proba")
        if n_draws < 1:
            raise ValidationError("n_draws must be >= 1")
        self.n_draws = int(n_draws)
        self._ws = Workspace()

        scaler = pipeline.scaler_
        self._lo, self._hi = scaler.feature_range
        self._data_min = scaler.data_min_
        self._scale = scaler._scale
        self._constant = scaler._scale == 0.0
        self._any_constant = bool(np.any(self._constant))

        separator = pipeline.separator_
        self._inv_idx = np.ascontiguousarray(separator.invariant_indices_)
        self._var_idx = np.ascontiguousarray(separator.variant_indices_)
        self._n_features = int(separator.n_features_)
        self._n_inv = int(self._inv_idx.shape[0])
        self._n_var = int(self._var_idx.shape[0])

        self.model = pipeline.model_
        self.drift_tracker = None
        self._recon = pipeline.reconstructor_.model_
        rng = getattr(self._recon, "_rng", None)
        self._rng = clone_rng(rng) if rng is not None else None
        #: standard-normal values drawn from ``_rng`` since compile — the
        #: plan's position in the artifact's noise stream.  Because numpy's
        #: Generator produces normals as one sequential value stream, a
        #: fresh plan fast-forwarded by this count lands on the identical
        #: RNG state (see ``fast_forward_rng``), which is how the serve
        #: cache keeps eviction/reload bit-identical mid-stream.
        self.rng_draws = 0
        self.spec = pipeline.export_plan()

    # -- stages (each replays the live pipeline's exact ufunc sequence) ------

    def _scale_stage(self, X: np.ndarray) -> np.ndarray:
        ws = self._ws
        out = ws.get("scaled", X.shape)
        # same op order as MinMaxScaler.transform: lo + (X - min) * scale
        np.subtract(X, self._data_min, out=out)
        np.multiply(out, self._scale, out=out)
        np.add(out, self._lo, out=out)
        if self._any_constant:
            out[:, self._constant] = (self._lo + self._hi) / 2.0
        return out

    def _split_stage(self, Xs: np.ndarray) -> np.ndarray:
        inv = self._ws.get("inv", (Xs.shape[0], self._n_inv))
        np.take(Xs, self._inv_idx, axis=1, out=inv)
        return inv

    def _reconstruct_stage(self, X_inv: np.ndarray) -> np.ndarray:
        recon, ws, n_draws = self._recon, self._ws, self.n_draws
        n = X_inv.shape[0]
        if isinstance(recon, ConditionalGAN):
            dt = getattr(recon, "_dtype", np.dtype(np.float64))
            g_in = ws.get("g_in", (n_draws * n, self._n_inv + recon.noise_dim), dt)
            z = ws.get("z", (n_draws * n, recon.noise_dim), np.float64)
            self._rng.standard_normal(out=z)
            self.rng_draws += z.size
            inv_rows = g_in[:, : self._n_inv]
            for d in range(n_draws):
                inv_rows[d * n : (d + 1) * n] = X_inv
            g_in[:, self._n_inv :] = z
            out = recon.generator_.forward(g_in, training=False)
        elif isinstance(recon, ConditionalVAE):
            dt = getattr(recon, "_dtype", np.dtype(np.float64))
            dec_in = ws.get("dec_in", (n_draws * n, self._n_inv + recon.latent_dim), dt)
            z = ws.get("z", (n_draws * n, recon.latent_dim), np.float64)
            self._rng.standard_normal(out=z)
            self.rng_draws += z.size
            inv_rows = dec_in[:, : self._n_inv]
            for d in range(n_draws):
                inv_rows[d * n : (d + 1) * n] = X_inv
            dec_in[:, self._n_inv :] = z
            out = recon.decoder_.forward(dec_in, training=False)
        elif isinstance(recon, VanillaAutoencoder):
            out = recon.network_.forward(X_inv, training=False)
            var_hat = ws.get("var_hat", (n, self._n_var))
            var_hat[...] = out
            return var_hat
        else:  # identity reconstructor (empty variant block)
            return ws.zeros("var_hat", (n, self._n_var))
        draws = out.reshape(n_draws, n, self._n_var)
        # sequential accumulate — same add order as ConditionalGAN.generate
        total = ws.zeros("total", (n, self._n_var))
        for d in range(n_draws):
            total += draws[d]
        total /= n_draws
        return total

    def _merge_stage(self, X_inv: np.ndarray, X_var: np.ndarray) -> np.ndarray:
        merged = self._ws.get("merged", (X_inv.shape[0], self._n_features))
        merged[:, self._inv_idx] = X_inv
        merged[:, self._var_idx] = X_var
        return merged

    # -- public surface ------------------------------------------------------

    def attach_drift_tracker(self, tracker) -> "InferencePlan":
        """Stream every scaled batch into ``tracker`` (see ``repro.obs.drift``).

        The tracker scores the live input distribution against its
        reference (PSI/KS gauges, ``drift.alarm`` events).  Detach with
        ``attach_drift_tracker(None)``.
        """
        self.drift_tracker = tracker
        return self

    def transform(self, X) -> np.ndarray:
        """Source-like samples in scaled space (the pipeline's Eq. 11 path).

        Returns a workspace buffer, valid until the next call.
        """
        X = check_array(X)
        if X.shape[1] != self._n_features:
            raise ValidationError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        tracer = get_tracer()
        registry = get_metrics()
        if not registry.enabled:  # fast path: spans only
            with tracer.span("serve.scale", n_samples=X.shape[0]):
                Xs = self._scale_stage(X)
            if self.drift_tracker is not None:
                self.drift_tracker.update(Xs)
            with tracer.span("serve.split"):
                X_inv = self._split_stage(Xs)
            with tracer.span("serve.reconstruct", n_draws=self.n_draws):
                X_var = self._reconstruct_stage(X_inv)
            with tracer.span("serve.merge"):
                return self._merge_stage(X_inv, X_var)

        stage_seconds = registry.histogram  # labeled per-stage latencies
        t0 = time.perf_counter()
        with tracer.span("serve.scale", n_samples=X.shape[0]):
            Xs = self._scale_stage(X)
        t1 = time.perf_counter()
        stage_seconds("serve.stage_seconds", stage="scale").observe(t1 - t0)
        if self.drift_tracker is not None:
            self.drift_tracker.update(Xs)
            t1 = time.perf_counter()
        with tracer.span("serve.split"):
            X_inv = self._split_stage(Xs)
        t2 = time.perf_counter()
        stage_seconds("serve.stage_seconds", stage="split").observe(t2 - t1)
        with tracer.span("serve.reconstruct", n_draws=self.n_draws):
            X_var = self._reconstruct_stage(X_inv)
        t3 = time.perf_counter()
        stage_seconds("serve.stage_seconds", stage="generate").observe(t3 - t2)
        with tracer.span("serve.merge"):
            merged = self._merge_stage(X_inv, X_var)
        stage_seconds("serve.stage_seconds", stage="merge").observe(
            time.perf_counter() - t3
        )
        return merged

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities; bit-identical (float64) to the live pipeline."""
        registry = get_metrics()
        t0 = time.perf_counter() if registry.enabled else 0.0
        with get_tracer().span("serve.batch", n_samples=len(X)):
            merged = self.transform(X)
            t1 = time.perf_counter() if registry.enabled else 0.0
            with get_tracer().span("serve.predict"):
                proba = self.model.predict_proba(merged)
        if registry.enabled:
            now = time.perf_counter()
            registry.histogram("serve.stage_seconds", stage="predict").observe(
                now - t1
            )
            registry.counter("serve_batches").inc()
            registry.counter("serve_rows").inc(len(X))
            registry.histogram("serve.latency").observe(now - t0)
            registry.histogram("serve_batch_seconds").observe(now - t0)
        return proba

    def predict(self, X) -> np.ndarray:
        """Predicted labels (argmax of :meth:`predict_proba`)."""
        proba = self.predict_proba(X)
        codes = np.argmax(proba, axis=1)
        classes = getattr(self.model, "classes_", None)
        return classes[codes] if classes is not None else codes
