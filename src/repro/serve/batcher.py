"""Micro-batching: coalesce same-tenant requests into one padded execution.

Two pieces back the daemon's scoring plane:

:class:`PaddedExecutor`
    A fixed-capacity scorer wrapped around a compiled
    :class:`~repro.serve.plan.InferencePlan`.  Every execution — a single
    request or a coalesced micro-batch — runs the plan's stages at exactly
    ``capacity`` rows (zero-padded, results sliced back per request), and
    noise is drawn with one RNG call per request in admission order.  Both
    choices exist for one reason: **bit-identity across coalescing
    patterns**.  BLAS GEMM row results are *not* stable across batch sizes
    (an M=1 call can differ from the same row inside an M=64 call in the
    last ULP), but zero-padding to a fixed M is exact — a padded row can
    never perturb another row through elementwise ops, row-broadcast
    BatchNorm inference statistics, or row-wise matmuls.  Scoring requests
    ``[A, B]`` coalesced is therefore bit-identical to scoring ``[A]``
    then ``[B]``, whatever the sizes.

:class:`MicroBatcher`
    A thread-safe admission queue plus a single scorer thread.  Requests
    enqueue per tenant in FIFO order; the scorer coalesces the head of one
    tenant's queue into a micro-batch of at most ``capacity`` rows,
    optionally lingering ``max_wait`` seconds when it is otherwise idle,
    and scores it through the tenant's cached executor.  A single scorer
    keeps each tenant's RNG consumption deterministic: per-tenant scoring
    order equals per-tenant admission order (the ``seq`` number on every
    request), so a run can be replayed request-by-request bit for bit.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.gan.autoencoder import VanillaAutoencoder
from repro.gan.cgan import ConditionalGAN
from repro.gan.vae import ConditionalVAE
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError

__all__ = ["MicroBatcher", "PaddedExecutor", "PendingRequest"]

#: default fixed row capacity of a padded execution
DEFAULT_CAPACITY = 256


class PaddedExecutor:
    """Fixed-capacity micro-batch scorer over a compiled plan.

    Every :meth:`score` call runs the plan's stage chain at exactly
    ``capacity`` rows (generator stages at ``n_draws * capacity``), so the
    per-row results are a pure function of that row's input and its
    request's noise draws — independent of how requests were coalesced.
    """

    def __init__(self, plan, *, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValidationError("micro-batch capacity must be >= 1")
        self.plan = plan
        self.capacity = int(capacity)
        #: workspace view of the last execution's merged feature matrix
        #: (``last_rows`` live rows) — read by shadow scoring for per-feature
        #: divergence; valid until the next :meth:`score` call
        self.last_merged: np.ndarray | None = None
        self.last_rows = 0

    def check_request(self, X) -> np.ndarray:
        """Validate one request batch; returns a float64 C-order copy."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.ndim != 2 or X.shape[0] < 1:
            raise ValidationError(
                f"request batch must be 2-D with >= 1 row, got shape {X.shape}"
            )
        if X.shape[1] != self.plan._n_features:
            raise ValidationError(
                f"expected {self.plan._n_features} features, got {X.shape[1]}"
            )
        if X.shape[0] > self.capacity:
            raise ValidationError(
                f"request of {X.shape[0]} rows exceeds the micro-batch "
                f"capacity of {self.capacity}"
            )
        return X

    def score(self, segments) -> list[np.ndarray]:
        """Score a coalesced micro-batch; one proba array per segment.

        ``segments`` is a list of per-request row blocks (already
        validated via :meth:`check_request`) whose total row count must
        fit the capacity.  Noise is drawn per segment in list order, so
        the segmentation never changes any request's scores.
        """
        plan = self.plan
        sizes = [int(seg.shape[0]) for seg in segments]
        m = sum(sizes)
        if m == 0:
            return []
        if m > self.capacity:
            raise ValidationError(
                f"micro-batch of {m} rows exceeds capacity {self.capacity}"
            )
        capacity = self.capacity
        ws = plan._ws
        with get_tracer().span("daemon.micro_batch", rows=m,
                               requests=len(segments)):
            Xp = ws.get("mb_x", (capacity, plan._n_features))
            off = 0
            for seg, n in zip(segments, sizes):
                Xp[off:off + n] = seg
                off += n
            Xp[m:] = 0.0
            Xs = plan._scale_stage(Xp)
            if plan.drift_tracker is not None:
                plan.drift_tracker.update(Xs[:m])
            X_inv = plan._split_stage(Xs)
            X_var = self._reconstruct(X_inv, sizes, m)
            merged = plan._merge_stage(X_inv, X_var)
            self.last_merged = merged
            self.last_rows = m
            proba = plan.model.predict_proba(merged)
        out = []
        off = 0
        for n in sizes:
            out.append(proba[off:off + n].copy())
            off += n
        return out

    def _reconstruct(self, X_inv: np.ndarray, sizes: list[int],
                     m: int) -> np.ndarray:
        """Padded variant reconstruction with per-request noise draws."""
        plan = self.plan
        recon, ws, n_draws = plan._recon, plan._ws, plan.n_draws
        capacity = self.capacity
        if isinstance(recon, (ConditionalGAN, ConditionalVAE)):
            code_dim = (recon.noise_dim if isinstance(recon, ConditionalGAN)
                        else recon.latent_dim)
            network = (recon.generator_ if isinstance(recon, ConditionalGAN)
                       else recon.decoder_)
            dt = getattr(recon, "_dtype", np.dtype(np.float64))
            n_inv = plan._n_inv
            g_in = ws.get("mb_g_in", (n_draws * capacity, n_inv + code_dim), dt)
            z = ws.get("mb_z", (n_draws * capacity, code_dim), np.float64)
            off = 0
            for n in sizes:
                g_off = n_draws * off
                block = slice(g_off, g_off + n_draws * n)
                # one draw per request, in admission order — the exact RNG
                # consumption pattern of per-request scoring
                plan._rng.standard_normal(out=z[block])
                plan.rng_draws += z[block].size
                for d in range(n_draws):
                    g_in[g_off + d * n:g_off + (d + 1) * n, :n_inv] = (
                        X_inv[off:off + n]
                    )
                g_in[block, n_inv:] = z[block]
                off += n
            g_in[n_draws * m:] = 0.0
            out = network.forward(g_in, training=False)
            var_hat = ws.zeros("mb_var", (capacity, plan._n_var))
            off = 0
            for n in sizes:
                g_off = n_draws * off
                draws = out[g_off:g_off + n_draws * n].reshape(
                    n_draws, n, plan._n_var
                )
                total = var_hat[off:off + n]
                # sequential accumulate, same add order as the plain plan
                for d in range(n_draws):
                    total += draws[d]
                total /= n_draws
                off += n
            return var_hat
        if isinstance(recon, VanillaAutoencoder):
            out = recon.network_.forward(X_inv, training=False)
            var_hat = ws.get("mb_var", (capacity, plan._n_var))
            var_hat[...] = out
            return var_hat
        # identity reconstructor (empty variant block)
        return ws.zeros("mb_var", (capacity, plan._n_var))


class PendingRequest:
    """One enqueued request: waitable handle returned by ``submit``.

    ``seq`` is the tenant-local admission number — per-tenant scoring
    order always equals ``seq`` order, whatever the coalescing pattern.
    """

    __slots__ = ("tenant", "X", "seq", "enqueued", "proba", "error",
                 "_event")

    def __init__(self, tenant: str, X: np.ndarray, seq: int) -> None:
        self.tenant = tenant
        self.X = X
        self.seq = seq
        self.enqueued = time.perf_counter()
        self.proba: np.ndarray | None = None
        self.error: Exception | None = None
        self._event = threading.Event()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until scored; returns probabilities or re-raises the error."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request seq={self.seq} for tenant {self.tenant!r} "
                f"not scored within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.proba


class MicroBatcher:
    """Per-tenant FIFO queues drained by one coalescing scorer thread.

    Parameters
    ----------
    cache:
        A :class:`~repro.serve.registry.PlanCache`; tenants resolve to
        ``(plan, executor)`` entries through it (LRU + hot reload).
    max_wait:
        Linger budget in seconds: when the scorer picks up a lone request
        and no other tenant has work queued, it waits up to this long for
        same-tenant arrivals to coalesce with.  0 disables lingering.
    coalesce:
        False scores every request in its own (still padded) micro-batch —
        the daemon's per-request baseline mode, used by the sustained
        benchmark as the "before" side.
    """

    def __init__(self, cache, *, max_wait: float = 0.002,
                 coalesce: bool = True) -> None:
        if max_wait < 0:
            raise ValidationError("max_wait must be >= 0")
        self.cache = cache
        self.max_wait = float(max_wait)
        self.coalesce = bool(coalesce)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queues: dict[str, deque[PendingRequest]] = {}
        self._order: deque[str] = deque()
        self._seq: dict[str, int] = {}
        self._depth = 0
        self._stop = False
        self._thread: threading.Thread | None = None
        self.batches = 0
        self.requests = 0
        self.rows = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MicroBatcher":
        if self._thread is not None:
            raise ValidationError("batcher already started")
        self._stop = False
        self._thread = threading.Thread(
            target=self._loop, name="repro-micro-batcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain every queued request, then stop the scorer thread."""
        if self._thread is None:
            return
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "MicroBatcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- admission -----------------------------------------------------------

    def submit(self, tenant: str, X) -> PendingRequest:
        """Enqueue one request; returns a waitable :class:`PendingRequest`."""
        # validate rows/width against the tenant's plan up front, so the
        # caller gets the error synchronously (also loads the plan on the
        # first request for a tenant)
        entry = self.cache.get(tenant)
        X = entry.executor.check_request(X)
        with self._cond:
            if self._stop:
                raise ValidationError("batcher is stopped")
            seq = self._seq.get(tenant, 0)
            self._seq[tenant] = seq + 1
            pending = PendingRequest(tenant, X, seq)
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
            if not queue:
                self._order.append(tenant)
            queue.append(pending)
            self._depth += 1
            registry = get_metrics()
            if registry.enabled:
                registry.counter("daemon.requests_total", tenant=tenant).inc()
                registry.counter("daemon.rows_total", tenant=tenant).inc(
                    X.shape[0]
                )
                registry.gauge("daemon.queue_depth").set(self._depth)
            self._cond.notify()
        return pending

    def score(self, tenant: str, X, *, timeout: float | None = 30.0):
        """Convenience: submit and block for the probabilities."""
        return self.submit(tenant, X).result(timeout)

    # -- scorer loop ---------------------------------------------------------

    def _take_batch(self) -> list[PendingRequest] | None:
        """Pop the next micro-batch under the lock (None = stopped & drained)."""
        with self._cond:
            while True:
                while not self._order and not self._stop:
                    self._cond.wait()
                if not self._order:
                    return None  # stopping with nothing queued
                tenant = self._order.popleft()
                queue = self._queues[tenant]
                if queue:
                    break
                # stale entry: a submit during the idle linger re-added the
                # tenant, but the post-linger drain already took its work
            capacity = self.cache.micro_batch_rows
            batch = [queue.popleft()]
            rows = batch[0].X.shape[0]
            if self.coalesce:
                while queue and rows + queue[0].X.shape[0] <= capacity:
                    pending = queue.popleft()
                    rows += pending.X.shape[0]
                    batch.append(pending)
                if (len(self._order) == 0 and not queue and not self._stop
                        and self.max_wait > 0.0 and rows < capacity):
                    # idle linger: give same-tenant arrivals one chance to
                    # coalesce before paying a full padded execution
                    self._cond.wait(self.max_wait)
                    while queue and rows + queue[0].X.shape[0] <= capacity:
                        pending = queue.popleft()
                        rows += pending.X.shape[0]
                        batch.append(pending)
            if queue:
                self._order.append(tenant)
            self._depth -= len(batch)
            registry = get_metrics()
            if registry.enabled:
                registry.gauge("daemon.queue_depth").set(self._depth)
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            tenant = batch[0].tenant
            t0 = time.perf_counter()
            registry = get_metrics()
            try:
                entry = self.cache.get(tenant)
                probas = entry.executor.score([p.X for p in batch])
            except Exception as exc:  # noqa: BLE001 — scorer must not die
                registry.counter("daemon.errors_total").inc(len(batch))
                for pending in batch:
                    pending.error = exc
                    pending._event.set()
                continue
            shadow = self.cache.shadow_for(tenant) if hasattr(
                self.cache, "shadow_for") else None
            if shadow is not None and shadow.verdict is None:
                self._shadow_score(shadow, batch, probas, entry)
            now = time.perf_counter()
            rows = sum(p.X.shape[0] for p in batch)
            self.batches += 1
            self.requests += len(batch)
            self.rows += rows
            if registry.enabled:
                registry.counter("daemon.batches_total").inc()
                registry.histogram("daemon.batch_rows").observe(rows)
                registry.histogram("daemon.batch_requests").observe(len(batch))
                registry.histogram("daemon.batch_seconds").observe(now - t0)
                for pending in batch:
                    registry.histogram("daemon.queue_seconds").observe(
                        t0 - pending.enqueued
                    )
                    registry.histogram("daemon.request_seconds").observe(
                        now - pending.enqueued
                    )
            for pending, proba in zip(batch, probas):
                pending.proba = proba
                pending._event.set()

    def _shadow_score(self, shadow, batch, probas, entry) -> None:
        """Score the same micro-batch on the shadow candidate and compare.

        Runs after the incumbent's answers are computed but before they are
        delivered to waiters; the candidate's probabilities never leave
        this method — only divergence statistics do.  A shadow failure is
        contained: it counts as an error (three strikes aborts the shadow)
        and the incumbent's results flow on untouched.
        """
        try:
            segments = [p.X for p in batch]
            inc_plan = entry.plan
            inc_exec = entry.executor
            m = inc_exec.last_rows
            inc_var = np.array(
                inc_exec.last_merged[:m][:, inc_plan._var_idx], copy=True
            )
            cand_probas = shadow.entry.executor.score(segments)
            cand_plan = shadow.entry.plan
            cand_exec = shadow.entry.executor
            cand_var = cand_exec.last_merged[:m][:, cand_plan._var_idx]
            verdict = shadow.evaluator.observe(
                np.vstack(probas), np.vstack(cand_probas), inc_var, cand_var
            )
        except Exception:  # noqa: BLE001 — shadow must not break serving
            shadow.errors += 1
            get_metrics().counter("adapt.shadow.errors_total").inc()
            verdict = "abort" if shadow.errors >= 3 else None
        if verdict is not None:
            shadow.verdict = verdict
            if shadow.on_verdict is not None:
                try:
                    shadow.on_verdict(shadow)
                except Exception:  # noqa: BLE001
                    get_metrics().counter("adapt.shadow.errors_total").inc()

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            depth = self._depth
        return {
            "batches": self.batches,
            "requests": self.requests,
            "rows": self.rows,
            "queue_depth": depth,
            "mean_batch_rows": self.rows / self.batches if self.batches else 0.0,
            "mean_batch_requests": (
                self.requests / self.batches if self.batches else 0.0
            ),
            "coalesce": self.coalesce,
        }
