"""Serve runtime: load an artifact, compile its plan, score batches.

Backs the ``repro serve`` CLI subcommand: a saved
:class:`~repro.core.pipeline.FSGANPipeline` artifact is restored (no
training configuration needed), compiled into an
:class:`~repro.serve.plan.InferencePlan`, and run over an input batch read
from ``.npy`` / ``.npz`` / ``.csv``.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core.artifacts import load_artifact
from repro.core.pipeline import FSGANPipeline
from repro.obs.trace import get_tracer
from repro.utils.errors import ArtifactError

__all__ = ["load_plan", "read_input", "run_serve", "write_output"]


def load_plan(artifact_path, *, n_draws: int = 1):
    """Load a pipeline artifact and compile its inference plan."""
    loaded = load_artifact(artifact_path)
    pipeline = loaded.estimator
    if not isinstance(pipeline, FSGANPipeline):
        raise ArtifactError(
            f"serving requires an {FSGANPipeline._estimator_kind!r} artifact; "
            f"{artifact_path} holds {loaded.kind or type(pipeline).__name__!r}"
        )
    return pipeline.compile(n_draws=n_draws), loaded


def read_input(path) -> np.ndarray:
    """Read a feature batch from ``.npy``, ``.npz`` (key ``X``) or ``.csv``."""
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no input file at {path}")
    suffix = path.suffix.lower()
    if suffix == ".npy":
        X = np.load(path, allow_pickle=False)
    elif suffix == ".npz":
        data = np.load(path, allow_pickle=False)
        if "X" not in data.files:
            raise ArtifactError(f"{path} has no array named 'X' (found {data.files})")
        X = data["X"]
    elif suffix == ".csv":
        X = np.loadtxt(path, delimiter=",", ndmin=2)
    else:
        raise ArtifactError(f"unsupported input format {suffix!r} (npy/npz/csv)")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ArtifactError(f"input batch must be 2-D, got shape {X.shape}")
    return X


def write_output(path, *, proba: np.ndarray, labels: np.ndarray) -> Path:
    """Write scores to ``.npz`` (arrays) or ``.json`` (row-major lists)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix.lower() == ".json":
        import json

        path.write_text(
            json.dumps(
                {"proba": proba.tolist(), "labels": labels.tolist()}, indent=2
            )
            + "\n"
        )
    else:
        np.savez(path, proba=proba, labels=np.asarray(labels))
    return path


def run_serve(
    artifact_path,
    input_path,
    *,
    output_path=None,
    n_draws: int = 1,
) -> dict:
    """Score one batch through a compiled plan; returns a summary dict."""
    with get_tracer().span("serve.load", artifact=str(artifact_path)):
        plan, loaded = load_plan(artifact_path, n_draws=n_draws)
    X = read_input(input_path)
    t0 = time.perf_counter()
    proba = plan.predict_proba(X)
    seconds = time.perf_counter() - t0
    codes = np.argmax(proba, axis=1)
    classes = getattr(plan.model, "classes_", None)
    labels = classes[codes] if classes is not None else codes
    summary = {
        "artifact": str(artifact_path),
        "kind": loaded.kind,
        "n_samples": int(X.shape[0]),
        "n_features": int(X.shape[1]),
        "n_draws": int(n_draws),
        "seconds": seconds,
        "rows_per_second": float(X.shape[0] / seconds) if seconds > 0 else float("inf"),
        "schema_version": loaded.manifest.get("schema_version"),
    }
    if output_path is not None:
        summary["output"] = str(write_output(output_path, proba=proba, labels=labels))
    return summary
