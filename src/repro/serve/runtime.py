"""Serve runtime: load an artifact, compile its plan, score batches.

Backs the ``repro serve`` CLI subcommand: a saved
:class:`~repro.core.pipeline.FSGANPipeline` artifact is restored (no
training configuration needed), compiled into an
:class:`~repro.serve.plan.InferencePlan`, and run over an input batch read
from ``.npy`` / ``.npz`` / ``.csv``.

The runtime always serves under a live metrics registry (installing a
private one when the caller hasn't), so the summary carries per-stage
(``scale/split/generate/merge/predict``) latency percentiles from the
plan's bounded histograms.  Opt-in extras: a Prometheus exposition
endpoint (``prom_port``), periodic metric snapshots (``snapshot_path``),
and streaming drift scores against the artifact's training reference
(``track_drift``).
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from pathlib import Path

import numpy as np

from repro.core.artifacts import load_artifact
from repro.core.pipeline import FSGANPipeline
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.trace import get_tracer
from repro.utils.errors import ArtifactError

__all__ = ["load_plan", "read_input", "run_serve", "stage_summaries",
           "write_output"]

#: the compiled plan's stage order, as exposed in summaries
STAGES = ("scale", "split", "generate", "merge", "predict")


def load_plan(artifact_path, *, n_draws: int = 1, track_drift: bool = False,
              drift_options: dict | None = None):
    """Load a pipeline artifact and compile its inference plan."""
    loaded = load_artifact(artifact_path)
    pipeline = loaded.estimator
    if not isinstance(pipeline, FSGANPipeline):
        raise ArtifactError(
            f"serving requires an {FSGANPipeline._estimator_kind!r} artifact; "
            f"{artifact_path} holds {loaded.kind or type(pipeline).__name__!r}"
        )
    plan = pipeline.compile(
        n_draws=n_draws, track_drift=track_drift, drift_options=drift_options
    )
    return plan, loaded


def read_input(path) -> np.ndarray:
    """Read a feature batch from ``.npy``, ``.npz`` (key ``X``) or ``.csv``."""
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no input file at {path}")
    suffix = path.suffix.lower()
    if suffix == ".npy":
        X = np.load(path, allow_pickle=False)
    elif suffix == ".npz":
        data = np.load(path, allow_pickle=False)
        if "X" not in data.files:
            raise ArtifactError(f"{path} has no array named 'X' (found {data.files})")
        X = data["X"]
    elif suffix == ".csv":
        X = _read_csv(path)
    else:
        raise ArtifactError(f"unsupported input format {suffix!r} (npy/npz/csv)")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ArtifactError(f"input batch must be 2-D, got shape {X.shape}")
    return X


def _read_csv(path: Path) -> np.ndarray:
    """Load a numeric CSV, tolerating one header row.

    A non-numeric first row is treated as a header and skipped (with a
    log message naming the columns); a non-numeric cell anywhere else is
    a data error and raises :class:`ArtifactError` with its location.
    """
    from repro.obs.logging import get_logger

    skiprows = 0
    with path.open() as handle:
        first = handle.readline()
    cells = [cell.strip() for cell in first.strip().split(",")] if first else []

    def _numeric(cell: str) -> bool:
        try:
            float(cell)
        except ValueError:
            return False
        return True

    if cells and not all(_numeric(cell) for cell in cells):
        skiprows = 1
        get_logger("repro.serve.runtime").info(
            "skipping header row in %s (columns: %s)", path, ", ".join(cells)
        )
    try:
        return np.loadtxt(path, delimiter=",", ndmin=2, skiprows=skiprows)
    except ValueError as exc:
        raise ArtifactError(
            f"non-numeric cell in {path}: {exc}"
        ) from exc


def write_output(path, *, proba: np.ndarray, labels: np.ndarray) -> Path:
    """Write scores to ``.npz`` (arrays) or ``.json`` (row-major lists)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix.lower() == ".json":
        import json

        path.write_text(
            json.dumps(
                {"proba": proba.tolist(), "labels": labels.tolist()}, indent=2
            )
            + "\n"
        )
    else:
        np.savez(path, proba=proba, labels=np.asarray(labels))
    return path


def stage_summaries(registry) -> dict:
    """Per-stage latency summaries from a registry's ``serve.stage_seconds``.

    Returns ``{stage: {count, p50, p90, p99}}`` for stages that observed
    at least one batch.
    """
    stages: dict[str, dict] = {}
    for stage in STAGES:
        hist = registry.histogram("serve.stage_seconds", stage=stage)
        if hist.count == 0:
            continue
        summary = hist.summary()
        stages[stage] = {key: summary[key]
                         for key in ("count", "p50", "p90", "p99")}
    return stages


def run_serve(
    artifact_path,
    input_path,
    *,
    output_path=None,
    n_draws: int = 1,
    repeat: int = 1,
    track_drift: bool = False,
    prom_port: int | None = None,
    snapshot_path=None,
    snapshot_interval: float | None = None,
) -> dict:
    """Score a batch through a compiled plan; returns a summary dict.

    ``repeat`` re-scores the batch that many times (the RNG advances, so
    draws differ per pass) — useful for soak-testing the serve path under
    a scraping Prometheus endpoint.  Written scores come from the first
    pass.
    """
    if repeat < 1:
        raise ArtifactError("repeat must be >= 1")
    with get_tracer().span("serve.load", artifact=str(artifact_path)):
        plan, loaded = load_plan(
            artifact_path, n_draws=n_draws, track_drift=track_drift
        )
    X = read_input(input_path)

    registry = get_metrics()
    with ExitStack() as stack:
        if not registry.enabled:
            # a private registry so stage percentiles exist even without
            # --trace/--metrics-out; restored on exit
            registry = MetricsRegistry()
            previous = set_metrics(registry)
            stack.callback(set_metrics, previous)
        if prom_port is not None:
            from repro.obs.exporters import PrometheusExporter

            exporter = stack.enter_context(
                PrometheusExporter(registry, port=prom_port)
            )
        else:
            exporter = None
        if snapshot_path is not None:
            from repro.obs.exporters import SnapshotWriter

            stack.enter_context(SnapshotWriter(
                snapshot_path, registry=registry, interval=snapshot_interval
            ))

        t0 = time.perf_counter()
        proba = plan.predict_proba(X)
        for _ in range(repeat - 1):
            plan.predict_proba(X)
        seconds = time.perf_counter() - t0

        codes = np.argmax(proba, axis=1)
        classes = getattr(plan.model, "classes_", None)
        labels = classes[codes] if classes is not None else codes
        rows_scored = X.shape[0] * repeat
        summary = {
            "artifact": str(artifact_path),
            "kind": loaded.kind,
            "n_samples": int(X.shape[0]),
            "n_features": int(X.shape[1]),
            "n_draws": int(n_draws),
            "repeat": int(repeat),
            "seconds": seconds,
            "rows_per_second": (
                float(rows_scored / seconds) if seconds > 0 else float("inf")
            ),
            "schema_version": loaded.manifest.get("schema_version"),
            "stages": stage_summaries(registry),
            "latency": registry.histogram("serve.latency").summary(),
        }
        if exporter is not None:
            summary["prometheus"] = exporter.url
        if plan.drift_tracker is not None and plan.drift_tracker.last_scores:
            scores = plan.drift_tracker.last_scores
            summary["drift"] = {
                "psi_max": scores["psi_max"],
                "ks_max": scores["ks_max"],
                "drifted_features": list(scores["drifted_features"]),
                "alarmed": scores["alarmed"],
            }
    if output_path is not None:
        summary["output"] = str(write_output(output_path, proba=proba, labels=labels))
    return summary
