"""Long-running multi-tenant serving daemon.

Ties the serving plane together: a :class:`~repro.serve.registry.PlanCache`
(LRU of compiled tenant plans with sha256-validated hot reload) feeding a
:class:`~repro.serve.batcher.MicroBatcher` (per-tenant FIFO coalescing into
fixed-capacity padded micro-batches), optionally fronted by a
:class:`~repro.serve.server.DaemonHTTPServer` and a Prometheus exposition
endpoint.  The daemon always runs under a live metrics registry (a private
one is installed when the caller has none), so request/batch/queue
telemetry and the shutdown summary exist unconditionally.

In-process use (tests, load generation, embedding)::

    with ServeDaemon(DaemonConfig(root="artifacts")) as daemon:
        proba = daemon.score("tenant-00", X)       # blocks until scored
        pending = daemon.submit("tenant-00", X)    # or: fire-and-wait-later

``repro serve --daemon --root artifacts --port 8350`` runs
:func:`run_daemon`, which blocks until interrupted and prints the latency
and coalescing summary on the way out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.serve.batcher import DEFAULT_CAPACITY, MicroBatcher, PendingRequest
from repro.serve.registry import PlanCache
from repro.utils.errors import ValidationError

__all__ = ["DaemonConfig", "ServeDaemon", "run_daemon"]


@dataclass(frozen=True)
class DaemonConfig:
    """Everything a daemon needs; defaults suit tests and smoke loads."""

    root: str = "artifacts"
    host: str = "127.0.0.1"
    #: HTTP port (0 = ephemeral); None disables the HTTP front entirely
    port: int | None = 0
    n_draws: int = 1
    #: fixed padded capacity of every micro-batch (rows)
    micro_batch_rows: int = DEFAULT_CAPACITY
    #: idle linger before scoring an uncoalesced request (seconds)
    max_wait: float = 0.002
    #: LRU capacity of the compiled-plan cache (tenants kept hot)
    cache_size: int = 8
    #: False = per-request scoring (the sustained benchmark's baseline)
    coalesce: bool = True
    #: per-request result wait budget for the HTTP front (seconds)
    request_timeout: float = 30.0
    #: optional Prometheus exposition port (None = off)
    prom_port: int | None = None
    #: manage an ArtifactLineage over ``root`` (shadow mode, promote,
    #: rollback and the /v1/admin endpoints need it)
    manage_lineage: bool = True
    #: flip the lineage pointer automatically on a winning shadow verdict
    auto_promote: bool = True
    #: shadow policy: consecutive agreeing batches required to promote
    shadow_agreement_batches: int = 3
    #: shadow policy: per-batch max abs proba diff counting as agreement
    shadow_max_disagreement: float = 5e-3
    #: shadow policy: immediate abort threshold (regression guard)
    shadow_abort_disagreement: float = 0.5
    #: shadow policy: abort after this many batches without promotion
    shadow_max_batches: int | None = 64
    extra: dict = field(default_factory=dict)


class ServeDaemon:
    """Multi-tenant scoring daemon (context manager)."""

    def __init__(self, config: DaemonConfig | None = None, **overrides) -> None:
        if config is None:
            config = DaemonConfig(**overrides)
        elif overrides:
            raise ValidationError("pass either a DaemonConfig or overrides")
        self.config = config
        self.cache: PlanCache | None = None
        self.batcher: MicroBatcher | None = None
        self.http = None
        self.prometheus = None
        self.lineage = None
        self._shadow_results: dict = {}
        self._previous_registry = None
        self._owns_registry = False
        self._started_at: float | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self.batcher is not None

    @property
    def url(self) -> str | None:
        return self.http.url if self.http is not None else None

    def start(self) -> "ServeDaemon":
        if self.running:
            raise ValidationError("daemon already started")
        cfg = self.config
        if not get_metrics().enabled:
            # private registry so queue/batch/latency telemetry and the
            # shutdown summary exist even without --trace/--metrics-out
            self._previous_registry = set_metrics(MetricsRegistry())
            self._owns_registry = True
        self.cache = PlanCache(
            cfg.root,
            capacity=cfg.cache_size,
            n_draws=cfg.n_draws,
            micro_batch_rows=cfg.micro_batch_rows,
        )
        self.batcher = MicroBatcher(
            self.cache, max_wait=cfg.max_wait, coalesce=cfg.coalesce
        ).start()
        if cfg.manage_lineage:
            from repro.adapt.lineage import ArtifactLineage

            self.lineage = ArtifactLineage(cfg.root)
        if cfg.port is not None:
            from repro.serve.server import DaemonHTTPServer

            self.http = DaemonHTTPServer(
                self, host=cfg.host, port=cfg.port
            ).start()
        if cfg.prom_port is not None:
            from repro.obs.exporters import PrometheusExporter

            self.prometheus = PrometheusExporter(
                get_metrics(), port=cfg.prom_port
            ).start()
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> dict:
        """Drain, shut everything down, and return the final stats."""
        if not self.running:
            return {}
        stats = None
        try:
            if self.http is not None:
                self.http.stop()
                self.http = None
            self.batcher.stop()
            stats = self.stats()
            if self.prometheus is not None:
                self.prometheus.stop()
                self.prometheus = None
        finally:
            self.batcher = None
            if self._owns_registry:
                set_metrics(self._previous_registry)
                self._previous_registry = None
                self._owns_registry = False
        return stats if stats is not None else {}

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- scoring -------------------------------------------------------------

    def submit(self, tenant: str, X) -> PendingRequest:
        """Enqueue one request; returns the waitable pending handle."""
        if not self.running:
            raise ValidationError("daemon is not running")
        return self.batcher.submit(tenant, X)

    def score(self, tenant: str, X, *,
              timeout: float | None = None) -> np.ndarray:
        """Submit and block for the class probabilities."""
        timeout = timeout if timeout is not None else self.config.request_timeout
        return self.submit(tenant, X).result(timeout)

    # -- adaptation lifecycle ------------------------------------------------

    def _require_lineage(self):
        if self.lineage is None:
            raise ValidationError(
                "daemon has no artifact lineage (manage_lineage=False)"
            )
        return self.lineage

    def shadow_policy(self):
        """The ShadowPolicy assembled from the daemon config."""
        from repro.adapt.shadow import ShadowPolicy

        cfg = self.config
        return ShadowPolicy(
            agreement_batches=cfg.shadow_agreement_batches,
            max_disagreement=cfg.shadow_max_disagreement,
            abort_disagreement=cfg.shadow_abort_disagreement,
            max_batches=cfg.shadow_max_batches,
        )

    def start_shadow(self, tenant: str, content_hash: str | None = None, *,
                     policy=None):
        """Shadow-score a candidate version against the incumbent.

        ``content_hash`` defaults to the tenant's most recent
        candidate/shadow lineage version.  Live traffic keeps being
        answered by the incumbent; once the evaluator reaches a verdict
        the candidate is auto-promoted (pointer flip, picked up by the
        stat-triggered hot reload — no restart) or retired, per
        ``config.auto_promote``.
        """
        from repro.adapt.shadow import ShadowEvaluator

        if not self.running:
            raise ValidationError("daemon is not running")
        lineage = self._require_lineage()
        if content_hash is None:
            pending = [v for v in lineage.history(tenant)
                       if v.lifecycle_state in ("candidate", "shadow")]
            if not pending:
                raise ValidationError(
                    f"tenant {tenant!r} has no candidate version to shadow"
                )
            version = pending[-1]
        else:
            candidates = [v for v in lineage.history(tenant)
                          if v.content_hash == content_hash]
            if not candidates:
                raise ValidationError(
                    f"tenant {tenant!r} has no version {content_hash!r}"
                )
            version = candidates[0]
        lineage.mark(tenant, version.content_hash, "shadow")
        evaluator = ShadowEvaluator(tenant, policy or self.shadow_policy())
        self._shadow_results.pop(tenant, None)
        return self.cache.start_shadow(
            tenant, lineage.version_path(version), version.content_hash,
            evaluator=evaluator, on_verdict=self._on_shadow_verdict,
        )

    def _on_shadow_verdict(self, state) -> None:
        """Scorer-thread callback: act on a shadow verdict."""
        tenant = state.tenant
        self._shadow_results[tenant] = {
            "verdict": state.verdict,
            "content_hash": state.content_hash,
            **(state.evaluator.stats()
               if hasattr(state.evaluator, "stats") else {}),
        }
        try:
            if self.lineage is not None:
                if state.verdict == "promote" and self.config.auto_promote:
                    # pure pointer flip; the cache's stat-triggered reload
                    # serves the candidate from the next request on
                    self.lineage.promote(tenant, state.content_hash)
                elif state.verdict != "promote":
                    self.lineage.mark(tenant, state.content_hash, "retired")
        finally:
            self.cache.stop_shadow(tenant)

    def shadow_verdict(self, tenant: str) -> str | None:
        """The last completed shadow verdict for ``tenant`` (None = pending)."""
        result = self._shadow_results.get(tenant)
        if result is not None:
            return result["verdict"]
        state = self.cache.shadow_for(tenant) if self.cache is not None else None
        return state.verdict if state is not None else None

    def promote(self, tenant: str, content_hash: str | None = None):
        """Manually flip the lineage pointer (stops any live shadow first)."""
        lineage = self._require_lineage()
        if self.cache is not None:
            self.cache.stop_shadow(tenant)
        return lineage.promote(tenant, content_hash)

    def rollback(self, tenant: str):
        """One-command rollback: pointer flip back to the previous version.

        The reload is picked up on the next request; because the restored
        bundle's content hash differs from the demoted one's, the plan
        cache resets the tenant's noise stream to the artifact's saved
        state — replayed traffic scores bit-identically to pre-promotion.
        """
        lineage = self._require_lineage()
        if self.cache is not None:
            self.cache.stop_shadow(tenant)
        return lineage.rollback(tenant)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """Daemon-level counters plus latency summaries from the registry."""
        if self.batcher is None or self.cache is None:
            return {}
        registry = get_metrics()
        out = {
            "uptime_seconds": (
                time.perf_counter() - self._started_at
                if self._started_at is not None else 0.0
            ),
            "batcher": self.batcher.stats(),
            "cache": self.cache.stats(),
        }
        if self._shadow_results:
            out["shadow_results"] = dict(self._shadow_results)
        if registry.enabled:
            latency = {}
            for name in ("daemon.request_seconds", "daemon.queue_seconds",
                         "daemon.batch_seconds", "daemon.batch_rows"):
                hist = registry.histogram(name)
                if hist.count:
                    summary = hist.summary()
                    latency[name] = {
                        key: summary[key]
                        for key in ("count", "p50", "p90", "p99", "max")
                    }
            out["latency"] = latency
        return out


def format_daemon_summary(stats: dict) -> str:
    """Human-readable shutdown summary for the CLI."""
    if not stats:
        return "daemon served no requests"
    batcher = stats.get("batcher", {})
    cache = stats.get("cache", {})
    lines = [
        f"served {batcher.get('requests', 0)} requests "
        f"({batcher.get('rows', 0)} rows) in {batcher.get('batches', 0)} "
        f"micro-batches (mean fill {batcher.get('mean_batch_rows', 0.0):.1f} "
        f"rows, {batcher.get('mean_batch_requests', 0.0):.1f} requests)",
        f"cache: {cache.get('hits', 0)} hits / {cache.get('misses', 0)} "
        f"misses / {cache.get('evictions', 0)} evictions / "
        f"{cache.get('reloads', 0)} hot reloads "
        f"({len(cache.get('loaded', {}))} tenants hot)",
    ]
    for name, summary in stats.get("latency", {}).items():
        label = name.removeprefix("daemon.")
        if name.endswith("_seconds"):
            lines.append(
                f"  {label:<16} p50={1e3 * summary['p50']:8.3f} ms  "
                f"p90={1e3 * summary['p90']:8.3f} ms  "
                f"p99={1e3 * summary['p99']:8.3f} ms  (n={summary['count']})"
            )
        else:
            lines.append(
                f"  {label:<16} p50={summary['p50']:8.1f}     "
                f"p90={summary['p90']:8.1f}     "
                f"p99={summary['p99']:8.1f}     (n={summary['count']})"
            )
    return "\n".join(lines)


def run_daemon(config: DaemonConfig) -> dict:
    """Run a daemon until interrupted; returns (and prints) final stats."""
    daemon = ServeDaemon(config)
    daemon.start()
    try:
        known = daemon.cache.known_tenants()
        print(f"serving {len(known)} tenant artifact(s) from {config.root}"
              + (f" at {daemon.url}" if daemon.url else " (no HTTP front)"))
        if daemon.prometheus is not None:
            print(f"metrics exposed at {daemon.prometheus.url}")
        print("press Ctrl-C to stop")
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        print("\nshutting down ...")
    finally:
        stats = daemon.stop()
    print(format_daemon_summary(stats))
    return stats
