"""Command-line interface: regenerate any experiment from the shell.

Usage::

    python -m repro table1 --dataset 5gc --preset smoke
    python -m repro ablation --dataset 5gipc
    python -m repro multitarget
    python -m repro counts --dataset 5gc
    python -m repro runtime --dataset 5gipc --preset fast --trace -v
    python -m repro bench --dataset 5gc --preset smoke --n-jobs -1
    python -m repro bench --suite nn --dataset 5gc --preset smoke
    python -m repro bench --suite serve --dataset 5gc --preset smoke
    python -m repro bench --suite serve --sustained --tenants 3 --rate 300
    python -m repro bench --suite fs --warm --widths 442 --n-jobs -1
    python -m repro rediscover --artifact pipe.npz --source src.npy \\
        --target pooled_target.npy --mode confirm --out pipe_updated.npz
    python -m repro rediscover --artifact pipe.npz --source src.npy \\
        --target pooled_target.npy --json   # exit 3 = variant set changed
    python -m repro adapt run --width 442 --schedule abrupt --out BENCH_adapt.json
    python -m repro adapt status --root artifacts
    python -m repro adapt promote --root artifacts --tenant nf-east
    python -m repro adapt rollback --root artifacts --tenant nf-east
    python -m repro serve --artifact pipe.npz --input batch.npy --output scores.npz
    python -m repro serve --artifact pipe.npz --input batch.npy --repeat 100 \\
        --track-drift --prom-port 9464 --snapshot-out metrics.jsonl
    python -m repro serve --daemon --root artifacts --port 8350
    python -m repro loadgen --root artifacts --input batch.npy --mode open \\
        --rate 200 --duration 5
    python -m repro obs summary runs/runtime-dataset=5gc-preset=smoke-seed=0
    python -m repro obs tail runs/... --kind drift.alarm
    python -m repro obs diff runs/a runs/b

Each subcommand runs one artifact of the paper's evaluation section and
prints it in the paper's layout (see EXPERIMENTS.md for the mapping).
``repro serve`` additionally prints per-stage latency percentiles at
shutdown and can expose a live Prometheus endpoint (``--prom-port``),
periodic metric snapshots (``--snapshot-out``) and streaming drift scores
against the artifact's training reference (``--track-drift``).
``repro serve --daemon`` instead runs the long-lived multi-tenant daemon:
an LRU cache of compiled per-tenant plans over ``--root``, same-tenant
micro-batch coalescing, and an HTTP scoring front on ``--port``.
``repro loadgen`` drives seeded mixed-tenant traffic (open-loop Poisson
or closed-loop saturation) at a daemon — in-process by default, over
HTTP with ``--http`` or against an external ``--url``.
``repro obs`` inspects the run bundles that ``--trace`` writes.

Observability flags (available on every subcommand):

``--trace``
    Collect spans, metrics and events and write the run bundle
    (``trace.json`` / ``metrics.json`` / ``events.jsonl`` /
    ``manifest.json``) to a seed-keyed directory under ``--runs-dir``.
``--metrics-out PATH``
    Write ``metrics.json`` to an explicit path (works with or without
    ``--trace``).
``--log-level`` / ``-v``
    Structured-logging level (``-v`` = INFO, ``-vv`` = DEBUG; the
    ``REPRO_LOG_LEVEL`` environment variable is the fallback).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments import (
    SUITES,
    format_ablation,
    format_multitarget,
    format_runtime,
    format_table1,
    format_variant_counts,
    get_preset,
    get_suite,
    measure_runtime,
    run_ablation,
    run_multitarget,
    run_table1,
    summarize_improvement,
    variant_counts,
)
from repro.obs import (
    RunRecorder,
    configure_logging,
    run_dir_name,
    verbosity_to_level,
)


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and analyses.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, *, dataset=True):
        if dataset:
            p.add_argument("--dataset", choices=("5gc", "5gipc"), default="5gc")
        p.add_argument(
            "--preset", choices=("smoke", "fast", "paper"), default=None,
            help="experiment scale (default: $REPRO_PRESET or smoke)",
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--n-jobs", type=int, default=1, metavar="N",
            help="worker processes for FS CI tests (-1 = all cores; "
            "results are bit-identical to serial)",
        )
        obs = p.add_argument_group("observability")
        obs.add_argument(
            "--trace", action="store_true",
            help="collect spans/metrics/events and write the run bundle",
        )
        obs.add_argument(
            "--metrics-out", metavar="PATH", default=None,
            help="write metrics.json to this path",
        )
        obs.add_argument(
            "--runs-dir", metavar="DIR", default="runs",
            help="directory receiving --trace run bundles (default: runs)",
        )
        obs.add_argument(
            "--log-level", choices=("DEBUG", "INFO", "WARNING", "ERROR"),
            default=None, help="structured-logging level",
        )
        obs.add_argument(
            "-v", "--verbose", action="count", default=0,
            help="-v = INFO logging, -vv = DEBUG",
        )

    p = sub.add_parser("table1", help="Table I: the full method/model/shots grid")
    add_common(p)
    p.add_argument("--methods", nargs="*", default=None,
                   help="subset of Table I method names")
    p.add_argument("--models", nargs="*", default=None,
                   help="subset of TNet/MLP/RF/XGB")

    p = sub.add_parser("ablation", help="Table II: reconstruction strategies")
    add_common(p)
    p.add_argument("--model", default="TNet")

    p = sub.add_parser("multitarget", help="Table III: two-target robustness")
    add_common(p, dataset=False)

    p = sub.add_parser("counts", help="§VI-C: variant counts vs shot budget")
    add_common(p)

    p = sub.add_parser("runtime", help="§VI-D: FS / GAN / inference timing")
    add_common(p)

    p = sub.add_parser(
        "bench",
        help="perf benchmark: FS CI engine or the fused NN training engine",
    )
    add_common(p)
    p.add_argument("--suite", choices=tuple(sorted(SUITES)), default="fs",
                   help="; ".join(
                       f"{name} = {suite.description}"
                       for name, suite in sorted(SUITES.items())
                   ))
    p.add_argument("--shots", type=int, default=10,
                   help="few-shot target budget for FS discovery "
                   "(fs/serve suites)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="benchmark record file (merged, seed-keyed; default "
                   "BENCH_fs.json / BENCH_nn.json / BENCH_serve.json by suite)")
    p.add_argument("--skip-gan", action="store_true",
                   help="fs suite: benchmark FS discovery only "
                   "(skip GAN + inference)")
    p.add_argument("--epochs", type=int, default=None,
                   help="nn suite: override the preset's GAN epoch budget")
    p.add_argument("--draws", type=int, default=1,
                   help="serve suite: Monte-Carlo draws per sample")
    p.add_argument("--wide", action="store_true",
                   help="fs suite: scaling curve on synthetic wide matrices "
                   "(pre-PR engine vs shared-memory/pruned/float32 path) "
                   "instead of the preset dataset benchmark")
    p.add_argument("--warm", action="store_true",
                   help="fs suite: warm-start re-discovery benchmark (cold "
                   "discover vs rediscover from the previous run's WarmState "
                   "after new few-shot rows) on synthetic wide matrices")
    p.add_argument("--widths", default="442,1024", metavar="W1,W2,...",
                   help="fs --wide/--warm: comma-separated feature widths "
                   "(default 442,1024)")
    p.add_argument("--rounds", type=int, default=2,
                   help="fs --wide/--warm: timing rounds per side (min is "
                   "kept)")
    p.add_argument("--sustained", action="store_true",
                   help="serve suite: benchmark the multi-tenant daemon "
                   "under sustained load (closed-loop throughput + "
                   "open-loop latency) instead of the one-shot plan")
    p.add_argument("--tenants", type=int, default=3,
                   help="serve --sustained: tenant artifacts to fit and serve")
    p.add_argument("--duration", type=float, default=2.0,
                   help="serve --sustained: seconds per measured pass")
    p.add_argument("--rate", type=float, default=300.0,
                   help="serve --sustained: open-loop offered rate (req/s)")
    p.add_argument("--clients", type=int, default=8,
                   help="serve --sustained: concurrent client threads")

    p = sub.add_parser(
        "rediscover",
        help="warm-start FS re-discovery from a saved artifact's warm state",
    )
    add_common(p, dataset=False)
    p.add_argument("--artifact", required=True, metavar="PATH",
                   help="artifact bundle (.npz) carrying a fitted feature "
                   "separator with persisted warm state")
    p.add_argument("--source", required=True, metavar="PATH",
                   help="source-domain matrix: .npy, .npz (array 'X') or .csv")
    p.add_argument("--target", required=True, metavar="PATH",
                   help="pooled few-shot target matrix (previous shots + new "
                   "rows): .npy, .npz (array 'X') or .csv")
    p.add_argument("--mode", choices=("exact", "confirm"), default="exact",
                   help="warm policy: exact = provably identical variant "
                   "sets (default), confirm = confirmation-tested fast path")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the artifact with the refreshed separator and "
                   "warm state here (the reconstructor/GAN is NOT refit)")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable variant-set diff "
                   "(added/removed/kept + warm-cache hit statistics) instead "
                   "of the human report; the exit code is 3 when the variant "
                   "set changed, 0 when it is unchanged")

    p = sub.add_parser(
        "adapt",
        help="closed-loop adaptation lifecycle: scenario driver, lineage "
        "status, one-command promote/rollback",
    )
    adapt_sub = p.add_subparsers(dest="adapt_command", required=True)
    pr = adapt_sub.add_parser(
        "run",
        help="drive a known-onset drift schedule through the live "
        "adaptation loop and report/record its figures of merit",
    )
    add_common(pr, dataset=False)
    pr.add_argument("--width", type=int, default=442,
                    help="synthetic feature width (default: the 442-feature "
                    "warm-bench preset)")
    pr.add_argument("--schedule", choices=("abrupt", "gradual"),
                    default="abrupt", help="drift onset shape")
    pr.add_argument("--onset-batch", type=int, default=10,
                    help="first drifted batch (0-based; default 10)")
    pr.add_argument("--batches", type=int, default=32,
                    help="total traffic batches (default 32)")
    pr.add_argument("--batch-rows", type=int, default=64,
                    help="rows per traffic batch (default 64)")
    pr.add_argument("--min-shots", type=int, default=64,
                    help="post-alarm shots accumulated before refit")
    pr.add_argument("--rounds", type=int, default=2,
                    help="cold re-discovery timing rounds (min is kept)")
    pr.add_argument("--root", metavar="DIR", default=None,
                    help="artifact-lineage root to keep (default: a "
                    "temporary directory discarded after the run)")
    pr.add_argument("--out", metavar="PATH", default=None,
                    help="merge a bench record into this file "
                    "(BENCH_adapt.json layout)")
    for name, help_text in (
        ("status", "print a tenant's lineage: generations, states, pointer"),
        ("promote", "activate the latest candidate/shadow version "
         "(pure pointer flip)"),
        ("rollback", "flip the active pointer back to the previous version"),
    ):
        pa = adapt_sub.add_parser(name, help=help_text)
        add_common(pa, dataset=False)
        pa.add_argument("--root", metavar="DIR", required=True,
                        help="artifact-lineage root directory")
        pa.add_argument("--tenant", metavar="NAME",
                        default=None if name == "status" else None,
                        required=name != "status",
                        help="tenant name"
                        + (" (default: every tenant under --root)"
                           if name == "status" else ""))
        if name == "promote":
            pa.add_argument("--hash", metavar="CONTENT_HASH", default=None,
                            help="promote this specific version (default: "
                            "the latest candidate/shadow)")

    p = sub.add_parser(
        "serve",
        help="score a batch through a compiled plan, or run the "
        "multi-tenant serving daemon (--daemon)",
    )
    add_common(p, dataset=False)
    p.add_argument("--daemon", action="store_true",
                   help="run the long-lived multi-tenant daemon over an "
                   "artifact directory instead of one-shot scoring")
    p.add_argument("--artifact", metavar="PATH",
                   help="fsgan_pipeline artifact bundle (.npz; one-shot mode)")
    p.add_argument("--input", metavar="PATH",
                   help="feature batch: .npy, .npz (array 'X') or .csv "
                   "(one-shot mode)")
    daemon = p.add_argument_group("daemon mode")
    daemon.add_argument("--root", metavar="DIR", default="artifacts",
                        help="directory of <tenant>.npz artifact bundles")
    daemon.add_argument("--host", default="127.0.0.1",
                        help="HTTP bind address (default 127.0.0.1)")
    daemon.add_argument("--port", type=int, default=8350,
                        help="HTTP port (0 = ephemeral; default 8350)")
    daemon.add_argument("--max-batch-rows", type=int, default=256,
                        metavar="N",
                        help="micro-batch capacity in rows (default 256)")
    daemon.add_argument("--max-wait-ms", type=float, default=2.0,
                        metavar="MS",
                        help="idle linger before scoring an uncoalesced "
                        "request (default 2 ms)")
    daemon.add_argument("--cache-size", type=int, default=8, metavar="N",
                        help="tenants kept hot in the LRU plan cache")
    daemon.add_argument("--no-coalesce", action="store_true",
                        help="score every request in its own padded "
                        "execution (baseline mode)")
    p.add_argument("--output", metavar="PATH", default=None,
                   help="write proba + labels to .npz or .json")
    p.add_argument("--n-draws", type=int, default=1,
                   help="Monte-Carlo draws per sample")
    p.add_argument("--repeat", type=int, default=1, metavar="N",
                   help="score the batch N times (soak mode; scores are "
                   "written from the first pass)")
    p.add_argument("--track-drift", action="store_true",
                   help="stream per-feature PSI/KS drift scores against the "
                   "artifact's training reference")
    p.add_argument("--prom-port", type=int, default=None, metavar="PORT",
                   help="expose a Prometheus /metrics endpoint on this port "
                   "while serving")
    p.add_argument("--snapshot-out", metavar="PATH", default=None,
                   help="append metric snapshots to this .jsonl/.csv file")
    p.add_argument("--snapshot-every", type=float, default=None,
                   metavar="SECONDS",
                   help="snapshot period (with --snapshot-out); default: one "
                   "snapshot at shutdown")

    p = sub.add_parser(
        "loadgen",
        help="drive mixed-tenant request traffic at a serving daemon",
    )
    add_common(p, dataset=False)
    target = p.add_mutually_exclusive_group(required=True)
    target.add_argument("--root", metavar="DIR",
                        help="artifact directory: spin up an in-process "
                        "daemon over it and drive that")
    target.add_argument("--url", metavar="URL",
                        help="drive an already-running daemon's HTTP front "
                        "(http://host:port)")
    p.add_argument("--input", required=True, metavar="PATH",
                   help="feature rows the traffic slices from: .npy, .npz "
                   "(array 'X') or .csv")
    p.add_argument("--tenants", nargs="*", default=None, metavar="NAME",
                   help="tenant names to mix (default: every bundle under "
                   "--root; required with --url)")
    p.add_argument("--mode", choices=("open", "closed"), default="open",
                   help="open = Poisson arrivals at --rate; closed = "
                   "saturation (clients submit back-to-back)")
    p.add_argument("--duration", type=float, default=5.0,
                   help="seconds of load (default 5)")
    p.add_argument("--rate", type=float, default=200.0,
                   help="open-loop offered rate in requests/sec")
    p.add_argument("--clients", type=int, default=8,
                   help="client threads (default 8)")
    p.add_argument("--rows", default="1,8", metavar="LO,HI",
                   help="rows per request, uniform in [LO, HI] (default 1,8)")
    p.add_argument("--http", action="store_true",
                   help="with --root: drive the in-process daemon through "
                   "its HTTP front instead of direct submits")
    p.add_argument("--n-draws", type=int, default=1,
                   help="Monte-Carlo draws per sample (in-process daemon)")
    p.add_argument("--max-batch-rows", type=int, default=256, metavar="N",
                   help="micro-batch capacity (in-process daemon)")

    p = sub.add_parser(
        "obs",
        help="inspect run bundles: summary, tail events, diff two runs",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    ps = obs_sub.add_parser("summary",
                            help="latency/drift/counter report of one bundle")
    ps.add_argument("run_dir", help="run directory (or metrics.json file)")
    pt = obs_sub.add_parser("tail", help="print the last events of a bundle")
    pt.add_argument("run_dir")
    pt.add_argument("-n", type=int, default=20, help="events to show")
    pt.add_argument("--kind", default=None, metavar="KIND",
                    help="only events of this kind (e.g. drift.alarm)")
    pd = obs_sub.add_parser("diff", help="metric-by-metric diff of two runs")
    pd.add_argument("run_a")
    pd.add_argument("run_b")
    return parser


def _make_recorder(args, preset) -> RunRecorder | None:
    """Build the observability session implied by the CLI flags (or None)."""
    if not (args.trace or args.metrics_out):
        return None
    run_dir = None
    if args.trace:
        run_dir = os.path.join(
            args.runs_dir,
            run_dir_name(
                args.command,
                dataset=getattr(args, "dataset", None),
                preset=preset.name,
                seed=args.seed,
            ),
        )
    return RunRecorder(
        run_dir,
        metrics_path=args.metrics_out,
        manifest={
            "command": args.command,
            "dataset": getattr(args, "dataset", None),
            "preset": preset.name,
            "seed": args.seed,
        },
    )


def _dispatch(args, preset) -> int:
    """Run the selected subcommand and print its table; returns an exit code."""
    if args.command == "table1":
        results = run_table1(
            args.dataset,
            preset=preset,
            methods=tuple(args.methods) if args.methods else None,
            models=tuple(args.models) if args.models else None,
            random_state=args.seed,
            n_jobs=args.n_jobs,
        )
        print(format_table1(results, dataset=args.dataset.upper()))
        summary = summarize_improvement(results)
        if summary["best_other"] is not None:
            print(
                f"\nFS+GAN gain over SrcOnly: {100 * summary['fsgan_gain']:+.1f}; "
                f"best other ({summary['best_other']}): "
                f"{100 * summary['best_other_gain']:+.1f}"
            )
    elif args.command == "ablation":
        results = run_ablation(
            args.dataset, preset=preset, model=args.model,
            random_state=args.seed, n_jobs=args.n_jobs,
        )
        print(format_ablation(results, dataset=args.dataset.upper()))
    elif args.command == "multitarget":
        print(format_multitarget(
            run_multitarget(preset=preset, random_state=args.seed)
        ))
    elif args.command == "counts":
        print(format_variant_counts(variant_counts(
            args.dataset, preset=preset, random_state=args.seed,
            n_jobs=args.n_jobs,
        )))
    elif args.command == "runtime":
        print(format_runtime(measure_runtime(
            args.dataset, preset=preset, random_state=args.seed,
            n_jobs=args.n_jobs,
        )))
    elif args.command == "bench":
        # one registry drives every suite: the suite's CLI adapter hook
        # runs the benchmark and returns the report (ROADMAP item 5)
        suite = get_suite(args.suite)
        out = args.out or suite.default_out
        print(suite.run_cli(args, preset, out))
        print(f"\nrecord merged into {out}")
    elif args.command == "rediscover":
        import json
        from dataclasses import replace

        from repro.core.artifacts import load_artifact, save_artifact
        from repro.core.feature_separation import FeatureSeparator
        from repro.serve import read_input

        loaded = load_artifact(args.artifact)
        estimator = loaded.estimator
        sep = (
            estimator
            if isinstance(estimator, FeatureSeparator)
            else getattr(estimator, "separator_", None)
        )
        if sep is None:
            raise SystemExit(
                f"repro rediscover: artifact kind {loaded.kind!r} carries no "
                "feature separator"
            )
        if sep.warm_state_ is None:
            raise SystemExit(
                "repro rediscover: artifact has no persisted warm state "
                "(it predates warm-start support — refit once to capture one)"
            )
        Xs = read_input(args.source)
        Xt = read_input(args.target)
        scaler = getattr(estimator, "scaler_", None)
        if scaler is not None:
            Xs, Xt = scaler.transform(Xs), scaler.transform(Xt)
        refreshed = FeatureSeparator(
            replace(sep.config, n_jobs=args.n_jobs, warm_mode=args.mode)
        ).fit(Xs, Xt, warm=sep.warm_state_)
        old = set(int(j) for j in sep.result_.variant_indices)
        new = set(int(j) for j in refreshed.result_.variant_indices)
        res = refreshed.result_
        added, removed = sorted(new - old), sorted(old - new)
        kept = sorted(new & old)
        changed = bool(added or removed)
        if args.json:
            print(json.dumps({
                "mode": args.mode,
                "n_variant": int(res.n_variant),
                "n_tests": int(res.n_tests),
                "coverage": float(res.coverage),
                "changed": changed,
                "added": added,
                "removed": removed,
                "kept": kept,
                "warm_cache": refreshed.cache_stats_,
            }, indent=2, sort_keys=True))
        else:
            print(
                f"warm ({args.mode}) re-discovery: {res.n_variant} variant "
                f"features ({res.n_tests} CI tests, coverage {res.coverage:.2f})"
            )
            print(f"  newly variant:   {added if added else '(none)'}")
            print(f"  newly invariant: {removed if removed else '(none)'}")
        if args.out:
            if sep is estimator:
                save_artifact(refreshed, args.out,
                              provenance=loaded.provenance or None,
                              monitor=loaded.monitor)
            else:
                estimator.separator_ = refreshed
                save_artifact(estimator, args.out,
                              provenance=loaded.provenance or None,
                              monitor=loaded.monitor)
                if not args.json:
                    print(
                        "note: the reconstructor/GAN was not refit — rerun "
                        "pipeline training to adapt it to the new variant set"
                    )
            if not args.json:
                print(f"updated artifact written to {args.out}")
        # scripting contract: a changed variant set exits 3 so callers can
        # gate a full refit on it (0 = unchanged, like diff's 0/1 idiom)
        return 3 if changed else 0
    elif args.command == "adapt":
        return _dispatch_adapt(args, preset)
    elif args.command == "serve" and args.daemon:
        from repro.serve import DaemonConfig, run_daemon

        run_daemon(DaemonConfig(
            root=args.root,
            host=args.host,
            port=args.port,
            n_draws=args.n_draws,
            micro_batch_rows=args.max_batch_rows,
            max_wait=args.max_wait_ms / 1e3,
            cache_size=args.cache_size,
            coalesce=not args.no_coalesce,
            prom_port=args.prom_port,
        ))
    elif args.command == "serve":
        from repro.serve import run_serve

        if not args.artifact or not args.input:
            raise SystemExit(
                "repro serve: --artifact and --input are required "
                "(or use --daemon --root DIR)"
            )
        summary = run_serve(
            args.artifact,
            args.input,
            output_path=args.output,
            n_draws=args.n_draws,
            repeat=args.repeat,
            track_drift=args.track_drift,
            prom_port=args.prom_port,
            snapshot_path=args.snapshot_out,
            snapshot_interval=args.snapshot_every,
        )
        repeat_note = (f" x {summary['repeat']} passes"
                       if summary["repeat"] > 1 else "")
        print(
            f"scored {summary['n_samples']} rows x {summary['n_features']} "
            f"features{repeat_note} through {summary['kind']} artifact "
            f"(schema v{summary['schema_version']}, n_draws={summary['n_draws']}): "
            f"{1e3 * summary['seconds']:.2f} ms "
            f"({summary['rows_per_second']:.0f} rows/s)"
        )
        for stage, s in summary["stages"].items():
            print(
                f"  {stage:<9} p50={1e3 * s['p50']:8.3f} ms  "
                f"p90={1e3 * s['p90']:8.3f} ms  p99={1e3 * s['p99']:8.3f} ms  "
                f"(n={s['count']})"
            )
        latency = summary["latency"]
        if latency.get("count"):
            print(
                f"  batch     p50={1e3 * latency['p50']:8.3f} ms  "
                f"p90={1e3 * latency['p90']:8.3f} ms  "
                f"p99={1e3 * latency['p99']:8.3f} ms"
            )
        if "drift" in summary:
            drift = summary["drift"]
            state = "ALARM" if drift["alarmed"] else "ok"
            print(
                f"  drift     psi_max={drift['psi_max']:.3f} "
                f"ks_max={drift['ks_max']:.3f} [{state}] "
                f"features={drift['drifted_features']}"
            )
        if "prometheus" in summary:
            print(f"  metrics exposed at {summary['prometheus']}")
        if "output" in summary:
            print(f"scores written to {summary['output']}")
    elif args.command == "loadgen":
        from contextlib import ExitStack

        from repro.experiments import format_loadgen, run_loadgen
        from repro.serve import DaemonConfig, ServeDaemon, read_input

        X = read_input(args.input)
        lo, _, hi = args.rows.partition(",")
        rows_per_request = (int(lo), int(hi or lo))
        with ExitStack() as stack:
            if args.url:
                if not args.tenants:
                    raise SystemExit(
                        "repro loadgen: --tenants is required with --url"
                    )
                target, tenants = args.url, list(args.tenants)
            else:
                daemon = stack.enter_context(ServeDaemon(DaemonConfig(
                    root=args.root,
                    port=0 if args.http else None,
                    n_draws=args.n_draws,
                    micro_batch_rows=args.max_batch_rows,
                )))
                tenants = list(args.tenants or daemon.cache.known_tenants())
                if not tenants:
                    raise SystemExit(
                        f"repro loadgen: no tenant bundles under {args.root}"
                    )
                target = daemon.url if args.http else daemon
            result = run_loadgen(
                target, X, tenants,
                mode=args.mode,
                duration=args.duration,
                rate=args.rate,
                clients=args.clients,
                rows_per_request=rows_per_request,
                seed=args.seed,
            )
        print(format_loadgen(result))


def _dispatch_adapt(args, preset) -> int:
    """The ``repro adapt`` lifecycle subcommands."""
    from repro.utils.errors import ReproError

    if args.adapt_command == "run":
        from repro.experiments.drift_schedule import (
            format_bench_adapt,
            run_bench_adapt,
            run_adapt_scenario,
        )

        if args.out:
            records = run_bench_adapt(
                (args.width,),
                schedule=args.schedule,
                cold_rounds=max(1, args.rounds),
                min_shots=args.min_shots,
                n_jobs=args.n_jobs,
                random_state=args.seed,
                out=args.out,
            )
            print(format_bench_adapt(records))
            print(f"\nrecord merged into {args.out}")
            return 0
        result = run_adapt_scenario(
            args.width,
            schedule=args.schedule,
            n_batches=args.batches,
            batch_rows=args.batch_rows,
            onset_batch=args.onset_batch,
            min_shots=args.min_shots,
            cold_rounds=max(1, args.rounds),
            n_jobs=args.n_jobs,
            random_state=args.seed,
            root=args.root,
        )
        print(
            f"adapt scenario ({result['schedule']}, width {result['width']}):"
        )
        print(
            f"  onset batch {result['onset_batch']}, alarm batch "
            f"{result['alarm_batch']} (detection latency "
            f"{result['detection_latency_batches']} batches)"
        )
        print(f"  shots to refit: {result['shots_to_refit']}")
        if result.get("rediscover_warm_seconds") is not None:
            print(
                f"  warm re-discovery: {result['rediscover_warm_seconds']:.3f}s"
                + (
                    f" (cold {result['rediscover_cold_seconds']:.3f}s, "
                    f"{result['warm_speedup']:.2f}x, variant sets "
                    + ("equal" if result.get("variant_equivalent")
                       else "DIFFER")
                    + ")"
                    if "rediscover_cold_seconds" in result else ""
                )
            )
        if result.get("alarm_to_promotion_seconds") is not None:
            print(
                f"  alarm -> promotion: "
                f"{result['alarm_to_promotion_seconds']:.3f}s "
                f"(generation {result['generation']})"
            )
        print(f"  final state: {result['final_state']}")
        if args.root:
            print(f"  lineage kept under {args.root}")
        return 0 if result["promoted"] else 1

    # status / promote / rollback operate on an existing lineage root
    from repro.adapt.lineage import ArtifactLineage

    lineage = ArtifactLineage(args.root)
    try:
        if args.adapt_command == "status":
            tenants = [args.tenant] if args.tenant else lineage.tenants()
            if not tenants:
                print(f"no lineage-managed tenants under {args.root}")
                return 1
            for tenant in tenants:
                active = lineage.active(tenant)
                previous = lineage.previous(tenant)
                print(f"{tenant}:")
                for v in lineage.history(tenant):
                    marker = (
                        "*" if active and v.content_hash == active.content_hash
                        else ("-" if previous
                              and v.content_hash == previous.content_hash
                              else " ")
                    )
                    print(
                        f"  {marker} gen {v.generation}  "
                        f"{v.lifecycle_state:<9}  {v.content_hash[:12]}  "
                        f"{v.file}"
                    )
                if previous is not None:
                    print(
                        f"  rollback would restore gen {previous.generation} "
                        f"({previous.content_hash[:12]})"
                    )
            return 0
        elif args.adapt_command == "promote":
            version = lineage.promote(args.tenant, args.hash)
            print(
                f"promoted {args.tenant} to gen {version.generation} "
                f"({version.content_hash[:12]}); active pointer flipped"
            )
            return 0
        else:  # rollback
            version = lineage.rollback(args.tenant)
            print(
                f"rolled {args.tenant} back to gen {version.generation} "
                f"({version.content_hash[:12]}); active pointer flipped"
            )
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch_obs(args) -> int:
    """Run the offline ``repro obs`` inspection subcommands."""
    from repro.obs import diff_runs, summarize_run, tail_events
    from repro.utils.errors import ReproError

    try:
        if args.obs_command == "summary":
            print(summarize_run(args.run_dir))
        elif args.obs_command == "tail":
            print(tail_events(args.run_dir, n=args.n, kind=args.kind))
        elif args.obs_command == "diff":
            print(diff_runs(args.run_a, args.run_b))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into head/less and truncated
        sys.stderr.close()
        return 0
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "obs":  # pure inspection: no preset, no recorder
        return _dispatch_obs(args)
    if args.log_level is not None:
        configure_logging(args.log_level)
    elif args.verbose:
        configure_logging(verbosity_to_level(args.verbose))
    preset = get_preset(args.preset)
    recorder = _make_recorder(args, preset)

    if recorder is None:
        return _dispatch(args, preset) or 0
    with recorder:
        code = _dispatch(args, preset) or 0
    for path in (
        [recorder.run_dir] if recorder.run_dir else []
    ) + ([recorder.metrics_path] if recorder.metrics_path else []):
        print(f"[obs] telemetry written to {path}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
