"""Command-line interface: regenerate any experiment from the shell.

Usage::

    python -m repro table1 --dataset 5gc --preset smoke
    python -m repro ablation --dataset 5gipc
    python -m repro multitarget
    python -m repro counts --dataset 5gc
    python -m repro runtime --dataset 5gipc --preset fast

Each subcommand runs one artifact of the paper's evaluation section and
prints it in the paper's layout (see EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    format_ablation,
    format_multitarget,
    format_runtime,
    format_table1,
    format_variant_counts,
    get_preset,
    measure_runtime,
    run_ablation,
    run_multitarget,
    run_table1,
    summarize_improvement,
    variant_counts,
)


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and analyses.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, *, dataset=True):
        if dataset:
            p.add_argument("--dataset", choices=("5gc", "5gipc"), default="5gc")
        p.add_argument(
            "--preset", choices=("smoke", "fast", "paper"), default=None,
            help="experiment scale (default: $REPRO_PRESET or smoke)",
        )
        p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("table1", help="Table I: the full method/model/shots grid")
    add_common(p)
    p.add_argument("--methods", nargs="*", default=None,
                   help="subset of Table I method names")
    p.add_argument("--models", nargs="*", default=None,
                   help="subset of TNet/MLP/RF/XGB")

    p = sub.add_parser("ablation", help="Table II: reconstruction strategies")
    add_common(p)
    p.add_argument("--model", default="TNet")

    p = sub.add_parser("multitarget", help="Table III: two-target robustness")
    add_common(p, dataset=False)

    p = sub.add_parser("counts", help="§VI-C: variant counts vs shot budget")
    add_common(p)

    p = sub.add_parser("runtime", help="§VI-D: FS / GAN / inference timing")
    add_common(p)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    preset = get_preset(args.preset)

    if args.command == "table1":
        results = run_table1(
            args.dataset,
            preset=preset,
            methods=tuple(args.methods) if args.methods else None,
            models=tuple(args.models) if args.models else None,
            random_state=args.seed,
        )
        print(format_table1(results, dataset=args.dataset.upper()))
        summary = summarize_improvement(results)
        if summary["best_other"] is not None:
            print(
                f"\nFS+GAN gain over SrcOnly: {100 * summary['fsgan_gain']:+.1f}; "
                f"best other ({summary['best_other']}): "
                f"{100 * summary['best_other_gain']:+.1f}"
            )
    elif args.command == "ablation":
        results = run_ablation(
            args.dataset, preset=preset, model=args.model, random_state=args.seed
        )
        print(format_ablation(results, dataset=args.dataset.upper()))
    elif args.command == "multitarget":
        print(format_multitarget(
            run_multitarget(preset=preset, random_state=args.seed)
        ))
    elif args.command == "counts":
        print(format_variant_counts(
            variant_counts(args.dataset, preset=preset, random_state=args.seed)
        ))
    elif args.command == "runtime":
        print(format_runtime(
            measure_runtime(args.dataset, preset=preset, random_state=args.seed)
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
