"""Synthetic 5GIPC dataset: NFV-based 5G IP-core fault detection.

Reproduces the schema of the IEICE RISING 5G IP-core dataset (§IV-B of the
paper) from an explicit SCM (see DESIGN.md §2):

- **5 VNFs** — two IP-core nodes (TR-01, TR-02), two internet gateways
  (IntGW-01, IntGW-02) and a route reflector (RR-01) — each contributing
  CPU, memory, incoming/outgoing packet-rate, status and disk metrics
  (116 features at scale 1.0, including a shared provider-traffic root).
- **Binary fault detection** over four injected fault scenarios (node
  failure, interface failure, packet loss, packet delay), each with a home
  VNF; the *fault type* (5 levels incl. normal) drives the SCM signatures
  and the few-shot stratification, the task label is its binarization.
- **Class imbalance matched to the paper**: source ≈ 5,315 normal +
  100/226/874/619 per fault type; target pool sized for the reported test
  counts (2,060 normal + 95/124/311/546) plus the 10-shot budget.
- **Domain shift as soft interventions** on gateway CPU, packet rates and
  selected memory metrics — the drift the paper surfaces via GMM clustering.

``make_5gipc_multitarget`` builds the Table III scenario: one source and two
distinct target domains whose intervention sets overlap substantially (the
paper's explanation for cross-adapter robustness).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.datasets.scm import (
    DriftBenchmark,
    NodeSpec,
    SoftIntervention,
    StructuralCausalModel,
)
from repro.utils.errors import ValidationError
from repro.utils.validation import check_random_state

VNFS = ("tr01", "tr02", "intgw01", "intgw02", "rr01")
FAULT_TYPES = ("node_failure", "interface_failure", "packet_loss", "packet_delay")
#: fault type → VNF the fault is injected into
FAULT_HOME = {
    "node_failure": "tr01",
    "interface_failure": "intgw01",
    "packet_loss": "tr02",
    "packet_delay": "intgw02",
}
#: fault type → metric groups touched (relative strength)
FAULT_SIGNATURES = {
    "node_failure": {
        "cpu": 1.0, "memory": 1.0, "pkts_in": 1.0, "pkts_out": 1.0,
        "status": 1.0, "disk": 0.8,
    },
    "interface_failure": {"pkts_in": 1.0, "pkts_out": 1.0, "status": 0.9},
    "packet_loss": {"pkts_in": 1.0, "pkts_out": 0.8, "status": 0.4},
    "packet_delay": {"pkts_in": 0.7, "pkts_out": 0.7, "cpu": 0.4},
}

GROUP_SIZES = {"cpu": 5, "memory": 5, "pkts_in": 4, "pkts_out": 4, "status": 3, "disk": 2}

#: fault-type class indices: 0=normal, 1..4 per FAULT_TYPES order
N_TYPES = len(FAULT_TYPES) + 1
CLASS_NAMES = ["normal", "faulty"]

#: per-fault-type sample counts from the paper (source / target-test)
SOURCE_COUNTS = {"normal": 5315, "node_failure": 100, "interface_failure": 226,
                 "packet_loss": 874, "packet_delay": 619}
TARGET_TEST_COUNTS = {"normal": 2060, "node_failure": 95, "interface_failure": 124,
                      "packet_loss": 311, "packet_delay": 546}


@dataclass(frozen=True)
class FiveGIPCConfig:
    """Generation parameters for the synthetic 5GIPC dataset.

    ``sample_scale`` multiplies the paper's per-type counts; ``shot_budget``
    is added to every target type so the test counts survive the largest
    few-shot draw.
    """

    sample_scale: float = 1.0
    feature_scale: float = 1.0
    intervention_strength: float = 1.0
    shot_budget: int = 10
    schema_seed: int = 21
    #: selector for the intervention set: 0 (Table I) / 1 / 2 (Table III)
    drift_profile: int = 0

    def __post_init__(self) -> None:
        if self.sample_scale <= 0 or self.feature_scale <= 0:
            raise ValidationError("sample_scale and feature_scale must be positive")
        if self.shot_budget < 1:
            raise ValidationError("shot_budget must be >= 1")
        if self.drift_profile not in (0, 1, 2):
            raise ValidationError("drift_profile must be 0, 1 or 2")

    def scaled(self, fraction: float) -> "FiveGIPCConfig":
        """A proportionally smaller instance (for tests/benchmarks)."""
        if not 0.0 < fraction <= 1.0:
            raise ValidationError("fraction must be in (0, 1]")
        return replace(
            self,
            sample_scale=self.sample_scale * fraction,
            feature_scale=self.feature_scale * fraction,
        )

    def group_size(self, group: str) -> int:
        return max(1, int(round(GROUP_SIZES[group] * self.feature_scale)))

    def source_count(self, fault_type: str) -> int:
        return max(self.shot_budget, int(round(SOURCE_COUNTS[fault_type] * self.sample_scale)))

    def target_count(self, fault_type: str) -> int:
        base = int(round(TARGET_TEST_COUNTS[fault_type] * self.sample_scale))
        return max(2 * self.shot_budget, base + self.shot_budget)


def build_5gipc_scm(
    config: FiveGIPCConfig | None = None,
) -> tuple[StructuralCausalModel, tuple[SoftIntervention, ...], dict]:
    """Construct the 5GIPC SCM, its drift interventions and a group index.

    Deterministic in ``config`` (structure driven by ``schema_seed``); the
    intervention set depends on ``drift_profile`` so Table III can use two
    target domains against the same source SCM.
    """
    config = config or FiveGIPCConfig()
    rng = check_random_state(config.schema_seed)
    nodes: list[NodeSpec] = []
    groups: dict[str, list[int]] = {}

    def add_node(name, parents=(), weights=(), *, bias=0.0, noise=1.0,
                 nonlinear=False, effects=()):
        nodes.append(NodeSpec(name=name, parents=parents, weights=weights,
                              bias=bias, noise_scale=noise, nonlinear=nonlinear,
                              class_effects=effects))
        return len(nodes) - 1

    root = add_node("core.traffic_root", noise=1.0)
    groups["core"] = [root]

    for vnf in VNFS:
        vnf_driver = add_node(
            f"{vnf}.load.driver",
            parents=(root,),
            weights=(float(rng.uniform(0.6, 0.9)),),
            noise=0.7,
        )
        groups[f"{vnf}.load"] = [vnf_driver]
        for group in ("cpu", "memory", "pkts_in", "pkts_out", "status", "disk"):
            size = config.group_size(group)
            key = f"{vnf}.{group}"
            ids: list[int] = []
            for k in range(size):
                parents = [vnf_driver]
                weights = [float(rng.uniform(0.5, 0.9))]
                if ids and rng.random() < 0.4:
                    parents.append(ids[-1])
                    weights.append(float(rng.uniform(0.3, 0.6)))
                effects = _type_effects(vnf, group, rng)
                ids.append(
                    add_node(
                        f"{key}.m{k}",
                        parents=tuple(parents),
                        weights=tuple(weights),
                        noise=float(rng.uniform(0.5, 0.9)),
                        nonlinear=bool(rng.random() < 0.3),
                        effects=effects,
                    )
                )
            groups[key] = ids

    scm = StructuralCausalModel(nodes, N_TYPES)
    interventions = _build_interventions(config, rng, groups)
    return scm, interventions, groups


def _type_effects(vnf: str, group: str, rng: np.random.Generator) -> tuple[float, ...]:
    """Fault-type signature for one feature of ``vnf.group``."""
    effects = np.zeros(N_TYPES)
    for t, fault in enumerate(FAULT_TYPES, start=1):
        touched = FAULT_SIGNATURES[fault]
        if FAULT_HOME[fault] == vnf and group in touched and rng.random() < 0.7:
            sign = 1.0 if rng.random() < 0.5 else -1.0
            effects[t] = touched[group] * rng.uniform(1.5, 3.0) * sign
        elif group in ("pkts_in", "pkts_out") and fault in ("packet_loss", "packet_delay") \
                and rng.random() < 0.25:
            # congestion propagates weakly to neighbouring VNFs' packet rates
            sign = 1.0 if rng.random() < 0.5 else -1.0
            effects[t] = 0.5 * rng.uniform(1.0, 2.0) * sign
    return tuple(effects)


def _build_interventions(
    config: FiveGIPCConfig,
    rng: np.random.Generator,
    groups: dict[str, list[int]],
) -> tuple[SoftIntervention, ...]:
    """Drift interventions for the configured ``drift_profile``.

    Profiles 1 and 2 (Table III's Target_1/Target_2) draw from a shared
    candidate pool so that roughly 70% of their targets coincide — the
    paper's observed cross-target overlap.  Profile 0 is the Table I drift.
    """
    candidates: list[int] = []
    for vnf in VNFS:
        for group, fraction in (("cpu", 0.5), ("pkts_in", 0.6), ("pkts_out", 0.6),
                                ("memory", 0.3)):
            members = groups[f"{vnf}.{group}"]
            k = max(1, int(round(fraction * len(members))))
            candidates.extend(int(i) for i in rng.choice(members, size=k, replace=False))
    candidates = sorted(set(candidates))

    # deterministic per-profile subset: profile 0 uses all candidates,
    # profiles 1/2 use overlapping ~85% subsets drawn with profile-keyed RNG
    if config.drift_profile == 0:
        chosen = candidates
    else:
        sub_rng = check_random_state(config.schema_seed * 100 + config.drift_profile)
        keep = max(1, int(round(0.85 * len(candidates))))
        chosen = sorted(
            int(i) for i in sub_rng.choice(candidates, size=keep, replace=False)
        )

    tier_rng = check_random_state(config.schema_seed * 1000 + config.drift_profile)
    strength = config.intervention_strength
    interventions = []
    for node in chosen:
        tier = tier_rng.random()
        sign = 1.0 if tier_rng.random() < 0.5 else -1.0
        if tier < 0.55:  # strong: visible with 1 shot per type (5 samples)
            iv = SoftIntervention(
                node=node,
                shift=sign * strength * tier_rng.uniform(2.5, 4.0),
                scale=tier_rng.uniform(1.3, 1.7),
                noise_factor=tier_rng.uniform(1.1, 1.4),
            )
        elif tier < 0.8:  # medium
            iv = SoftIntervention(
                node=node,
                shift=sign * strength * tier_rng.uniform(1.2, 2.0),
                scale=tier_rng.uniform(1.1, 1.3),
            )
        else:  # weak tier: mean-preserving (scale/variance-only) drift
            iv = SoftIntervention(
                node=node,
                shift=0.0,
                scale=tier_rng.uniform(1.4, 1.9),
                noise_factor=tier_rng.uniform(1.3, 1.8),
            )
        interventions.append(iv)
    return tuple(interventions)


def _sample_domain(
    scm: StructuralCausalModel,
    counts: dict[str, int],
    interventions: tuple[SoftIntervention, ...],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample one domain; returns ``(X, y_binary, y_fault_type)``."""
    types = []
    for t, fault_type in enumerate(["normal", *FAULT_TYPES]):
        types.extend([t] * counts[fault_type])
    y_type = np.array(types, dtype=np.int64)
    rng.shuffle(y_type)
    X = scm.sample(y_type, interventions=interventions, random_state=rng)
    y_binary = (y_type > 0).astype(np.int64)
    return X, y_binary, y_type


def make_5gipc(
    config: FiveGIPCConfig | None = None, *, random_state=0
) -> DriftBenchmark:
    """Generate the 5GIPC drift benchmark (binary fault detection)."""
    config = config or FiveGIPCConfig()
    scm, interventions, groups = build_5gipc_scm(config)
    rng = check_random_state(random_state)

    src_counts = {t: config.source_count(t) for t in ["normal", *FAULT_TYPES]}
    tgt_counts = {t: config.target_count(t) for t in ["normal", *FAULT_TYPES]}
    X_source, y_source, y_source_type = _sample_domain(scm, src_counts, (), rng)
    X_target, y_target, y_target_type = _sample_domain(
        scm, tgt_counts, interventions, rng
    )

    return DriftBenchmark(
        X_source=X_source,
        y_source=y_source,
        X_target=X_target,
        y_target=y_target,
        feature_names=scm.feature_names,
        class_names=list(CLASS_NAMES),
        true_variant_indices=scm.intervention_targets(interventions),
        metadata={
            "dataset": "5gipc",
            "groups": groups,
            "config": config,
            "task": "fault_detection",
            "y_source_fault_type": y_source_type,
            "y_target_fault_type": y_target_type,
            "fault_type_names": ["normal", *FAULT_TYPES],
        },
    )


def make_5gipc_multitarget(
    config: FiveGIPCConfig | None = None, *, random_state=0
) -> tuple[DriftBenchmark, DriftBenchmark]:
    """The Table III scenario: one source, two drifted target domains.

    Returns two :class:`DriftBenchmark` objects sharing identical source
    arrays; their targets use drift profiles 1 and 2 (overlapping
    intervention sets).
    """
    config = config or FiveGIPCConfig()
    rng = check_random_state(random_state)
    seed_a, seed_b = int(rng.integers(0, 2**31 - 1)), int(rng.integers(0, 2**31 - 1))
    bench_1 = make_5gipc(replace(config, drift_profile=1), random_state=seed_a)
    bench_2 = make_5gipc(replace(config, drift_profile=2), random_state=seed_b)
    # share one source realization so both adapters see the same training data
    bench_2.X_source = bench_1.X_source
    bench_2.y_source = bench_1.y_source
    bench_2.metadata["y_source_fault_type"] = bench_1.metadata["y_source_fault_type"]
    return bench_1, bench_2
