"""Dataset substrate: the SCM engine with soft interventions and the two
synthetic 5G drift benchmarks standing in for the paper's public datasets."""

from repro.datasets.fivegc import FiveGCConfig, build_5gc_scm, make_5gc
from repro.datasets.fivegipc import (
    FiveGIPCConfig,
    build_5gipc_scm,
    make_5gipc,
    make_5gipc_multitarget,
)
from repro.datasets.scm import (
    DriftBenchmark,
    NodeSpec,
    SoftIntervention,
    StructuralCausalModel,
)

__all__ = [
    "DriftBenchmark",
    "FiveGCConfig",
    "FiveGIPCConfig",
    "NodeSpec",
    "SoftIntervention",
    "StructuralCausalModel",
    "build_5gc_scm",
    "build_5gipc_scm",
    "make_5gc",
    "make_5gipc",
    "make_5gipc_multitarget",
]
