"""Structural causal model (SCM) engine with soft interventions.

The public 5G datasets the paper evaluates on are unreachable offline, so the
reproduction generates telemetry from an explicit SCM (see DESIGN.md §2).
This preserves — and makes *testable* — exactly the structure the paper's
method exploits:

- every feature is produced by a causal mechanism
  ``x_j = bias + Σ_i w_ji · f(x_i) + class_effect[y] + σ_j · ε``;
- the **source domain** samples the SCM observationally;
- the **target domain** samples the same SCM under *soft interventions*
  (Jaber et al. 2020) on a known subset of nodes: the intervention rescales
  and shifts the node's systematic part and can inflate its noise, i.e. it
  changes ``P(X | Pa(X))`` without severing the graph;
- children of intervened nodes shift *marginally* but keep their conditional
  mechanism, so a correct FS implementation must flag only the true targets.

Because the generator knows the ground-truth intervention targets, the test
suite can score FS's recovery (Jaccard overlap) — something impossible with
the original datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.errors import GraphError, ValidationError
from repro.utils.validation import check_random_state


@dataclass(frozen=True)
class NodeSpec:
    """Mechanism of one SCM node.

    Attributes
    ----------
    name:
        Feature name (e.g. ``"amf.mem.usage"``).
    parents:
        Indices of parent nodes — all must be smaller than this node's index
        (the node list is in topological order).
    weights:
        Linear weight per parent.
    bias, noise_scale:
        Mechanism intercept and additive Gaussian noise scale.
    nonlinear:
        When True, parents enter through ``tanh`` (saturating couplings, as
        in utilization metrics).
    class_effects:
        Additive per-class effect — the fault signature this feature carries
        (zeros = class-independent feature).
    """

    name: str
    parents: tuple[int, ...] = ()
    weights: tuple[float, ...] = ()
    bias: float = 0.0
    noise_scale: float = 1.0
    nonlinear: bool = False
    class_effects: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if len(self.parents) != len(self.weights):
            raise ValidationError(
                f"node {self.name!r}: parents and weights lengths differ"
            )
        if self.noise_scale < 0:
            raise ValidationError(f"node {self.name!r}: noise_scale must be >= 0")


@dataclass(frozen=True)
class SoftIntervention:
    """A soft intervention on one node: ``m ← shift + scale · m`` and
    ``σ ← noise_factor · σ`` applied to the node's systematic part ``m``.

    ``scale=1, shift=0, noise_factor=1`` is the identity (no intervention).
    """

    node: int
    shift: float = 0.0
    scale: float = 1.0
    noise_factor: float = 1.0

    def is_identity(self) -> bool:
        return self.shift == 0.0 and self.scale == 1.0 and self.noise_factor == 1.0


class StructuralCausalModel:
    """An SCM over continuous nodes with class-conditional mechanisms."""

    def __init__(self, nodes: list[NodeSpec], n_classes: int) -> None:
        if not nodes:
            raise ValidationError("SCM needs at least one node")
        if n_classes < 1:
            raise ValidationError("n_classes must be >= 1")
        for j, node in enumerate(nodes):
            for p in node.parents:
                if not 0 <= p < j:
                    raise GraphError(
                        f"node {j} ({node.name!r}) has non-topological parent {p}"
                    )
            if node.class_effects and len(node.class_effects) != n_classes:
                raise ValidationError(
                    f"node {node.name!r}: class_effects must have length {n_classes}"
                )
        self.nodes = list(nodes)
        self.n_classes = n_classes

    @property
    def n_features(self) -> int:
        return len(self.nodes)

    @property
    def feature_names(self) -> list[str]:
        return [node.name for node in self.nodes]

    def sample(
        self,
        labels,
        *,
        interventions: tuple[SoftIntervention, ...] = (),
        random_state=None,
    ) -> np.ndarray:
        """Draw one sample per entry of ``labels`` (ancestral sampling).

        ``interventions`` modify the targeted nodes' mechanisms; the feature
        matrix is returned with columns in node order.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValidationError("labels must be 1-dimensional")
        if labels.size and (labels.min() < 0 or labels.max() >= self.n_classes):
            raise ValidationError("labels out of range for the SCM's class count")
        rng = check_random_state(random_state)
        by_node: dict[int, SoftIntervention] = {}
        for iv in interventions:
            if not 0 <= iv.node < self.n_features:
                raise ValidationError(f"intervention targets unknown node {iv.node}")
            if iv.node in by_node:
                raise ValidationError(f"node {iv.node} intervened twice")
            by_node[iv.node] = iv

        n = labels.shape[0]
        X = np.zeros((n, self.n_features))
        for j, node in enumerate(self.nodes):
            m = np.full(n, node.bias)
            for p, w in zip(node.parents, node.weights):
                contrib = np.tanh(X[:, p]) if node.nonlinear else X[:, p]
                m = m + w * contrib
            if node.class_effects:
                m = m + np.asarray(node.class_effects)[labels]
            sigma = node.noise_scale
            iv = by_node.get(j)
            if iv is not None:
                m = iv.shift + iv.scale * m
                sigma = sigma * iv.noise_factor
            X[:, j] = m + sigma * rng.standard_normal(n)
        return X

    def intervention_targets(
        self, interventions: tuple[SoftIntervention, ...]
    ) -> np.ndarray:
        """Indices of nodes whose mechanism an intervention list actually changes."""
        return np.array(
            sorted({iv.node for iv in interventions if not iv.is_identity()}),
            dtype=np.int64,
        )

    def adjacency(self) -> np.ndarray:
        """Boolean adjacency matrix A[i, j] = True iff ``i → j``."""
        A = np.zeros((self.n_features, self.n_features), dtype=bool)
        for j, node in enumerate(self.nodes):
            for p in node.parents:
                A[p, j] = True
        return A


@dataclass
class DriftBenchmark:
    """A complete source/target drift scenario ready for the DA pipeline.

    Attributes
    ----------
    X_source, y_source:
        Observational (source-domain) training data.
    X_target, y_target:
        Interventional (target-domain) pool; the few-shot protocol draws the
        target training samples from it and tests on the remainder.
    feature_names, class_names:
        Column / label vocabularies.
    true_variant_indices:
        Ground-truth intervention targets (for validation only — never given
        to the methods under evaluation).
    """

    X_source: np.ndarray
    y_source: np.ndarray
    X_target: np.ndarray
    y_target: np.ndarray
    feature_names: list[str]
    class_names: list[str]
    true_variant_indices: np.ndarray
    metadata: dict = field(default_factory=dict)

    @property
    def n_features(self) -> int:
        return self.X_source.shape[1]

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def few_shot_split(
        self, shots: int, *, random_state=None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split the target pool into ``shots``-per-fault-type train + rest test.

        Mirrors the paper's protocol (§VI-B): target training samples are
        drawn at random per *fault type* (normal counts as a type), everything
        else in the pool is test data.  For the binary 5GIPC task the fault
        type is finer than the task label; generators record it under
        ``metadata["y_target_fault_type"]`` and the split stratifies on it.
        """
        from repro.ml.model_selection import sample_few_shot

        strata = self.metadata.get("y_target_fault_type", self.y_target)
        _, _, idx = sample_few_shot(
            self.X_target, np.asarray(strata), shots=shots, random_state=random_state
        )
        mask = np.ones(self.X_target.shape[0], dtype=bool)
        mask[idx] = False
        return (
            self.X_target[idx],
            self.y_target[idx],
            self.X_target[mask],
            self.y_target[mask],
        )
