"""Synthetic 5GC dataset: cloud-native 5G mobile-core failure classification.

Reproduces the schema of the ITU AI-for-Good network-fault-management dataset
the paper uses (§IV-A) from an explicit SCM (the portal is unreachable
offline; see DESIGN.md §2 for the substitution argument):

- **442 telemetry features** grouped per VNF (AMF, AUSF, UDM) into traffic,
  interface, memory, CPU, system-load and 5G-core metric groups, plus shared
  infrastructure metrics, wired together by a causal graph (group drivers
  descend from per-VNF load drivers, which descend from a global traffic
  root).
- **16 classes**: normal plus five fault types (bridge deletion, interface
  down, interface packet loss, memory stress, vCPU overload) applied to each
  of the three VNFs.  Each (VNF, fault) class imprints additive signatures on
  the metric groups that fault physically touches.
- **Domain shift as soft interventions**: the target domain (the "real
  network") re-samples the same SCM under soft interventions on a subset of
  traffic/memory/CPU/infrastructure features — changed traffic patterns, per
  the paper.  Intervention strengths come in three tiers so that few-shot FS
  detects progressively more targets with more target samples (the paper's
  35/68/75 progression).

Default sizes match the paper: 3,645 source samples, a target pool sized for
873 test samples plus the largest few-shot budget.  ``FiveGCConfig.scaled``
produces proportionally smaller instances for fast tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.scm import (
    DriftBenchmark,
    NodeSpec,
    SoftIntervention,
    StructuralCausalModel,
)
from repro.utils.errors import ValidationError
from repro.utils.validation import check_random_state

VNFS = ("amf", "ausf", "udm")
FAULT_TYPES = (
    "bridge_delete",
    "interface_down",
    "packet_loss",
    "memory_stress",
    "vcpu_overload",
)

#: metric groups per VNF and their size at feature_scale=1.0
GROUP_SIZES = {
    "traffic": 30,
    "interface": 25,
    "memory": 20,
    "cpu": 20,
    "load": 10,
    "core": 25,
}
N_INFRA = 49  # shared infrastructure metrics (+3 per-VNF load drivers → 442 total)

#: which groups a fault type touches, with relative signature strength
FAULT_SIGNATURES = {
    "bridge_delete": {"interface": 0.9, "traffic": 0.7},
    "interface_down": {"interface": 1.0, "traffic": 0.8},
    "packet_loss": {"traffic": 1.0, "interface": 0.5},
    "memory_stress": {"memory": 1.0, "load": 0.6},
    "vcpu_overload": {"cpu": 1.0, "load": 0.7},
}


@dataclass(frozen=True)
class FiveGCConfig:
    """Generation parameters for the synthetic 5GC dataset.

    ``feature_scale`` shrinks every metric group proportionally (1.0 → 442
    features); sample counts are explicit.  ``intervention_strength``
    multiplies every soft-intervention shift (1.0 = paper-calibrated drift).
    """

    n_source: int = 3645
    n_target: int = 1033  # 873 test + 160 max few-shot budget
    feature_scale: float = 1.0
    intervention_strength: float = 1.0
    schema_seed: int = 7

    def __post_init__(self) -> None:
        if self.n_source < 16 or self.n_target < 16:
            raise ValidationError("need at least one sample per class in each domain")
        if self.feature_scale <= 0:
            raise ValidationError("feature_scale must be positive")
        if self.intervention_strength < 0:
            raise ValidationError("intervention_strength must be non-negative")

    def scaled(self, fraction: float) -> "FiveGCConfig":
        """A proportionally smaller instance (for tests/benchmarks)."""
        if not 0.0 < fraction <= 1.0:
            raise ValidationError("fraction must be in (0, 1]")
        return replace(
            self,
            n_source=max(64, int(self.n_source * fraction)),
            n_target=max(64, int(self.n_target * fraction)),
            feature_scale=self.feature_scale * fraction,
        )

    def group_size(self, group: str) -> int:
        return max(2, int(round(GROUP_SIZES[group] * self.feature_scale)))

    def n_infra(self) -> int:
        return max(3, int(round(N_INFRA * self.feature_scale)))


CLASS_NAMES = ["normal"] + [f"{vnf}_{fault}" for vnf in VNFS for fault in FAULT_TYPES]
N_CLASSES = len(CLASS_NAMES)  # 16


def _class_index(vnf: str, fault: str) -> int:
    return 1 + VNFS.index(vnf) * len(FAULT_TYPES) + FAULT_TYPES.index(fault)


def build_5gc_scm(
    config: FiveGCConfig | None = None,
) -> tuple[StructuralCausalModel, tuple[SoftIntervention, ...], dict]:
    """Construct the 5GC SCM, its drift interventions, and a group index.

    The returned ``groups`` dict maps ``"amf.traffic"``-style keys (plus
    ``"infra"``) to lists of column indices.  The schema is a deterministic
    function of ``config`` (structure randomness is driven by
    ``schema_seed``), so every call with the same config yields the same
    causal graph, signatures and intervention targets.
    """
    config = config or FiveGCConfig()
    rng = check_random_state(config.schema_seed)
    nodes: list[NodeSpec] = []
    groups: dict[str, list[int]] = {}

    def add_node(
        name: str,
        parents: tuple[int, ...] = (),
        weights: tuple[float, ...] = (),
        *,
        bias: float = 0.0,
        noise: float = 1.0,
        nonlinear: bool = False,
        effects: tuple[float, ...] = (),
    ) -> int:
        nodes.append(
            NodeSpec(
                name=name,
                parents=parents,
                weights=weights,
                bias=bias,
                noise_scale=noise,
                nonlinear=nonlinear,
                class_effects=effects,
            )
        )
        return len(nodes) - 1

    # ---- shared infrastructure metrics ---------------------------------
    root = add_node("infra.traffic_root", bias=0.0, noise=1.0)
    infra_ids = [root]
    for k in range(1, config.n_infra()):
        parent = int(rng.choice(infra_ids))
        infra_ids.append(
            add_node(
                f"infra.metric_{k:02d}",
                parents=(parent,),
                weights=(float(rng.uniform(0.4, 0.9)),),
                noise=float(rng.uniform(0.6, 1.0)),
                nonlinear=bool(rng.random() < 0.25),
            )
        )
    groups["infra"] = infra_ids

    # ---- per-VNF metric groups ------------------------------------------
    signatures = _build_signatures(config, rng)
    for vnf in VNFS:
        load_driver = add_node(
            f"{vnf}.load.driver",
            parents=(root,),
            weights=(float(rng.uniform(0.6, 0.9)),),
            noise=0.7,
        )
        for group in ("traffic", "interface", "memory", "cpu", "load", "core"):
            size = config.group_size(group)
            key = f"{vnf}.{group}"
            ids: list[int] = []
            g_parents = (load_driver, root) if group == "traffic" else (load_driver,)
            g_weights = tuple(float(rng.uniform(0.5, 0.9)) for _ in g_parents)
            g_driver = add_node(
                f"{key}.driver",
                parents=g_parents,
                weights=g_weights,
                noise=float(rng.uniform(0.5, 0.8)),
                effects=signatures[key][0],
            )
            ids.append(g_driver)
            for k in range(1, size):
                parents = [g_driver]
                weights = [float(rng.uniform(0.4, 0.9))]
                extra = [i for i in ids[1:] if rng.random() < 0.15][:2]
                for e in extra:
                    parents.append(e)
                    weights.append(float(rng.uniform(0.2, 0.5)))
                ids.append(
                    add_node(
                        f"{key}.m{k:02d}",
                        parents=tuple(parents),
                        weights=tuple(weights),
                        noise=float(rng.uniform(0.5, 1.0)),
                        nonlinear=bool(rng.random() < 0.3),
                        effects=signatures[key][k],
                    )
                )
            groups[key] = ids

    scm = StructuralCausalModel(nodes, N_CLASSES)
    interventions = _build_interventions(config, rng, groups, scm)
    return scm, interventions, groups


def _build_signatures(
    config: FiveGCConfig, rng
) -> dict[str, list[tuple[float, ...]]]:
    """Per-feature class-effect tuples for every ``vnf.group`` key.

    Feature ``k`` of group ``vnf.group`` receives, for each class whose fault
    signature touches that group, an effect sampled as
    ``strength * U(1.2, 2.8) * (+/-1)`` with probability 0.65 (0 otherwise),
    plus a weak cross-talk effect on the VNF's ``core`` group.
    """
    signatures: dict[str, list[tuple[float, ...]]] = {}
    for vnf in VNFS:
        for group in ("traffic", "interface", "memory", "cpu", "load", "core"):
            key = f"{vnf}.{group}"
            size = config.group_size(group)
            per_feature: list[tuple[float, ...]] = []
            for _ in range(size):
                effects = np.zeros(N_CLASSES)
                for fault, touched in FAULT_SIGNATURES.items():
                    cls = _class_index(vnf, fault)
                    if group in touched and rng.random() < 0.65:
                        sign = 1.0 if rng.random() < 0.5 else -1.0
                        effects[cls] = touched[group] * rng.uniform(1.2, 2.8) * sign
                    elif group == "core" and rng.random() < 0.4:
                        sign = 1.0 if rng.random() < 0.5 else -1.0
                        effects[cls] = 0.4 * rng.uniform(1.2, 2.8) * sign
                per_feature.append(tuple(effects))
            signatures[key] = per_feature
    return signatures


def _build_interventions(
    config: FiveGCConfig,
    rng,
    groups: dict[str, list[int]],
    scm: StructuralCausalModel,
) -> tuple[SoftIntervention, ...]:
    """Soft interventions modelling the digital-twin -> real-network shift.

    Targets are non-driver features (limited causal fan-out, so the shift
    does not blanket the whole graph through descendants): ~55% of traffic,
    ~25% of memory, ~20% of CPU and ~30% of infrastructure metrics.  Within
    each group, the features carrying the *strongest* fault signatures are
    preferred -- drifting traffic patterns hit exactly the counters failure
    classifiers key on, which is what collapses SrcOnly in the paper.  Three
    strength tiers give the FS method a detection gradient over shot counts.
    """
    target_fractions = {"traffic": 0.55, "memory": 0.25, "cpu": 0.20}

    def effect_norm(node_id: int) -> float:
        effects = scm.nodes[node_id].class_effects
        return float(np.linalg.norm(effects)) if effects else 0.0

    candidates: list[int] = []
    for vnf in VNFS:
        for group, fraction in target_fractions.items():
            members = groups[f"{vnf}.{group}"][1:]  # skip the group driver
            k = max(1, int(round(fraction * len(members))))
            ranked = sorted(members, key=effect_norm, reverse=True)
            candidates.extend(int(i) for i in ranked[:k])
    infra_members = groups["infra"][1:]  # keep the global root observational
    k = max(1, int(round(0.3 * len(infra_members))))
    candidates.extend(int(i) for i in rng.choice(infra_members, size=k, replace=False))

    interventions = []
    strength = config.intervention_strength
    for node in sorted(set(candidates)):
        tier = rng.random()
        sign = 1.0 if rng.random() < 0.5 else -1.0
        if tier < 0.45:  # strong shift: visible with a single shot per class
            # a quarter of this tier inverts the mechanism outright (e.g. a
            # counter whose deviation flips meaning after a reconfiguration)
            scale = (
                -rng.uniform(0.8, 1.2)
                if rng.random() < 0.25
                else rng.uniform(1.4, 2.0)
            )
            iv = SoftIntervention(
                node=node,
                shift=sign * strength * rng.uniform(3.0, 5.0),
                scale=scale,
                noise_factor=rng.uniform(1.1, 1.5),
            )
        elif tier < 0.75:  # medium shift: needs ~5 shots per class
            iv = SoftIntervention(
                node=node,
                shift=sign * strength * rng.uniform(1.5, 2.5),
                scale=rng.uniform(1.1, 1.3),
            )
        else:  # mean-preserving tier: strong amplification/inversion with no
            # shift.  The marginal mean barely moves (class effects are
            # sign-symmetric), so mean-comparison detectors such as ICD are
            # structurally blind to it — yet the *class-conditional* means
            # scale by the same factor, so classifiers trained on source are
            # badly hurt.  Distribution-shape tests (FS's KS component) catch
            # it once the target sample budget grows.
            iv = SoftIntervention(
                node=node,
                shift=0.0,
                scale=rng.uniform(1.4, 1.9),
                noise_factor=rng.uniform(1.3, 1.8),
            )
        interventions.append(iv)
    return tuple(interventions)


def make_5gc(
    config: FiveGCConfig | None = None, *, random_state=0
) -> DriftBenchmark:
    """Generate the full 5GC drift benchmark (source + target pool).

    Labels are distributed (near-)evenly over the 16 classes in both domains,
    matching the paper's "approximately evenly distributed" description.
    """
    config = config or FiveGCConfig()
    scm, interventions, groups = build_5gc_scm(config)
    rng = check_random_state(random_state)

    y_source = np.arange(config.n_source) % N_CLASSES
    rng.shuffle(y_source)
    y_target = np.arange(config.n_target) % N_CLASSES
    rng.shuffle(y_target)

    X_source = scm.sample(y_source, random_state=rng)
    X_target = scm.sample(y_target, interventions=interventions, random_state=rng)

    return DriftBenchmark(
        X_source=X_source,
        y_source=y_source,
        X_target=X_target,
        y_target=y_target,
        feature_names=scm.feature_names,
        class_names=list(CLASS_NAMES),
        true_variant_indices=scm.intervention_targets(interventions),
        metadata={
            "dataset": "5gc",
            "groups": groups,
            "config": config,
            "task": "failure_classification",
        },
    )
