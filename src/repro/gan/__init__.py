"""Generative substrate: the conditional GAN of §V-C and the VAE /
vanilla-autoencoder alternatives used in the Table II ablation.

All three expose the same surface — ``fit(X_inv, X_var, y_onehot)`` and
``generate(X_inv)`` — so the reconstruction step of the pipeline is
strategy-agnostic.
"""

from repro.gan.autoencoder import VanillaAutoencoder
from repro.gan.cgan import ConditionalGAN
from repro.gan.transformer import BlockInfo, TabularTransformer
from repro.gan.vae import ConditionalVAE

__all__ = [
    "BlockInfo",
    "ConditionalGAN",
    "ConditionalVAE",
    "TabularTransformer",
    "VanillaAutoencoder",
]
