"""Vanilla autoencoder reconstruction — the FS+VanillaAE ablation of Table II.

A deterministic regressor from invariant to variant features with the same
two-hidden-layer architecture as the paper's generator.  No latent sampling:
``generate`` ignores noise entirely, which is exactly why it trails the GAN
in the ablation (it regresses to the conditional mean and washes out the
class-conditional variant-feature structure).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.estimator import Estimator, register_estimator
from repro.nn.layers import BatchNorm1d, Dense, ReLU, Tanh
from repro.nn.losses import MSELoss
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.optimizers import Adam
from repro.nn.workspace import Workspace
from repro.obs.hooks import as_hook
from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_dtype,
    check_is_fitted,
    check_random_state,
)


@register_estimator("vanilla_ae")
class VanillaAutoencoder(Estimator):
    """Deterministic ``X_inv → X_var`` reconstruction network.

    ``dtype`` selects the compute dtype: ``"float64"`` (default, exact) or
    ``"float32"`` (fast path, tolerance-bounded).
    """

    _fitted_attr = "network_"
    _state_scalars = ("n_invariant_", "n_variant_", "history_")
    _state_networks = ("network_",)

    def __init__(
        self,
        *,
        hidden_size: int = 128,
        epochs: int = 200,
        batch_size: int = 64,
        lr: float = 2e-4,
        weight_decay: float = 1e-6,
        dtype="float64",
        random_state=None,
    ) -> None:
        if hidden_size < 1 or epochs < 1 or batch_size < 1:
            raise ValidationError("hidden_size, epochs and batch_size must be >= 1")
        self.dtype = dtype
        self._dtype = check_dtype(dtype)
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.random_state = random_state
        self.network_: Sequential | None = None
        self.n_invariant_: int | None = None
        self.n_variant_: int | None = None
        self.history_: list[float] = []

    def _prepare_load(self, meta: dict, state: dict) -> None:
        self._dtype = check_dtype(self.dtype)
        h = self.hidden_size
        build_rng = np.random.default_rng(0)
        seed = lambda: int(build_rng.integers(0, 2**31 - 1))  # noqa: E731
        self.network_ = Sequential(
            [
                Dense(self.n_invariant_, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, self.n_variant_, init="glorot_uniform", random_state=seed()),
                Tanh(),
            ]
        )
        if self._dtype != np.float64:
            self.network_.to(self._dtype)

    def fit(self, X_inv, X_var, y_onehot=None, *, hooks=None) -> "VanillaAutoencoder":
        """Train on source pairs; ``y_onehot`` accepted for API parity (unused).

        ``hooks`` receives per-epoch telemetry (loss, wall time, optional
        gradient norm) exactly like the GAN loop.
        """
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        if X_inv.shape[0] != X_var.shape[0]:
            raise ValidationError("X_inv and X_var must have the same number of rows")
        self.n_invariant_ = X_inv.shape[1]
        self.n_variant_ = X_var.shape[1]
        dt = self._dtype = check_dtype(self.dtype)
        X_inv = np.ascontiguousarray(X_inv, dtype=dt)
        X_var = np.ascontiguousarray(X_var, dtype=dt)
        rng = check_random_state(self.random_state)
        h = self.hidden_size
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        self.network_ = Sequential(
            [
                Dense(self.n_invariant_, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, self.n_variant_, init="glorot_uniform", random_state=seed()),
                Tanh(),
            ]
        )
        if dt != np.float64:
            self.network_.to(dt)
        opt = Adam(self.network_.trainable_layers(), lr=self.lr,
                   weight_decay=self.weight_decay)
        loss_fn = MSELoss()
        ws = Workspace()
        n = X_inv.shape[0]
        batch = min(self.batch_size, n)
        self.history_ = []
        hook = as_hook(hooks)
        registry = get_metrics()
        telemetry = hook.active or registry.enabled
        grad_norms = hook.wants_grad_norms
        hook.on_train_begin(self, self.epochs)
        for epoch in range(self.epochs):
            epoch_t0 = time.perf_counter() if telemetry else 0.0
            grad_norm = 0.0
            losses = []
            for idx in iterate_minibatches(n, batch, rng):
                m = idx.shape[0]
                inv = ws.get("inv", (m, self.n_invariant_), dt)
                np.take(X_inv, idx, axis=0, out=inv)
                var = ws.get("var", (m, self.n_variant_), dt)
                np.take(X_var, idx, axis=0, out=var)
                pred = self.network_.forward(inv, training=True)
                losses.append(loss_fn.forward(pred, var))
                self.network_.backward(loss_fn.backward())
                if grad_norms:
                    grad_norm = opt.grad_norm()
                opt.step()
                opt.zero_grad()
            loss = float(np.mean(losses))
            self.history_.append(loss)
            if telemetry:
                seconds = time.perf_counter() - epoch_t0
                if registry.enabled:
                    registry.histogram("ae_epoch_seconds").observe(seconds)
                    registry.histogram("ae_loss").observe(loss)
                if hook.active:
                    logs = {"loss": loss, "seconds": seconds}
                    if grad_norms:
                        logs["grad_norm"] = grad_norm
                    hook.on_epoch_end(epoch, logs)
        hook.on_train_end({"epochs": self.epochs, "loss": self.history_[-1]})
        return self

    def generate(self, X_inv, *, n_draws: int = 1, random_state=None) -> np.ndarray:
        """Deterministic reconstruction (``n_draws`` ignored; API parity)."""
        check_is_fitted(self, "network_")
        X_inv = check_array(X_inv, name="X_inv")
        if X_inv.shape[1] != self.n_invariant_:
            raise ValidationError(
                f"expected {self.n_invariant_} invariant features, got {X_inv.shape[1]}"
            )
        # forward returns a reused workspace buffer — hand back a fresh array
        out = self.network_.forward(X_inv, training=False)
        return np.array(out, dtype=np.float64)
