"""CTGAN-style tabular data transformer (mode-specific normalization).

§V-C3 of the paper adopts the CTGAN architecture, whose defining data
representation (Xu et al., 2019) this module implements:

- **continuous columns** are fit with a small 1-D Gaussian mixture; each
  value becomes a bounded scalar ``alpha`` (its deviation within the
  assigned mode, clipped to [-1, 1]) plus a one-hot **mode indicator** —
  letting the generator's tanh head model multi-modal telemetry (e.g.
  bimodal CPU utilization) that a single min-max scale would wash out;
- **discrete columns** become one-hot blocks, generated through a
  Gumbel-softmax head.

``output_info`` describes the encoded layout so a generator can attach the
right activation to each block (tanh for scalars, Gumbel-softmax for
indicator blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.gmm import GaussianMixture
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, check_is_fitted, check_random_state


@dataclass(frozen=True)
class BlockInfo:
    """One block of the encoded representation.

    ``kind`` is ``"alpha"`` (bounded scalar, tanh head) or ``"onehot"``
    (categorical indicator, Gumbel-softmax head); ``size`` its width;
    ``column`` the source column index.
    """

    kind: str
    size: int
    column: int


class TabularTransformer:
    """Mode-specific normalization for mixed continuous/discrete tables.

    Parameters
    ----------
    max_modes:
        Maximum Gaussian-mixture modes fitted per continuous column.
    discrete_columns:
        Indices of columns holding categorical codes.
    """

    def __init__(self, *, max_modes: int = 5, discrete_columns: tuple[int, ...] = (),
                 random_state=None) -> None:
        if max_modes < 1:
            raise ValidationError("max_modes must be >= 1")
        self.max_modes = max_modes
        self.discrete_columns = tuple(sorted(set(int(c) for c in discrete_columns)))
        self.random_state = random_state
        self.output_info_: list[BlockInfo] | None = None
        self._column_models: list | None = None
        self.n_features_: int | None = None

    def fit(self, X) -> "TabularTransformer":
        X = check_array(X, min_samples=2)
        self.n_features_ = X.shape[1]
        for c in self.discrete_columns:
            if not 0 <= c < self.n_features_:
                raise ValidationError(f"discrete column {c} out of range")
        rng = check_random_state(self.random_state)
        self.output_info_ = []
        self._column_models = []
        for j in range(self.n_features_):
            col = X[:, j]
            if j in self.discrete_columns:
                categories = np.unique(col.astype(np.int64))
                self._column_models.append(("discrete", categories))
                self.output_info_.append(BlockInfo("onehot", len(categories), j))
            else:
                n_modes = min(self.max_modes, max(1, len(np.unique(col)) // 10 + 1))
                gmm = GaussianMixture(
                    n_modes, random_state=int(rng.integers(0, 2**31 - 1))
                )
                gmm.fit(col[:, None])
                self._column_models.append(("continuous", gmm))
                self.output_info_.append(BlockInfo("alpha", 1, j))
                self.output_info_.append(BlockInfo("onehot", n_modes, j))
        return self

    @property
    def output_dim(self) -> int:
        check_is_fitted(self, "output_info_")
        return sum(block.size for block in self.output_info_)

    def transform(self, X) -> np.ndarray:
        """Encode rows into the (alpha, mode-indicator / one-hot) layout."""
        check_is_fitted(self, "output_info_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} columns, transformer fitted with "
                f"{self.n_features_}"
            )
        pieces = []
        for j, (kind, model) in enumerate(self._column_models):
            col = X[:, j]
            if kind == "discrete":
                categories = model
                onehot = np.zeros((len(col), len(categories)))
                codes = np.searchsorted(categories, col.astype(np.int64))
                if np.any(categories[np.clip(codes, 0, len(categories) - 1)]
                          != col.astype(np.int64)):
                    raise ValidationError(
                        f"column {j} contains categories unseen during fit"
                    )
                onehot[np.arange(len(col)), codes] = 1.0
                pieces.append(onehot)
            else:
                gmm = model
                resp = gmm.predict_proba(col[:, None])
                modes = np.argmax(resp, axis=1)
                mu = gmm.means_[modes, 0]
                sigma = np.sqrt(gmm.variances_[modes, 0])
                alpha = np.clip((col - mu) / (4.0 * sigma), -1.0, 1.0)
                onehot = np.zeros((len(col), gmm.n_components))
                onehot[np.arange(len(col)), modes] = 1.0
                pieces.append(alpha[:, None])
                pieces.append(onehot)
        return np.concatenate(pieces, axis=1)

    def inverse_transform(self, Z) -> np.ndarray:
        """Decode the (alpha, indicator) layout back to original columns."""
        check_is_fitted(self, "output_info_")
        Z = check_array(Z)
        if Z.shape[1] != self.output_dim:
            raise ValidationError(
                f"Z has {Z.shape[1]} columns, expected {self.output_dim}"
            )
        out = np.empty((Z.shape[0], self.n_features_))
        pos = 0
        model_iter = iter(self._column_models)
        block_iter = iter(self.output_info_)
        for kind, model in model_iter:
            if kind == "discrete":
                block = next(block_iter)
                categories = model
                codes = np.argmax(Z[:, pos : pos + block.size], axis=1)
                out[:, block.column] = categories[codes]
                pos += block.size
            else:
                alpha_block = next(block_iter)
                mode_block = next(block_iter)
                gmm = model
                alpha = np.clip(Z[:, pos], -1.0, 1.0)
                pos += 1
                modes = np.argmax(Z[:, pos : pos + mode_block.size], axis=1)
                pos += mode_block.size
                mu = gmm.means_[modes, 0]
                sigma = np.sqrt(gmm.variances_[modes, 0])
                out[:, alpha_block.column] = alpha * 4.0 * sigma + mu
        return out

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
