"""Conditional GAN for reconstructing domain-variant features (§V-C).

Architecture follows CTGAN (Xu et al., 2019) as the paper specifies:

- **Generator** ``G([X_inv, z]) → X̂_var``: two fully connected hidden layers
  with batch normalization and ReLU; tanh output for the (continuous,
  [-1, 1]-scaled) variant features.
- **Discriminator** ``D([X_inv, X_var, Y]) → [0, 1]``: two fully connected
  layers with leaky ReLU and dropout; sigmoid output.  Conditioning the
  discriminator on the one-hot label ``Y`` is the paper's Eq. (7); the
  ``conditional=False`` switch produces the FS+NoCond ablation of Table II.

Training is the alternating minimization of Eqs. (8)–(9): the discriminator
minimizes BCE on real-vs-generated triples, the generator the non-saturating
``-log D(fake)`` objective.  The GAN is trained **exclusively on source
domain data** — the property that lets the downstream models stay frozen.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.estimator import Estimator, register_estimator
from repro.nn.fused import FusedCGANTrainer
from repro.nn.layers import BatchNorm1d, Dense, Dropout, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.workspace import Workspace
from repro.obs.hooks import as_hook
from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_dtype,
    check_is_fitted,
    check_random_state,
)


@register_estimator("cgan")
class ConditionalGAN(Estimator):
    """CTGAN-style conditional GAN trained on source data only.

    Parameters
    ----------
    noise_dim:
        Dimension of the Gaussian noise vector ``z``.  The paper uses 30 for
        the 442-feature 5GC dataset and 15 for the 116-feature 5GIPC dataset —
        small relative to the data so that M=1 Monte-Carlo inference is stable.
    hidden_size:
        Width of the two hidden layers in both G and D (256 / 128 in paper).
    epochs, batch_size:
        Paper defaults: 500 epochs, batch 64 (scaled down in experiments).
    lr, weight_decay:
        Adam settings for both networks (paper: 2e-4 and 1e-6).
    conditional:
        Whether the discriminator sees the one-hot label (False = FS+NoCond).
    d_steps:
        Discriminator updates per generator update.
    dtype:
        Compute dtype for both networks: ``"float64"`` (default, exact) or
        ``"float32"`` (fast path; results are tolerance-bounded, not
        bit-identical).  Noise and dropout masks are always drawn at float64
        so both modes consume the RNG stream identically.
    """

    _fitted_attr = "generator_"
    _state_scalars = ("n_invariant_", "n_variant_", "n_classes_", "history_")
    _state_networks = ("generator_", "discriminator_")

    def __init__(
        self,
        *,
        noise_dim: int = 16,
        hidden_size: int = 128,
        epochs: int = 200,
        batch_size: int = 64,
        lr: float = 2e-4,
        weight_decay: float = 1e-6,
        conditional: bool = True,
        d_steps: int = 1,
        dropout: float = 0.25,
        dtype="float64",
        random_state=None,
    ) -> None:
        if noise_dim < 1:
            raise ValidationError("noise_dim must be >= 1")
        if hidden_size < 1:
            raise ValidationError("hidden_size must be >= 1")
        if epochs < 1 or batch_size < 1 or d_steps < 1:
            raise ValidationError("epochs, batch_size and d_steps must be >= 1")
        self.dtype = dtype
        self._dtype = check_dtype(dtype)
        self.noise_dim = noise_dim
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.conditional = conditional
        self.d_steps = d_steps
        self.dropout = dropout
        self.random_state = random_state
        self.generator_: Sequential | None = None
        self.discriminator_: Sequential | None = None
        self.n_invariant_: int | None = None
        self.n_variant_: int | None = None
        self.n_classes_: int | None = None
        self.history_: dict[str, list[float]] = {"d_loss": [], "g_loss": []}

    # -- serialization ------------------------------------------------------
    def _extra_meta(self) -> dict:
        # the serve path draws MC noise from self._rng; persisting the PCG64
        # state is what makes a reloaded adapter's first generate() call
        # bit-identical to the live pipeline's
        rng = getattr(self, "_rng", None)
        if rng is not None:
            return {"rng_state": rng.bit_generator.state}
        return {}

    def _prepare_load(self, meta: dict, state: dict) -> None:
        self._dtype = check_dtype(self.dtype)
        build_rng = np.random.default_rng(0)
        self.generator_ = self._build_generator(build_rng)
        self.discriminator_ = self._build_discriminator(build_rng)
        if self._dtype != np.float64:
            self.generator_.to(self._dtype)
            self.discriminator_.to(self._dtype)
        self._serve_ws = Workspace()
        self._rng = np.random.default_rng(0)
        rng_state = meta.get("rng_state")
        if rng_state is not None and rng_state.get("bit_generator") == type(
            self._rng.bit_generator
        ).__name__:
            self._rng.bit_generator.state = rng_state

    # -- construction -------------------------------------------------------
    def _build_generator(self, rng: np.random.Generator) -> Sequential:
        h = self.hidden_size
        in_dim = self.n_invariant_ + self.noise_dim
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        return Sequential(
            [
                Dense(in_dim, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, self.n_variant_, init="glorot_uniform", random_state=seed()),
                Tanh(),
            ]
        )

    def _build_discriminator(self, rng: np.random.Generator) -> Sequential:
        h = self.hidden_size
        in_dim = self.n_invariant_ + self.n_variant_
        if self.conditional:
            in_dim += self.n_classes_
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        return Sequential(
            [
                Dense(in_dim, h, random_state=seed()),
                LeakyReLU(0.2),
                Dropout(self.dropout, random_state=seed()),
                Dense(h, h, random_state=seed()),
                LeakyReLU(0.2),
                Dropout(self.dropout, random_state=seed()),
                Dense(h, 1, init="glorot_uniform", random_state=seed()),
                Sigmoid(),
            ]
        )

    # -- training -------------------------------------------------------------
    def fit(self, X_inv, X_var, y_onehot=None, *, hooks=None) -> "ConditionalGAN":
        """Train on source-domain triples ``(X_inv, X_var, Y)``.

        ``y_onehot`` may be omitted when ``conditional=False``.  ``hooks``
        (a :class:`repro.obs.TrainingHook`, a list of them, or None) receives
        per-epoch telemetry: D/G losses, epoch wall time and — for hooks with
        ``wants_grad_norms`` — last-batch gradient norms.  Hooks never touch
        the RNG, so training is byte-identical with or without them.
        """
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        if X_inv.shape[0] != X_var.shape[0]:
            raise ValidationError("X_inv and X_var must have the same number of rows")
        if self.conditional:
            if y_onehot is None:
                raise ValidationError("conditional GAN requires y_onehot")
            y_onehot = check_array(y_onehot, name="y_onehot")
            if y_onehot.shape[0] != X_inv.shape[0]:
                raise ValidationError("y_onehot must match the number of samples")
            self.n_classes_ = y_onehot.shape[1]
        else:
            self.n_classes_ = 0
        self.n_invariant_ = X_inv.shape[1]
        self.n_variant_ = X_var.shape[1]
        dt = self._dtype = check_dtype(self.dtype)
        X_inv = np.ascontiguousarray(X_inv, dtype=dt)
        X_var = np.ascontiguousarray(X_var, dtype=dt)
        if self.conditional:
            y_onehot = np.ascontiguousarray(y_onehot, dtype=dt)
        rng = check_random_state(self.random_state)
        self._rng = rng
        self.generator_ = self._build_generator(rng)
        self.discriminator_ = self._build_discriminator(rng)
        if dt != np.float64:
            self.generator_.to(dt)
            self.discriminator_.to(dt)
        # The whole minibatch update runs in the straight-line fused kernel
        # (flat-parameter Adam, dead-gradient skipping, per-batch buffers);
        # parameters stay shared with the Sequential objects as views.
        trainer = FusedCGANTrainer(
            self.generator_, self.discriminator_,
            noise_dim=self.noise_dim, conditional=self.conditional,
            lr=self.lr, weight_decay=self.weight_decay, dtype=dt,
        )
        trainer.bind(X_inv, X_var, y_onehot if self.conditional else None)
        n = X_inv.shape[0]
        batch = min(self.batch_size, n)
        self.history_ = {"d_loss": [], "g_loss": []}
        hook = as_hook(hooks)
        registry = get_metrics()
        telemetry = hook.active or registry.enabled
        grad_norms = hook.wants_grad_norms
        hook.on_train_begin(self, self.epochs)

        self._serve_ws = Workspace()

        for epoch in range(self.epochs):
            epoch_t0 = time.perf_counter() if telemetry else 0.0
            d_grad_norm = g_grad_norm = 0.0
            d_losses, g_losses = [], []
            for idx in iterate_minibatches(n, batch, rng):
                batch_d, g_loss, dgn, ggn = trainer.minibatch(
                    idx, rng, d_steps=self.d_steps,
                    want_grad_norms=grad_norms,
                )
                d_losses.extend(batch_d)
                g_losses.append(g_loss)
                if grad_norms:
                    d_grad_norm, g_grad_norm = dgn, ggn

            d_loss = float(np.mean(d_losses))
            g_loss = float(np.mean(g_losses))
            self.history_["d_loss"].append(d_loss)
            self.history_["g_loss"].append(g_loss)
            if telemetry:
                seconds = time.perf_counter() - epoch_t0
                if registry.enabled:
                    registry.histogram("gan_epoch_seconds").observe(seconds)
                    registry.histogram("gan_d_loss").observe(d_loss)
                    registry.histogram("gan_g_loss").observe(g_loss)
                if hook.active:
                    logs = {"d_loss": d_loss, "g_loss": g_loss, "seconds": seconds}
                    if grad_norms:
                        logs["d_grad_norm"] = d_grad_norm
                        logs["g_grad_norm"] = g_grad_norm
                    hook.on_epoch_end(epoch, logs)
        hook.on_train_end(
            {
                "epochs": self.epochs,
                "d_loss": self.history_["d_loss"][-1],
                "g_loss": self.history_["g_loss"][-1],
            }
        )
        return self

    def _d_input(self, inv: np.ndarray, var: np.ndarray,
                 cond: np.ndarray | None) -> np.ndarray:
        if self.conditional:
            return np.concatenate([inv, var, cond], axis=1)
        return np.concatenate([inv, var], axis=1)

    # -- inference --------------------------------------------------------
    def generate(self, X_inv, *, n_draws: int = 1, random_state=None) -> np.ndarray:
        """Reconstruct variant features for each row of ``X_inv`` (Eq. 10).

        With ``n_draws > 1`` the Monte-Carlo average over noise draws is
        returned (the M-sample estimate of §V-C2); the paper shows M=1
        suffices when ``noise_dim`` is small.

        All draws run as **one stacked forward pass** over an
        ``(n_draws * n, ·)`` batch: the generator input and noise live in
        reusable serving buffers, so repeated calls at the same shape
        allocate only the returned average.  The noise stream is identical
        to the draw-at-a-time loop (one big C-order draw equals sequential
        per-draw arrays concatenated).
        """
        check_is_fitted(self, "generator_")
        X_inv = check_array(X_inv, name="X_inv")
        if X_inv.shape[1] != self.n_invariant_:
            raise ValidationError(
                f"expected {self.n_invariant_} invariant features, got {X_inv.shape[1]}"
            )
        if n_draws < 1:
            raise ValidationError("n_draws must be >= 1")
        rng = check_random_state(random_state) if random_state is not None else self._rng
        n, n_inv = X_inv.shape[0], self.n_invariant_
        ws = getattr(self, "_serve_ws", None)
        if ws is None:
            ws = self._serve_ws = Workspace()
        dt = getattr(self, "_dtype", np.dtype(np.float64))
        g_in = ws.get("g_in", (n_draws * n, n_inv + self.noise_dim), dt)
        z = ws.get("z", (n_draws * n, self.noise_dim), np.float64)
        rng.standard_normal(out=z)
        inv_rows = g_in[:, :n_inv]
        for d in range(n_draws):
            inv_rows[d * n:(d + 1) * n] = X_inv
        g_in[:, n_inv:] = z
        out = self.generator_.forward(g_in, training=False)
        draws = out.reshape(n_draws, n, self.n_variant_)
        # accumulate sequentially (not .mean(axis=0)): same add order as the
        # per-draw loop, so the only float64 deviation from it is last-ULP
        # BLAS blocking roundoff in the stacked matmuls (<= 1e-12)
        total = np.zeros((n, self.n_variant_))
        for d in range(n_draws):
            total += draws[d]
        total /= n_draws
        return total

    def discriminate(self, X_inv, X_var, y_onehot=None) -> np.ndarray:
        """Discriminator scores in [0, 1] for given triples."""
        check_is_fitted(self, "discriminator_")
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        cond = None
        if self.conditional:
            if y_onehot is None:
                raise ValidationError("conditional GAN requires y_onehot")
            cond = check_array(y_onehot, name="y_onehot")
        # forward returns a reused workspace buffer — hand back a copy
        return self.discriminator_.forward(
            self._d_input(X_inv, X_var, cond), training=False
        ).ravel().copy()
