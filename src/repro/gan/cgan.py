"""Conditional GAN for reconstructing domain-variant features (§V-C).

Architecture follows CTGAN (Xu et al., 2019) as the paper specifies:

- **Generator** ``G([X_inv, z]) → X̂_var``: two fully connected hidden layers
  with batch normalization and ReLU; tanh output for the (continuous,
  [-1, 1]-scaled) variant features.
- **Discriminator** ``D([X_inv, X_var, Y]) → [0, 1]``: two fully connected
  layers with leaky ReLU and dropout; sigmoid output.  Conditioning the
  discriminator on the one-hot label ``Y`` is the paper's Eq. (7); the
  ``conditional=False`` switch produces the FS+NoCond ablation of Table II.

Training is the alternating minimization of Eqs. (8)–(9): the discriminator
minimizes BCE on real-vs-generated triples, the generator the non-saturating
``-log D(fake)`` objective.  The GAN is trained **exclusively on source
domain data** — the property that lets the downstream models stay frozen.
"""

from __future__ import annotations

import time

import numpy as np

from repro.nn.layers import BatchNorm1d, Dense, Dropout, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.losses import BinaryCrossEntropy
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.optimizers import Adam
from repro.obs.hooks import as_hook
from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
)


class ConditionalGAN:
    """CTGAN-style conditional GAN trained on source data only.

    Parameters
    ----------
    noise_dim:
        Dimension of the Gaussian noise vector ``z``.  The paper uses 30 for
        the 442-feature 5GC dataset and 15 for the 116-feature 5GIPC dataset —
        small relative to the data so that M=1 Monte-Carlo inference is stable.
    hidden_size:
        Width of the two hidden layers in both G and D (256 / 128 in paper).
    epochs, batch_size:
        Paper defaults: 500 epochs, batch 64 (scaled down in experiments).
    lr, weight_decay:
        Adam settings for both networks (paper: 2e-4 and 1e-6).
    conditional:
        Whether the discriminator sees the one-hot label (False = FS+NoCond).
    d_steps:
        Discriminator updates per generator update.
    """

    def __init__(
        self,
        *,
        noise_dim: int = 16,
        hidden_size: int = 128,
        epochs: int = 200,
        batch_size: int = 64,
        lr: float = 2e-4,
        weight_decay: float = 1e-6,
        conditional: bool = True,
        d_steps: int = 1,
        dropout: float = 0.25,
        random_state=None,
    ) -> None:
        if noise_dim < 1:
            raise ValidationError("noise_dim must be >= 1")
        if hidden_size < 1:
            raise ValidationError("hidden_size must be >= 1")
        if epochs < 1 or batch_size < 1 or d_steps < 1:
            raise ValidationError("epochs, batch_size and d_steps must be >= 1")
        self.noise_dim = noise_dim
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.conditional = conditional
        self.d_steps = d_steps
        self.dropout = dropout
        self.random_state = random_state
        self.generator_: Sequential | None = None
        self.discriminator_: Sequential | None = None
        self.n_invariant_: int | None = None
        self.n_variant_: int | None = None
        self.n_classes_: int | None = None
        self.history_: dict[str, list[float]] = {"d_loss": [], "g_loss": []}

    # -- construction -------------------------------------------------------
    def _build_generator(self, rng: np.random.Generator) -> Sequential:
        h = self.hidden_size
        in_dim = self.n_invariant_ + self.noise_dim
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        return Sequential(
            [
                Dense(in_dim, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, self.n_variant_, init="glorot_uniform", random_state=seed()),
                Tanh(),
            ]
        )

    def _build_discriminator(self, rng: np.random.Generator) -> Sequential:
        h = self.hidden_size
        in_dim = self.n_invariant_ + self.n_variant_
        if self.conditional:
            in_dim += self.n_classes_
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        return Sequential(
            [
                Dense(in_dim, h, random_state=seed()),
                LeakyReLU(0.2),
                Dropout(self.dropout, random_state=seed()),
                Dense(h, h, random_state=seed()),
                LeakyReLU(0.2),
                Dropout(self.dropout, random_state=seed()),
                Dense(h, 1, init="glorot_uniform", random_state=seed()),
                Sigmoid(),
            ]
        )

    # -- training -------------------------------------------------------------
    def fit(self, X_inv, X_var, y_onehot=None, *, hooks=None) -> "ConditionalGAN":
        """Train on source-domain triples ``(X_inv, X_var, Y)``.

        ``y_onehot`` may be omitted when ``conditional=False``.  ``hooks``
        (a :class:`repro.obs.TrainingHook`, a list of them, or None) receives
        per-epoch telemetry: D/G losses, epoch wall time and — for hooks with
        ``wants_grad_norms`` — last-batch gradient norms.  Hooks never touch
        the RNG, so training is byte-identical with or without them.
        """
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        if X_inv.shape[0] != X_var.shape[0]:
            raise ValidationError("X_inv and X_var must have the same number of rows")
        if self.conditional:
            if y_onehot is None:
                raise ValidationError("conditional GAN requires y_onehot")
            y_onehot = check_array(y_onehot, name="y_onehot")
            if y_onehot.shape[0] != X_inv.shape[0]:
                raise ValidationError("y_onehot must match the number of samples")
            self.n_classes_ = y_onehot.shape[1]
        else:
            self.n_classes_ = 0
        self.n_invariant_ = X_inv.shape[1]
        self.n_variant_ = X_var.shape[1]
        rng = check_random_state(self.random_state)
        self._rng = rng
        self.generator_ = self._build_generator(rng)
        self.discriminator_ = self._build_discriminator(rng)
        g_opt = Adam(self.generator_.trainable_layers(), lr=self.lr,
                     weight_decay=self.weight_decay)
        d_opt = Adam(self.discriminator_.trainable_layers(), lr=self.lr,
                     weight_decay=self.weight_decay)
        bce = BinaryCrossEntropy()
        n = X_inv.shape[0]
        batch = min(self.batch_size, n)
        self.history_ = {"d_loss": [], "g_loss": []}
        hook = as_hook(hooks)
        registry = get_metrics()
        telemetry = hook.active or registry.enabled
        grad_norms = hook.wants_grad_norms
        hook.on_train_begin(self, self.epochs)

        for epoch in range(self.epochs):
            epoch_t0 = time.perf_counter() if telemetry else 0.0
            d_grad_norm = g_grad_norm = 0.0
            d_losses, g_losses = [], []
            for idx in iterate_minibatches(n, batch, rng):
                inv = X_inv[idx]
                var = X_var[idx]
                cond = y_onehot[idx] if self.conditional else None
                m = inv.shape[0]

                for _ in range(self.d_steps):
                    # --- discriminator step (Eq. 8)
                    z = rng.standard_normal((m, self.noise_dim))
                    fake_var = self.generator_.forward(
                        np.concatenate([inv, z], axis=1), training=True
                    )
                    real_in = self._d_input(inv, var, cond)
                    fake_in = self._d_input(inv, fake_var, cond)
                    d_real = self.discriminator_.forward(real_in, training=True)
                    loss_real = bce.forward(d_real, np.ones_like(d_real))
                    self.discriminator_.backward(bce.backward())
                    if grad_norms:
                        d_grad_norm = d_opt.grad_norm()
                    d_opt.step()
                    d_opt.zero_grad()
                    d_fake = self.discriminator_.forward(fake_in, training=True)
                    loss_fake = bce.forward(d_fake, np.zeros_like(d_fake))
                    self.discriminator_.backward(bce.backward())
                    d_opt.step()
                    d_opt.zero_grad()
                    d_losses.append(0.5 * (loss_real + loss_fake))

                # --- generator step (Eq. 9, non-saturating)
                z = rng.standard_normal((m, self.noise_dim))
                g_in = np.concatenate([inv, z], axis=1)
                fake_var = self.generator_.forward(g_in, training=True)
                fake_in = self._d_input(inv, fake_var, cond)
                d_fake = self.discriminator_.forward(fake_in, training=True)
                g_loss = bce.forward(d_fake, np.ones_like(d_fake))
                grad_d_in = self.discriminator_.backward(bce.backward())
                # only the generated slice of D's input reaches the generator
                grad_fake = grad_d_in[:, self.n_invariant_:self.n_invariant_ + self.n_variant_]
                self.generator_.backward(grad_fake)
                if grad_norms:
                    g_grad_norm = g_opt.grad_norm()
                g_opt.step()
                g_opt.zero_grad()
                d_opt.zero_grad()  # discard D grads from the generator pass
                g_losses.append(g_loss)

            d_loss = float(np.mean(d_losses))
            g_loss = float(np.mean(g_losses))
            self.history_["d_loss"].append(d_loss)
            self.history_["g_loss"].append(g_loss)
            if telemetry:
                seconds = time.perf_counter() - epoch_t0
                if registry.enabled:
                    registry.histogram("gan_epoch_seconds").observe(seconds)
                    registry.histogram("gan_d_loss").observe(d_loss)
                    registry.histogram("gan_g_loss").observe(g_loss)
                if hook.active:
                    logs = {"d_loss": d_loss, "g_loss": g_loss, "seconds": seconds}
                    if grad_norms:
                        logs["d_grad_norm"] = d_grad_norm
                        logs["g_grad_norm"] = g_grad_norm
                    hook.on_epoch_end(epoch, logs)
        hook.on_train_end(
            {
                "epochs": self.epochs,
                "d_loss": self.history_["d_loss"][-1],
                "g_loss": self.history_["g_loss"][-1],
            }
        )
        return self

    def _d_input(self, inv: np.ndarray, var: np.ndarray,
                 cond: np.ndarray | None) -> np.ndarray:
        if self.conditional:
            return np.concatenate([inv, var, cond], axis=1)
        return np.concatenate([inv, var], axis=1)

    # -- inference --------------------------------------------------------
    def generate(self, X_inv, *, n_draws: int = 1, random_state=None) -> np.ndarray:
        """Reconstruct variant features for each row of ``X_inv`` (Eq. 10).

        With ``n_draws > 1`` the Monte-Carlo average over noise draws is
        returned (the M-sample estimate of §V-C2); the paper shows M=1
        suffices when ``noise_dim`` is small.
        """
        check_is_fitted(self, "generator_")
        X_inv = check_array(X_inv, name="X_inv")
        if X_inv.shape[1] != self.n_invariant_:
            raise ValidationError(
                f"expected {self.n_invariant_} invariant features, got {X_inv.shape[1]}"
            )
        if n_draws < 1:
            raise ValidationError("n_draws must be >= 1")
        rng = check_random_state(random_state) if random_state is not None else self._rng
        total = np.zeros((X_inv.shape[0], self.n_variant_))
        for _ in range(n_draws):
            z = rng.standard_normal((X_inv.shape[0], self.noise_dim))
            total += self.generator_.forward(
                np.concatenate([X_inv, z], axis=1), training=False
            )
        return total / n_draws

    def discriminate(self, X_inv, X_var, y_onehot=None) -> np.ndarray:
        """Discriminator scores in [0, 1] for given triples."""
        check_is_fitted(self, "discriminator_")
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        cond = None
        if self.conditional:
            if y_onehot is None:
                raise ValidationError("conditional GAN requires y_onehot")
            cond = check_array(y_onehot, name="y_onehot")
        return self.discriminator_.forward(
            self._d_input(X_inv, X_var, cond), training=False
        ).ravel()
