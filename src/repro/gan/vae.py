"""Conditional variational autoencoder — the FS+VAE ablation of Table II.

Encodes ``X_var`` conditioned on ``X_inv`` into a Gaussian latent, decodes
back to ``X̂_var``; at inference the decoder is driven by prior samples, so
the usage mirrors the GAN generator exactly.  The decoder architecture
matches the paper's generator (two hidden layers, batch norm, ReLU, tanh
output) as §VI-E specifies.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.estimator import Estimator, register_estimator
from repro.nn.layers import BatchNorm1d, Dense, ReLU, Tanh
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.optimizers import Adam
from repro.nn.workspace import Workspace
from repro.obs.hooks import as_hook
from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_dtype,
    check_is_fitted,
    check_random_state,
)


@register_estimator("cvae")
class ConditionalVAE(Estimator):
    """CVAE: ``q(z | X_inv, X_var)`` encoder, ``p(X_var | X_inv, z)`` decoder.

    Parameters
    ----------
    latent_dim:
        Latent size (kept equal to the GAN noise dimension in the ablation).
    beta:
        Weight of the KL term.
    dtype:
        Compute dtype: ``"float64"`` (default, exact) or ``"float32"``
        (fast path, tolerance-bounded).  Noise is always drawn at float64.
    """

    _fitted_attr = "decoder_"
    _state_scalars = ("n_invariant_", "n_variant_", "history_")
    _state_networks = ("encoder_", "mu_head_", "logvar_head_", "decoder_")

    def __init__(
        self,
        *,
        latent_dim: int = 16,
        hidden_size: int = 128,
        epochs: int = 200,
        batch_size: int = 64,
        lr: float = 2e-4,
        weight_decay: float = 1e-6,
        beta: float = 1.0,
        dtype="float64",
        random_state=None,
    ) -> None:
        if latent_dim < 1 or hidden_size < 1:
            raise ValidationError("latent_dim and hidden_size must be >= 1")
        if epochs < 1 or batch_size < 1:
            raise ValidationError("epochs and batch_size must be >= 1")
        if beta < 0:
            raise ValidationError("beta must be non-negative")
        self.dtype = dtype
        self._dtype = check_dtype(dtype)
        self.latent_dim = latent_dim
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.beta = beta
        self.random_state = random_state
        self.encoder_: Sequential | None = None
        self.mu_head_: Dense | None = None
        self.logvar_head_: Dense | None = None
        self.decoder_: Sequential | None = None
        self.n_invariant_: int | None = None
        self.n_variant_: int | None = None
        self.history_: list[float] = []

    def _extra_meta(self) -> dict:
        rng = getattr(self, "_rng", None)
        if rng is not None:
            return {"rng_state": rng.bit_generator.state}
        return {}

    def _prepare_load(self, meta: dict, state: dict) -> None:
        self._dtype = check_dtype(self.dtype)
        h = self.hidden_size
        build_rng = np.random.default_rng(0)
        seed = lambda: int(build_rng.integers(0, 2**31 - 1))  # noqa: E731
        self.encoder_ = Sequential(
            [
                Dense(self.n_invariant_ + self.n_variant_, h, random_state=seed()),
                ReLU(),
                Dense(h, h, random_state=seed()),
                ReLU(),
            ]
        )
        self.mu_head_ = Dense(h, self.latent_dim, init="glorot_uniform", random_state=seed())
        self.logvar_head_ = Dense(h, self.latent_dim, init="glorot_uniform",
                                  random_state=seed())
        self.decoder_ = Sequential(
            [
                Dense(self.n_invariant_ + self.latent_dim, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, self.n_variant_, init="glorot_uniform", random_state=seed()),
                Tanh(),
            ]
        )
        if self._dtype != np.float64:
            self.encoder_.to(self._dtype)
            self.mu_head_.to(self._dtype)
            self.logvar_head_.to(self._dtype)
            self.decoder_.to(self._dtype)
        self._serve_ws = Workspace()
        self._rng = np.random.default_rng(0)
        rng_state = meta.get("rng_state")
        if rng_state is not None and rng_state.get("bit_generator") == type(
            self._rng.bit_generator
        ).__name__:
            self._rng.bit_generator.state = rng_state

    def fit(self, X_inv, X_var, y_onehot=None, *, hooks=None) -> "ConditionalVAE":
        """Train on source triples; ``y_onehot`` accepted for API parity (unused).

        ``hooks`` receives per-epoch telemetry (loss, wall time, optional
        gradient norm) exactly like the GAN loop.
        """
        X_inv = check_array(X_inv, name="X_inv")
        X_var = check_array(X_var, name="X_var")
        if X_inv.shape[0] != X_var.shape[0]:
            raise ValidationError("X_inv and X_var must have the same number of rows")
        self.n_invariant_ = X_inv.shape[1]
        self.n_variant_ = X_var.shape[1]
        dt = self._dtype = check_dtype(self.dtype)
        X_inv = np.ascontiguousarray(X_inv, dtype=dt)
        X_var = np.ascontiguousarray(X_var, dtype=dt)
        rng = check_random_state(self.random_state)
        self._rng = rng
        h = self.hidden_size
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731
        self.encoder_ = Sequential(
            [
                Dense(self.n_invariant_ + self.n_variant_, h, random_state=seed()),
                ReLU(),
                Dense(h, h, random_state=seed()),
                ReLU(),
            ]
        )
        self.mu_head_ = Dense(h, self.latent_dim, init="glorot_uniform", random_state=seed())
        self.logvar_head_ = Dense(h, self.latent_dim, init="glorot_uniform",
                                  random_state=seed())
        self.decoder_ = Sequential(
            [
                Dense(self.n_invariant_ + self.latent_dim, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, h, random_state=seed()),
                BatchNorm1d(h),
                ReLU(),
                Dense(h, self.n_variant_, init="glorot_uniform", random_state=seed()),
                Tanh(),
            ]
        )
        if dt != np.float64:
            self.encoder_.to(dt)
            self.mu_head_.to(dt)
            self.logvar_head_.to(dt)
            self.decoder_.to(dt)
        layers = (
            self.encoder_.trainable_layers()
            + [self.mu_head_, self.logvar_head_]
            + self.decoder_.trainable_layers()
        )
        opt = Adam(layers, lr=self.lr, weight_decay=self.weight_decay)
        self._serve_ws = Workspace()
        n = X_inv.shape[0]
        batch = min(self.batch_size, n)
        self.history_ = []
        hook = as_hook(hooks)
        registry = get_metrics()
        telemetry = hook.active or registry.enabled
        grad_norms = hook.wants_grad_norms
        hook.on_train_begin(self, self.epochs)
        for epoch in range(self.epochs):
            epoch_t0 = time.perf_counter() if telemetry else 0.0
            grad_norm = 0.0
            losses = []
            for idx in iterate_minibatches(n, batch, rng):
                inv, var = X_inv[idx], X_var[idx]
                m = inv.shape[0]
                enc = self.encoder_.forward(
                    np.concatenate([inv, var], axis=1), training=True
                )
                mu = self.mu_head_.forward(enc, training=True)
                logvar = np.clip(self.logvar_head_.forward(enc, training=True), -10, 10)
                std = np.exp(0.5 * logvar)
                # noise drawn at float64 (stream parity), cast to compute dtype
                eps = rng.standard_normal(mu.shape).astype(dt, copy=False)
                z = mu + eps * std
                recon = self.decoder_.forward(
                    np.concatenate([inv, z], axis=1), training=True
                )
                diff = recon - var
                recon_loss = float(np.mean(diff**2))
                kl = float(0.5 * np.mean(np.sum(mu**2 + np.exp(logvar) - 1 - logvar, axis=1)))
                losses.append(recon_loss + self.beta * kl)

                # --- backward
                grad_recon = 2.0 * diff / diff.size
                grad_dec_in = self.decoder_.backward(grad_recon)
                grad_z = grad_dec_in[:, self.n_invariant_:]
                # reparameterization: z = mu + eps * exp(logvar/2)
                grad_mu = grad_z + self.beta * mu / m
                grad_logvar = (
                    grad_z * eps * std * 0.5
                    + self.beta * 0.5 * (np.exp(logvar) - 1.0) / m
                )
                grad_enc = self.mu_head_.backward(grad_mu) + self.logvar_head_.backward(
                    grad_logvar
                )
                self.encoder_.backward(grad_enc)
                if grad_norms:
                    grad_norm = opt.grad_norm()
                opt.step()
                opt.zero_grad()
            loss = float(np.mean(losses))
            self.history_.append(loss)
            if telemetry:
                seconds = time.perf_counter() - epoch_t0
                if registry.enabled:
                    registry.histogram("vae_epoch_seconds").observe(seconds)
                    registry.histogram("vae_loss").observe(loss)
                if hook.active:
                    logs = {"loss": loss, "seconds": seconds}
                    if grad_norms:
                        logs["grad_norm"] = grad_norm
                    hook.on_epoch_end(epoch, logs)
        hook.on_train_end({"epochs": self.epochs, "loss": self.history_[-1]})
        return self

    def generate(self, X_inv, *, n_draws: int = 1, random_state=None) -> np.ndarray:
        """Decode prior samples conditioned on ``X_inv`` (GAN-compatible API)."""
        check_is_fitted(self, "decoder_")
        X_inv = check_array(X_inv, name="X_inv")
        if X_inv.shape[1] != self.n_invariant_:
            raise ValidationError(
                f"expected {self.n_invariant_} invariant features, got {X_inv.shape[1]}"
            )
        if n_draws < 1:
            raise ValidationError("n_draws must be >= 1")
        rng = check_random_state(random_state) if random_state is not None else self._rng
        n, n_inv = X_inv.shape[0], self.n_invariant_
        ws = getattr(self, "_serve_ws", None)
        if ws is None:
            ws = self._serve_ws = Workspace()
        dt = getattr(self, "_dtype", np.dtype(np.float64))
        # all draws in one stacked forward pass over reusable serving buffers
        dec_in = ws.get("dec_in", (n_draws * n, n_inv + self.latent_dim), dt)
        z = ws.get("z", (n_draws * n, self.latent_dim), np.float64)
        rng.standard_normal(out=z)
        inv_rows = dec_in[:, :n_inv]
        for d in range(n_draws):
            inv_rows[d * n:(d + 1) * n] = X_inv
        dec_in[:, n_inv:] = z
        out = self.decoder_.forward(dec_in, training=False)
        draws = out.reshape(n_draws, n, self.n_variant_)
        # accumulate sequentially (not .mean(axis=0)): same add order as the
        # per-draw loop, so the only float64 deviation from it is last-ULP
        # BLAS blocking roundoff in the stacked matmuls (<= 1e-12)
        total = np.zeros((n, self.n_variant_))
        for d in range(n_draws):
            total += draws[d]
        total /= n_draws
        return total
