"""Vectorized + parallel CI-test engine for F-node discovery.

The paper's runtime analysis (§VI-D) shows the FS step dominates end-to-end
cost, almost entirely in conditional-independence tests.  This module is the
performance layer behind :class:`repro.causal.FNodeDiscovery`:

- :meth:`CIEngine.marginal_pvalues` computes the size-0 ``X ⊥ F`` test for
  *every* feature in one batched Welch-t + Kolmogorov–Smirnov sweep over the
  column axis — on drifted data most features clear immediately, so this
  single sweep removes the bulk of the per-feature Python-loop iterations.
- :meth:`CIEngine.conditional_pvalues` serves the conditional tests with a
  per-conditioning-tuple cache of design matrices and Cholesky factors, a
  single multi-RHS ridge solve per tuple (betas for all features at once),
  and batched residual statistics per subset level.
- :func:`search_chunk_worker` is the process-pool entry point used by
  ``FNodeDiscovery(n_jobs=...)``; each worker builds its own engine over the
  shared matrices, so serial and parallel runs are bit-identical.

The batched statistics replicate :func:`scipy.stats.ttest_ind`
(``equal_var=False``) and :func:`scipy.stats.ks_2samp` (``method="asymp"``)
exactly, so the engine's p-values match the scalar
:func:`repro.causal.ci_tests.regression_invariance_test` to float64
round-off.
"""

from __future__ import annotations

import os
import time
from itertools import combinations

import numpy as np
from scipy import stats
from scipy.linalg import cho_factor, cho_solve

from repro.utils.errors import ValidationError

DEFAULT_RIDGE = 1e-3

#: one log row per counted CI test: (cond_size, p_value, seconds)
TestLog = list


def batch_welch_t_pvalues(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Two-sided Welch t-test p-value per column of ``A`` (n1, m) vs ``B`` (n2, m).

    Mirrors ``scipy.stats.ttest_ind(a, b, equal_var=False)`` column-wise:
    Satterthwaite degrees of freedom, NaN where the statistic is undefined.
    """
    n1, n2 = A.shape[0], B.shape[0]
    m1, m2 = A.mean(axis=0), B.mean(axis=0)
    vn1 = A.var(axis=0, ddof=1) / n1
    vn2 = B.var(axis=0, ddof=1) / n2
    with np.errstate(divide="ignore", invalid="ignore"):
        df = (vn1 + vn2) ** 2 / (vn1**2 / (n1 - 1) + vn2**2 / (n2 - 1))
        df = np.where(np.isnan(df), 1.0, df)
        t = (m1 - m2) / np.sqrt(vn1 + vn2)
        return 2.0 * stats.t.sf(np.abs(t), df)


def batch_ks_pvalues(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Two-sample KS asymptotic p-value per column, as ``ks_2samp(method="asymp")``.

    The D statistics are computed with the same searchsorted construction as
    scipy (bit-identical); the p-value is the Kolmogorov-Smirnov survival
    function at the scipy-rounded effective sample size.
    """
    n1, n2 = A.shape[0], B.shape[0]
    a = np.sort(A, axis=0)
    b = np.sort(B, axis=0)
    d = np.empty(A.shape[1])
    for k in range(A.shape[1]):
        data_all = np.concatenate([a[:, k], b[:, k]])
        cdf1 = np.searchsorted(a[:, k], data_all, side="right") / n1
        cdf2 = np.searchsorted(b[:, k], data_all, side="right") / n2
        diffs = cdf1 - cdf2
        d[k] = max(np.clip(-diffs.min(), 0, 1), diffs.max())
    big, small = float(max(n1, n2)), float(min(n1, n2))
    en = big * small / (big + small)
    return np.clip(stats.kstwo.sf(d, np.round(en)), 0.0, 1.0)


def combined_invariance_pvalues(res_s: np.ndarray, res_t: np.ndarray) -> np.ndarray:
    """Bonferroni-combined Welch-t + KS p-value per residual column.

    Column-wise replica of the combination logic in
    :func:`repro.causal.ci_tests.regression_invariance_test`: non-finite
    component p-values are dropped, ``min(1, min(p) * n_valid)`` combines the
    survivors, and columns constant in both domains compare the constants.
    """
    p_t = batch_welch_t_pvalues(res_s, res_t)
    p_ks = batch_ks_pvalues(res_s, res_t)
    P = np.stack([p_t, p_ks])
    finite = np.isfinite(P)
    n_valid = finite.sum(axis=0)
    p_min = np.where(finite, P, np.inf).min(axis=0)
    with np.errstate(invalid="ignore"):
        out = np.where(n_valid == 0, 1.0, np.minimum(1.0, p_min * n_valid))
    both_const = (res_s.std(axis=0) == 0) & (res_t.std(axis=0) == 0)
    if np.any(both_const):
        agree = np.isclose(res_s.mean(axis=0), res_t.mean(axis=0))
        out = np.where(both_const, np.where(agree, 1.0, 0.0), out)
    return out


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` setting to a concrete worker count."""
    if n_jobs is None or n_jobs == 1:
        return 1
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if not isinstance(n_jobs, (int, np.integer)) or n_jobs < 1:
        raise ValidationError("n_jobs must be a positive int or -1 (all cores)")
    return int(n_jobs)


class CIEngine:
    """Batched, cached CI tests over one fixed (source, target) matrix pair.

    The matrices are converted/validated once at construction; every repeated
    cost in the discovery inner loop — design-matrix assembly, Gram matrix,
    Cholesky factorization, the multi-RHS ridge solve — is cached keyed by
    the conditioning column tuple, so repeated subsets (common when features
    share correlated parents) are nearly free.
    """

    def __init__(self, X_source, X_target, *, ridge: float = DEFAULT_RIDGE) -> None:
        self.Xs = np.ascontiguousarray(X_source, dtype=np.float64)
        self.Xt = np.ascontiguousarray(X_target, dtype=np.float64)
        if self.Xs.ndim != 2 or self.Xt.ndim != 2:
            raise ValidationError("CIEngine expects 2-D matrices")
        if self.Xs.shape[1] != self.Xt.shape[1]:
            raise ValidationError("domains disagree on feature count")
        self.ridge = float(ridge)
        self._designs: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._marginal: np.ndarray | None = None

    @property
    def n_features(self) -> int:
        return int(self.Xs.shape[1])

    def marginal_pvalues(self) -> np.ndarray:
        """``X ⊥ F`` p-value for every feature in one batched sweep (cached)."""
        if self._marginal is None:
            if self.Xs.shape[0] < 3 or self.Xt.shape[0] < 2:
                self._marginal = np.ones(self.n_features)
            else:
                self._marginal = combined_invariance_pvalues(self.Xs, self.Xt)
        return self._marginal

    def _design(self, cols: tuple[int, ...]):
        """(Zs, Zt, B) for a conditioning tuple; B solves the ridge system for
        **all** features at once (one multi-RHS ``cho_solve`` per tuple)."""
        entry = self._designs.get(cols)
        if entry is None:
            idx = list(cols)
            Zs = np.column_stack([np.ones(self.Xs.shape[0]), self.Xs[:, idx]])
            Zt = np.column_stack([np.ones(self.Xt.shape[0]), self.Xt[:, idx]])
            A = Zs.T @ Zs + self.ridge * np.eye(Zs.shape[1])
            B = cho_solve(cho_factor(A), Zs.T @ self.Xs)
            entry = (Zs, Zt, B)
            self._designs[cols] = entry
        return entry

    def conditional_pvalues(
        self, j: int, subsets: list[tuple[int, ...]]
    ) -> np.ndarray:
        """p-values for ``X_j ⊥ F | S`` for every subset S, batched.

        Residuals for all subsets are assembled into one matrix and pushed
        through a single batched Welch-t + KS pass.
        """
        if self.Xs.shape[0] < 3 or self.Xt.shape[0] < 2:
            return np.ones(len(subsets))
        xs = self.Xs[:, j]
        xt = self.Xt[:, j]
        res_s = np.empty((self.Xs.shape[0], len(subsets)))
        res_t = np.empty((self.Xt.shape[0], len(subsets)))
        for k, cols in enumerate(subsets):
            Zs, Zt, B = self._design(cols)
            beta = B[:, j]
            res_s[:, k] = xs - Zs @ beta
            res_t[:, k] = xt - Zt @ beta
        return combined_invariance_pvalues(res_s, res_t)

    def search_feature(
        self,
        j: int,
        candidates: tuple[int, ...],
        marginal_p: float,
        *,
        alpha: float,
        max_cond_size: int,
    ) -> tuple[float, tuple[int, ...], int, TestLog]:
        """PC-style subset search for one feature's edge to the F-node.

        Returns ``(best_p, separating_set, n_conditional_tests, log)`` with
        the exact early-break semantics of the per-feature reference loop:
        subsets are scored level-batched, but only the prefix up to (and
        including) the first clearing subset counts toward ``n_tests`` /
        ``best_p`` / the observation log, so results and test counts match
        the sequential search.
        """
        best_p = float(marginal_p)
        separating: tuple[int, ...] = ()
        n_tests = 0
        log: TestLog = []
        if best_p >= alpha:
            return best_p, separating, n_tests, log
        for size in range(1, max_cond_size + 1):
            subsets = list(combinations(candidates, size))
            if not subsets:
                continue
            t0 = time.perf_counter()
            ps = self.conditional_pvalues(j, subsets)
            per_test = (time.perf_counter() - t0) / len(subsets)
            above = np.nonzero(ps >= alpha)[0]
            cleared = above.size > 0
            n_counted = int(above[0]) + 1 if cleared else len(subsets)
            for idx in range(n_counted):
                p = float(ps[idx])
                n_tests += 1
                log.append((size, p, per_test))
                if p > best_p:
                    best_p = p
                    separating = subsets[idx]
            if cleared:
                break
        return best_p, separating, n_tests, log


# ---------------------------------------------------------------------------
# process-pool plumbing: each worker holds one engine over the shared
# matrices (shipped once per worker via the pool initializer, not per task)

_WORKER_ENGINE: CIEngine | None = None
_WORKER_PARAMS: dict | None = None


def init_search_worker(Xs, Xt, alpha: float, max_cond_size: int, ridge: float) -> None:
    """Pool initializer: build this worker's engine once."""
    global _WORKER_ENGINE, _WORKER_PARAMS
    _WORKER_ENGINE = CIEngine(Xs, Xt, ridge=ridge)
    _WORKER_PARAMS = {"alpha": alpha, "max_cond_size": max_cond_size}


def search_chunk_worker(tasks):
    """Run :meth:`CIEngine.search_feature` for a chunk of (j, candidates, p0)."""
    engine, params = _WORKER_ENGINE, _WORKER_PARAMS
    return [
        (j,) + engine.search_feature(j, candidates, marginal_p, **params)
        for j, candidates, marginal_p in tasks
    ]
