"""Vectorized + parallel CI-test engine for F-node discovery.

The paper's runtime analysis (§VI-D) shows the FS step dominates end-to-end
cost, almost entirely in conditional-independence tests.  This module is the
performance layer behind :class:`repro.causal.FNodeDiscovery`:

- :meth:`CIEngine.marginal_pvalues` computes the size-0 ``X ⊥ F`` test for
  *every* feature in one batched Welch-t + Kolmogorov–Smirnov sweep over the
  column axis — on drifted data most features clear immediately, so this
  single sweep removes the bulk of the per-feature Python-loop iterations.
- :meth:`CIEngine.conditional_pvalues` serves the conditional tests with a
  per-conditioning-tuple cache of design matrices and Cholesky factors and
  a per-``(tuple, feature)`` ridge solve: each beta is one ``cho_solve``
  over a single right-hand side, so the per-tuple cost no longer scales
  with the total feature count (the PR-2 multi-RHS solve computed betas
  for *all* features per tuple — ``O(n·d)`` waste per subset at the
  442-feature width; the frozen ``multi_rhs=True`` mode keeps that exact
  computation as a benchmark baseline).
- ``stats_dtype="float32"`` runs the whole statistics path — design
  matrices, Cholesky factors, residuals, batched test statistics — in
  float32, then re-verifies every p-value within ``verify_margin`` of the
  decision threshold in float64, so variant *decisions* match the float64
  path (see EXPERIMENTS.md for the policy).
- :meth:`CIEngine.search_feature` supports candidate-pool pruning (a
  primary pool searched first, an optional fallback pool searched only if
  the primary pool never separates the feature — decision-exact, see
  :class:`repro.causal.FNodeDiscovery`) and anytime budgets (test-count
  and wall-clock) with sequential-equivalent test accounting.
- :func:`search_chunk_worker` is the process-pool entry point used by
  ``FNodeDiscovery(n_jobs=...)``; workers attach the matrices zero-copy
  from shared memory (:mod:`repro.causal.shm`) or, as a fallback, receive
  them pickled once per worker — either way each worker builds its own
  engine over the same matrices, so serial and parallel runs are
  bit-identical.

The batched statistics replicate :func:`scipy.stats.ttest_ind`
(``equal_var=False``) and :func:`scipy.stats.ks_2samp` (``method="asymp"``)
exactly, so the engine's p-values match the scalar
:func:`repro.causal.ci_tests.regression_invariance_test` to float64
round-off.
"""

from __future__ import annotations

import os
import time
from itertools import combinations

import numpy as np
from scipy import stats
from scipy.linalg import LinAlgError, cho_factor, cho_solve

from repro.causal.ci_tests import ks_pvalue
from repro.utils.errors import ValidationError

DEFAULT_RIDGE = 1e-3

#: supported statistics dtypes (FSConfig.stats_dtype)
STATS_DTYPES = ("float64", "float32")

#: one log row per counted CI test: (cond_size, p_value, seconds)
TestLog = list

#: subsets per deadline poll inside one search level — small enough that a
#: wall-clock budget cannot overshoot by a whole feature's subset search,
#: large enough to keep the batched statistics amortized
DEADLINE_CHUNK = 32


def batch_welch_t_pvalues(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Two-sided Welch t-test p-value per column of ``A`` (n1, m) vs ``B`` (n2, m).

    Mirrors ``scipy.stats.ttest_ind(a, b, equal_var=False)`` column-wise:
    Satterthwaite degrees of freedom, NaN where the statistic is undefined.
    """
    n1, n2 = A.shape[0], B.shape[0]
    m1, m2 = A.mean(axis=0), B.mean(axis=0)
    vn1 = A.var(axis=0, ddof=1) / n1
    vn2 = B.var(axis=0, ddof=1) / n2
    with np.errstate(divide="ignore", invalid="ignore"):
        df = (vn1 + vn2) ** 2 / (vn1**2 / (n1 - 1) + vn2**2 / (n2 - 1))
        df = np.where(np.isnan(df), 1.0, df)
        t = (m1 - m2) / np.sqrt(vn1 + vn2)
        return 2.0 * stats.t.sf(np.abs(t), df)


def batch_ks_pvalues(
    A: np.ndarray, B: np.ndarray, *, exact: bool = True
) -> np.ndarray:
    """Two-sample KS asymptotic p-value per column, as ``ks_2samp(method="asymp")``.

    The D statistics are computed with the same searchsorted construction as
    scipy (bit-identical); with ``exact=True`` the p-value is the
    Kolmogorov-Smirnov survival function at the scipy-rounded effective
    sample size — bit-identical to scipy, but at few-shot sample sizes that
    routes into scipy's exact small-``n`` Pomeranz evaluation, which
    dominates discovery wall-clock.  ``exact=False`` (the float32 fast
    path) evaluates the limiting Kolmogorov distribution at the
    Stephens-corrected argument instead — within ~1e-3 of the exact tail
    for the sample sizes used here, orders of magnitude cheaper, and always
    paired with a float64 exact re-check of near-threshold p-values.
    """
    n1, n2 = A.shape[0], B.shape[0]
    a = np.sort(A, axis=0)
    b = np.sort(B, axis=0)
    d = np.empty(A.shape[1])
    for k in range(A.shape[1]):
        data_all = np.concatenate([a[:, k], b[:, k]])
        cdf1 = np.searchsorted(a[:, k], data_all, side="right") / n1
        cdf2 = np.searchsorted(b[:, k], data_all, side="right") / n2
        diffs = cdf1 - cdf2
        d[k] = max(np.clip(-diffs.min(), 0, 1), diffs.max())
    return ks_pvalue(d, n1, n2, mode="exact" if exact else "stephens")


def combined_invariance_pvalues(
    res_s: np.ndarray, res_t: np.ndarray, *, ks_exact: bool = True
) -> np.ndarray:
    """Bonferroni-combined Welch-t + KS p-value per residual column.

    Column-wise replica of the combination logic in
    :func:`repro.causal.ci_tests.regression_invariance_test`: non-finite
    component p-values are dropped, ``min(1, min(p) * n_valid)`` combines the
    survivors, and columns constant in both domains compare the constants.
    ``ks_exact`` is forwarded to :func:`batch_ks_pvalues`.
    """
    p_t = batch_welch_t_pvalues(res_s, res_t)
    p_ks = batch_ks_pvalues(res_s, res_t, exact=ks_exact)
    P = np.stack([p_t, p_ks])
    finite = np.isfinite(P)
    n_valid = finite.sum(axis=0)
    p_min = np.where(finite, P, np.inf).min(axis=0)
    with np.errstate(invalid="ignore"):
        out = np.where(n_valid == 0, 1.0, np.minimum(1.0, p_min * n_valid))
    both_const = (res_s.std(axis=0) == 0) & (res_t.std(axis=0) == 0)
    if np.any(both_const):
        agree = np.isclose(
            res_s.mean(axis=0, dtype=np.float64),
            res_t.mean(axis=0, dtype=np.float64),
        )
        out = np.where(both_const, np.where(agree, 1.0, 0.0), out)
    return out


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` setting to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per available
    core.  Everything else must be a positive integer — ``0`` and negative
    values other than ``-1`` have no meaningful worker-count reading and are
    rejected rather than silently clamped.
    """
    if isinstance(n_jobs, bool):
        raise ValidationError(
            f"n_jobs must be a positive integer or -1 (all cores), got {n_jobs!r}"
        )
    if n_jobs is None or n_jobs == 1:
        return 1
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if not isinstance(n_jobs, (int, np.integer)) or n_jobs < 1:
        raise ValidationError(
            "n_jobs must be a positive integer or -1 (all cores), got "
            f"{n_jobs!r}; 0 and negative values other than -1 do not describe "
            "a worker count"
        )
    return int(n_jobs)


def rank_candidates(
    corr_row: np.ndarray, marginal_p: np.ndarray, candidates: tuple[int, ...]
) -> tuple[int, ...]:
    """Order conditioning candidates by marginal-association effect size.

    A candidate is a promising conditioner for feature ``j`` when it is both
    strongly correlated with ``j`` (it proxies a parent) and itself
    marginally drifted (conditioning on a shifted parent is what separates a
    drifted *child* from the F-node).  The score multiplies the absolute
    source correlation by a drift weight in [1, 2] derived from the
    candidate's own marginal p-value; ties break on the original candidate
    order (stable sort), so the ranking is deterministic.
    """
    if len(candidates) <= 1:
        return candidates
    idx = np.asarray(candidates, dtype=np.int64)
    with np.errstate(invalid="ignore"):
        corr_abs = np.abs(corr_row[idx])
    corr_abs = np.where(np.isfinite(corr_abs), corr_abs, 0.0)
    drift = 2.0 - np.clip(marginal_p[idx], 0.0, 1.0)
    order = np.argsort(-(corr_abs * drift), kind="stable")
    return tuple(int(idx[i]) for i in order)


class CIEngine:
    """Batched, cached CI tests over one fixed (source, target) matrix pair.

    The matrices are converted/validated once at construction; every repeated
    cost in the discovery inner loop — design-matrix assembly, Gram matrix,
    Cholesky factorization, the per-feature ridge solve — is cached keyed by
    the conditioning column tuple, so repeated subsets (common when features
    share correlated parents) are nearly free.

    Parameters
    ----------
    stats_dtype:
        ``"float64"`` (exact) or ``"float32"``: run the statistics path in
        single precision.  With ``verify_alpha`` set, any p-value within
        ``verify_margin`` of it is recomputed in float64 and substituted, so
        threshold decisions match the float64 path.
    verify_alpha / verify_margin:
        Decision threshold and verification band for the float32 path.
        ``verify_margin`` defaults to ``verify_alpha / 2``.
    multi_rhs:
        Frozen PR-2 solve mode: one multi-RHS ``cho_solve`` per conditioning
        tuple, computing betas for **all** features at once.  Kept as the
        benchmark baseline (its per-tuple cost scales with the feature
        count); float64 only.
    stat_cache:
        Optional :class:`repro.causal.warm.CIStatCache` used as a
        read-through/write-through store for the source-side regression
        state (Cholesky factors, betas, source residuals).  The caller is
        responsible for only attaching a cache whose guards (ridge, dtype,
        source fingerprint) match — under those guards reused entries are
        byte-for-byte what this engine would compute.  Hit/miss traffic is
        counted in :attr:`cache_stats`.
    """

    def __init__(
        self,
        X_source,
        X_target,
        *,
        ridge: float = DEFAULT_RIDGE,
        stats_dtype: str = "float64",
        verify_alpha: float | None = None,
        verify_margin: float | None = None,
        multi_rhs: bool = False,
        stat_cache=None,
    ) -> None:
        self.Xs64 = np.ascontiguousarray(X_source, dtype=np.float64)
        self.Xt64 = np.ascontiguousarray(X_target, dtype=np.float64)
        if self.Xs64.ndim != 2 or self.Xt64.ndim != 2:
            raise ValidationError("CIEngine expects 2-D matrices")
        if self.Xs64.shape[1] != self.Xt64.shape[1]:
            raise ValidationError("domains disagree on feature count")
        if stats_dtype not in STATS_DTYPES:
            raise ValidationError(
                f"stats_dtype must be one of {STATS_DTYPES}, got {stats_dtype!r}"
            )
        if multi_rhs and stats_dtype != "float64":
            raise ValidationError("multi_rhs mode supports float64 only")
        if multi_rhs and stat_cache is not None:
            raise ValidationError(
                "multi_rhs is the frozen benchmark baseline and does not "
                "support a warm stat_cache"
            )
        self.ridge = float(ridge)
        self.stats_dtype = np.dtype(stats_dtype)
        self.multi_rhs = bool(multi_rhs)
        if self.stats_dtype == np.float64:
            self.Xs, self.Xt = self.Xs64, self.Xt64
        else:
            self.Xs = self.Xs64.astype(self.stats_dtype)
            self.Xt = self.Xt64.astype(self.stats_dtype)
        self.verify_alpha = None if verify_alpha is None else float(verify_alpha)
        if verify_margin is None:
            verify_margin = (self.verify_alpha or 0.0) / 2.0
        self.verify_margin = float(verify_margin)
        self._verify_engine: CIEngine | None = None
        # cols -> (Zs, Zt, factor) in single-RHS mode, (Zs, Zt, B) in multi
        self._designs: dict[tuple[int, ...], tuple] = {}
        self._betas: dict[tuple[int, ...], dict[int, np.ndarray]] = {}
        self._marginal: np.ndarray | None = None
        self.stat_cache = stat_cache
        # in-run cache traffic (design/beta) plus cross-run warm-cache
        # traffic; exported as the fs.cache.* metric family by FNodeDiscovery
        self.cache_stats: dict[str, int] = {
            "design_hits": 0,
            "design_misses": 0,
            "beta_hits": 0,
            "beta_misses": 0,
            "warm_hits": 0,
            "warm_misses": 0,
        }

    def merge_cache_stats(self, other: dict) -> None:
        """Fold a worker's cache-traffic delta into this engine's counters."""
        for key, value in other.items():
            self.cache_stats[key] = self.cache_stats.get(key, 0) + int(value)

    @property
    def n_features(self) -> int:
        return int(self.Xs64.shape[1])

    # -- float64 verification ------------------------------------------------

    @property
    def _verifies(self) -> bool:
        return self.stats_dtype == np.float32 and self.verify_alpha is not None

    def _verifier(self) -> "CIEngine":
        """Lazy float64 companion engine over the same (shared) matrices."""
        if self._verify_engine is None:
            self._verify_engine = CIEngine(
                self.Xs64, self.Xt64, ridge=self.ridge, stats_dtype="float64"
            )
        return self._verify_engine

    def _borderline(self, ps: np.ndarray) -> np.ndarray:
        """Indices whose p-value sits within the verification band."""
        return np.nonzero(np.abs(ps - self.verify_alpha) <= self.verify_margin)[0]

    # -- marginal sweep ------------------------------------------------------

    def marginal_pvalues(self) -> np.ndarray:
        """``X ⊥ F`` p-value for every feature in one batched sweep (cached).

        On the float32 path, borderline features (within ``verify_margin``
        of ``verify_alpha``) are recomputed from the float64 masters.
        """
        if self._marginal is None:
            if self.Xs.shape[0] < 3 or self.Xt.shape[0] < 2:
                self._marginal = np.ones(self.n_features)
            else:
                ps = combined_invariance_pvalues(
                    self.Xs, self.Xt, ks_exact=not self._verifies
                )
                if self._verifies:
                    near = self._borderline(ps)
                    if near.size:
                        ps[near] = combined_invariance_pvalues(
                            self.Xs64[:, near], self.Xt64[:, near]
                        )
                self._marginal = ps
        return self._marginal

    def marginal_pvalues_for(self, idx) -> np.ndarray:
        """Marginal ``X ⊥ F`` p-values for a subset of columns.

        Column-for-column identical to the corresponding entries of
        :meth:`marginal_pvalues` (the batched statistics are column-
        independent); used by warm re-discovery to re-test only the features
        whose prior marginal p-value sits near the decision threshold.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return np.empty(0)
        if self.Xs.shape[0] < 3 or self.Xt.shape[0] < 2:
            return np.ones(idx.size)
        ps = combined_invariance_pvalues(
            self.Xs[:, idx], self.Xt[:, idx], ks_exact=not self._verifies
        )
        if self._verifies:
            near = self._borderline(ps)
            if near.size:
                sel = idx[near]
                ps[near] = combined_invariance_pvalues(
                    self.Xs64[:, sel], self.Xt64[:, sel]
                )
        return ps

    # -- conditional tests ---------------------------------------------------

    def _design(self, cols: tuple[int, ...]):
        """Cached design matrices for a conditioning tuple.

        Single-RHS mode caches ``(Zs, Zt, factor)`` — the Cholesky factor of
        the ridge Gram matrix, with betas solved per feature on demand.
        ``multi_rhs`` mode reproduces the PR-2 entry ``(Zs, Zt, B)`` where
        ``B`` solves the ridge system for all features at once.
        """
        entry = self._designs.get(cols)
        if entry is not None:
            self.cache_stats["design_hits"] += 1
            return entry
        self.cache_stats["design_misses"] += 1
        idx = list(cols)
        dt = self.stats_dtype
        Zs = np.column_stack(
            [np.ones(self.Xs.shape[0], dtype=dt), self.Xs[:, idx]]
        )
        Zt = np.column_stack(
            [np.ones(self.Xt.shape[0], dtype=dt), self.Xt[:, idx]]
        )
        if self.multi_rhs:
            A = Zs.T @ Zs + np.asarray(self.ridge, dtype=dt) * np.eye(
                Zs.shape[1], dtype=dt
            )
            B = cho_solve(cho_factor(A), Zs.T @ self.Xs)
            entry = (Zs, Zt, B)
        else:
            factor = None
            if self.stat_cache is not None:
                factor = self.stat_cache.get_factor(cols)
                key = "warm_hits" if factor is not None else "warm_misses"
                self.cache_stats[key] += 1
            if factor is None:
                A = Zs.T @ Zs + np.asarray(self.ridge, dtype=dt) * np.eye(
                    Zs.shape[1], dtype=dt
                )
                try:
                    factor = cho_factor(A)
                except LinAlgError:
                    # float32 Gram matrices can lose positive-definiteness
                    # to roundoff; fall back to a float64 factor for this
                    # tuple (cho_solve upcasts the solve accordingly)
                    factor = cho_factor(A.astype(np.float64))
                if self.stat_cache is not None:
                    self.stat_cache.put_factor(cols, factor)
            entry = (Zs, Zt, factor)
        self._designs[cols] = entry
        return entry

    def _beta(self, cols: tuple[int, ...], j: int) -> np.ndarray:
        """Ridge coefficients of feature ``j`` on conditioning tuple ``cols``."""
        Zs, _, solved = self._design(cols)
        if self.multi_rhs:
            return solved[:, j]
        per_feature = self._betas.setdefault(cols, {})
        beta = per_feature.get(j)
        if beta is not None:
            self.cache_stats["beta_hits"] += 1
            return beta
        self.cache_stats["beta_misses"] += 1
        if self.stat_cache is not None:
            beta = self.stat_cache.get_beta(cols, j)
            key = "warm_hits" if beta is not None else "warm_misses"
            self.cache_stats[key] += 1
            if beta is not None:
                per_feature[j] = beta
                return beta
        beta = cho_solve(solved, Zs.T @ self.Xs[:, j])
        per_feature[j] = beta
        if self.stat_cache is not None:
            self.stat_cache.put_beta(cols, j, beta)
        return beta

    def conditional_pvalues(
        self, j: int, subsets: list[tuple[int, ...]]
    ) -> np.ndarray:
        """p-values for ``X_j ⊥ F | S`` for every subset S, batched.

        Residuals for all subsets are assembled into one matrix and pushed
        through a single batched Welch-t + KS pass.  On the float32 path,
        borderline subsets are recomputed in float64.
        """
        if self.Xs.shape[0] < 3 or self.Xt.shape[0] < 2:
            return np.ones(len(subsets))
        xs = self.Xs[:, j]
        xt = self.Xt[:, j]
        res_s = np.empty((self.Xs.shape[0], len(subsets)), dtype=self.stats_dtype)
        res_t = np.empty((self.Xt.shape[0], len(subsets)), dtype=self.stats_dtype)
        for k, cols in enumerate(subsets):
            Zs, Zt, _ = self._design(cols)
            beta = self._beta(cols, j)
            rs = (
                self.stat_cache.get_residual(cols, j)
                if self.stat_cache is not None
                else None
            )
            if rs is None:
                rs = xs - Zs @ beta
                if self.stat_cache is not None:
                    self.stat_cache.put_residual(cols, j, rs)
            res_s[:, k] = rs
            res_t[:, k] = xt - Zt @ beta
        ps = combined_invariance_pvalues(res_s, res_t, ks_exact=not self._verifies)
        if self._verifies:
            near = self._borderline(ps)
            if near.size:
                ps[near] = self._verifier().conditional_pvalues(
                    j, [subsets[int(i)] for i in near]
                )
        return ps

    # -- per-feature subset search -------------------------------------------

    @staticmethod
    def _subset_levels(
        candidates: tuple[int, ...],
        extra_candidates: tuple[int, ...] | None,
        max_cond_size: int,
    ):
        """Yield subset batches: primary pool first, then the fallback pool.

        Fallback levels enumerate subsets of ``extra_candidates`` that are
        *not* contained in the primary pool (those were already tested), so
        a feature that never separates still sees every subset of the full
        pool — the decision-exactness guarantee of pruned search.
        """
        for size in range(1, max_cond_size + 1):
            subsets = list(combinations(candidates, size))
            if subsets:
                yield size, subsets
        if extra_candidates:
            primary = set(candidates)
            for size in range(1, max_cond_size + 1):
                subsets = [
                    s
                    for s in combinations(extra_candidates, size)
                    if not primary.issuperset(s)
                ]
                if subsets:
                    yield size, subsets

    def search_feature(
        self,
        j: int,
        candidates: tuple[int, ...],
        marginal_p: float,
        *,
        alpha: float,
        max_cond_size: int,
        budget: int | None = None,
        deadline: float | None = None,
        extra_candidates: tuple[int, ...] | None = None,
        prior_set: tuple[int, ...] | None = None,
    ) -> tuple[float, tuple[int, ...], int, TestLog, bool]:
        """PC-style subset search for one feature's edge to the F-node.

        Returns ``(best_p, separating_set, n_conditional_tests, log,
        completed)`` with the exact early-break semantics of the per-feature
        reference loop: subsets are scored level-batched, but only the prefix
        up to (and including) the first clearing subset counts toward
        ``n_tests`` / ``best_p`` / the observation log, so results and test
        counts match the sequential search.

        ``budget`` caps the number of *counted* conditional tests (anytime
        mode: the search stops mid-stream with ``completed=False``);
        ``deadline`` is an absolute :func:`time.perf_counter` cutoff checked
        between level batches *and* every :data:`DEADLINE_CHUNK` subsets
        inside a level, so a tight wall-clock budget cannot overshoot by a
        whole feature's enumeration.  ``extra_candidates`` enables the
        two-phase pruned search described in :meth:`_subset_levels`.

        ``prior_set`` (warm re-discovery) is a conditioning set confirmed to
        separate this feature in a previous run: it is tested *first* and
        short-circuits the search when it still clears ``alpha``.  Because
        the set is required to be a subset of the candidate pool, the full
        enumeration would have tested it anyway — a clear implies the cold
        search also finds *some* clearing subset, so the variant decision is
        unchanged (the same fallback contract as pruning).  When it no
        longer clears, the full enumeration proceeds (skipping only the
        duplicate test).
        """
        best_p = float(marginal_p)
        separating: tuple[int, ...] = ()
        n_tests = 0
        log: TestLog = []
        completed = True
        if best_p >= alpha:
            return best_p, separating, n_tests, log, completed
        skip = None
        if prior_set and len(prior_set) <= max_cond_size and (
            budget is None or budget > 0
        ):
            prior_set = tuple(prior_set)
            t0 = time.perf_counter()
            p = float(self.conditional_pvalues(j, [prior_set])[0])
            n_tests += 1
            log.append((len(prior_set), p, time.perf_counter() - t0))
            if p > best_p:
                best_p = p
                separating = prior_set
            if p >= alpha:
                return best_p, separating, n_tests, log, completed
            skip = frozenset(prior_set)
        for size, subsets in self._subset_levels(
            candidates, extra_candidates, max_cond_size
        ):
            if skip is not None and size == len(skip):
                subsets = [s for s in subsets if frozenset(s) != skip]
                if not subsets:
                    continue
            if deadline is not None and time.perf_counter() >= deadline:
                completed = False
                break
            truncated = False
            if budget is not None:
                remaining = budget - n_tests
                if remaining <= 0:
                    completed = False
                    break
                if len(subsets) > remaining:
                    subsets = subsets[:remaining]
                    truncated = True
            batches = (
                [subsets]
                if deadline is None
                else [
                    subsets[start : start + DEADLINE_CHUNK]
                    for start in range(0, len(subsets), DEADLINE_CHUNK)
                ]
            )
            cleared = False
            expired = False
            for b, batch in enumerate(batches):
                if b > 0 and time.perf_counter() >= deadline:
                    expired = True
                    break
                t0 = time.perf_counter()
                ps = self.conditional_pvalues(j, batch)
                per_test = (time.perf_counter() - t0) / len(batch)
                above = np.nonzero(ps >= alpha)[0]
                cleared = above.size > 0
                n_counted = int(above[0]) + 1 if cleared else len(batch)
                for idx in range(n_counted):
                    p = float(ps[idx])
                    n_tests += 1
                    log.append((size, p, per_test))
                    if p > best_p:
                        best_p = p
                        separating = batch[idx]
                if cleared:
                    break
            if expired:
                completed = False
                break
            if cleared:
                break
            if truncated:
                completed = False
                break
        return best_p, separating, n_tests, log, completed


# ---------------------------------------------------------------------------
# process-pool plumbing: each worker holds one engine over the shared
# matrices — attached zero-copy from shared memory when available, shipped
# once per worker via the pool initializer otherwise

_WORKER_ENGINE: CIEngine | None = None
_WORKER_PARAMS: dict | None = None


def _install_worker_engine(Xs, Xt, params: dict) -> None:
    global _WORKER_ENGINE, _WORKER_PARAMS
    stat_cache = None
    portable = params.get("stat_cache")
    if portable is not None:
        from repro.causal.warm import CIStatCache

        # each worker re-hydrates its own copy of the warm cache: entries
        # are read zero-risk (source-side state is immutable within a run)
        # and new entries accumulate worker-locally
        stat_cache = CIStatCache.from_portable(portable)
    _WORKER_ENGINE = CIEngine(
        Xs,
        Xt,
        ridge=params.get("ridge", DEFAULT_RIDGE),
        stats_dtype=params.get("stats_dtype", "float64"),
        verify_alpha=params.get("verify_alpha"),
        verify_margin=params.get("verify_margin"),
        multi_rhs=params.get("multi_rhs", False),
        stat_cache=stat_cache,
    )
    _WORKER_PARAMS = {
        "alpha": params["alpha"],
        "max_cond_size": params["max_cond_size"],
    }


def init_search_worker(Xs, Xt, params: dict) -> None:
    """Pool initializer (pickling fallback): build this worker's engine once."""
    _install_worker_engine(Xs, Xt, params)


def init_search_worker_shm(meta: dict, params: dict) -> None:
    """Pool initializer: attach the shared-memory matrices zero-copy."""
    from repro.causal.shm import attach_arrays

    arrays = attach_arrays(meta)
    _install_worker_engine(arrays["Xs"], arrays["Xt"], params)


def search_chunk_worker(tasks):
    """Run :meth:`CIEngine.search_feature` for a chunk of search tasks.

    Each task is ``(j, candidates, extra_candidates, marginal_p,
    prior_set)``; returns ``(rows, cache_stats_delta)`` where each row is
    ``(j, best_p, separating, n_tests, log, completed)`` and the delta is
    this chunk's cache traffic (workers outlive chunks, so a snapshot diff
    keeps the parent-side aggregation double-count-free).
    """
    engine, params = _WORKER_ENGINE, _WORKER_PARAMS
    before = dict(engine.cache_stats)
    rows = [
        (j,)
        + engine.search_feature(
            j,
            candidates,
            marginal_p,
            extra_candidates=extra,
            prior_set=prior_set,
            **params,
        )
        for j, candidates, extra, marginal_p, prior_set in tasks
    ]
    delta = {k: engine.cache_stats[k] - before.get(k, 0) for k in engine.cache_stats}
    return rows, delta
