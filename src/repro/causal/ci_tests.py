"""Conditional-independence tests for causal discovery.

Three tests cover the cases the framework needs:

- :func:`fisher_z_test` — partial-correlation test between two continuous
  variables given a continuous conditioning set (the PC algorithm's
  workhorse under joint-Gaussian assumptions).
- :func:`g_squared_test` — likelihood-ratio test for discrete variables.
- :func:`regression_invariance_test` — the test used against the binary
  **F-node**: it checks ``X ⊥ F | Z`` by regressing X on Z within the source
  domain and comparing the residual distribution across domains
  (mean shift via Welch's t, shape shift via Kolmogorov–Smirnov).  This is
  exactly Eq. (3) of the paper — "P_A(R | Pa(R)) ≠ P_C(R | Pa(R))" — made
  operational for heavily imbalanced two-domain data (thousands of source
  samples vs a handful of target samples).
"""

from __future__ import annotations

import time

import numpy as np
from scipy import stats

from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array


def _observe_ci_test(registry, kind: str, cond_size: int, p: float, seconds: float) -> None:
    """Record one CI test in the metrics registry (only called when enabled).

    Per-conditioning-set-size timing is what substantiates the paper's §VI-D
    claim that FS cost is dominated by the CI tests.
    """
    registry.counter("ci_tests_total").inc()
    registry.counter(f"ci_tests_{kind}").inc()
    registry.histogram("ci_test_seconds").observe(seconds)
    registry.histogram("ci_test_pvalue").observe(p)
    registry.counter(f"ci_tests_cond{cond_size}").inc()
    registry.histogram(f"ci_test_seconds_cond{cond_size}").observe(seconds)


#: supported KS tail evaluations (see :func:`ks_pvalue`)
KS_PVALUE_MODES = ("exact", "stephens")


def ks_pvalue(stat, n: int, m: int, *, mode: str = "exact"):
    """Two-sample KS tail probability for D statistic(s) ``stat``.

    The single home for both KS tail evaluations used across the scalar
    (:func:`regression_invariance_test`) and batched
    (:func:`repro.causal.engine.batch_ks_pvalues`) paths, so warm and cold
    discovery cannot drift apart:

    - ``mode="exact"``: the Kolmogorov-Smirnov survival function at the
      scipy-rounded effective sample size — bit-identical to
      ``scipy.stats.ks_2samp(method="asymp")``, routing into scipy's exact
      small-``n`` evaluation at few-shot sample sizes.
    - ``mode="stephens"``: the limiting Kolmogorov distribution at the
      Stephens-corrected argument — within ~1e-3 of the exact tail at these
      sample sizes and orders of magnitude cheaper; the float32 fast path
      always pairs it with a float64 exact re-check near the threshold.

    ``stat`` may be a scalar or an array; the return matches its shape.
    """
    if mode not in KS_PVALUE_MODES:
        raise ValidationError(
            f"ks_pvalue mode must be one of {KS_PVALUE_MODES}, got {mode!r}"
        )
    big, small = float(max(n, m)), float(min(n, m))
    en = big * small / (big + small)
    if mode == "exact":
        return np.clip(stats.kstwo.sf(stat, np.round(en)), 0.0, 1.0)
    root = np.sqrt(en)
    return np.clip(
        stats.kstwobign.sf((root + 0.12 + 0.11 / root) * np.asarray(stat)), 0.0, 1.0
    )


def _partial_correlation(data: np.ndarray, i: int, j: int, cond: tuple[int, ...]) -> float:
    """Partial correlation of columns i and j given columns ``cond``."""
    if not cond:
        xi, xj = data[:, i], data[:, j]
        si, sj = xi.std(), xj.std()
        if si == 0 or sj == 0:
            return 0.0
        return float(np.corrcoef(xi, xj)[0, 1])
    Z = data[:, list(cond)]
    Z = np.column_stack([np.ones(Z.shape[0]), Z])
    # both regressions share the design matrix: one multi-RHS solve
    beta, *_ = np.linalg.lstsq(Z, data[:, [i, j]], rcond=None)
    resid = data[:, [i, j]] - Z @ beta
    ri, rj = resid[:, 0], resid[:, 1]
    si, sj = ri.std(), rj.std()
    if si == 0 or sj == 0:
        return 0.0
    return float(np.corrcoef(ri, rj)[0, 1])


def fisher_z_test(data, i: int, j: int, cond: tuple[int, ...] = ()) -> float:
    """p-value for ``X_i ⊥ X_j | X_cond`` via the Fisher z-transform.

    Returns a p-value in [0, 1]; small values reject independence.
    """
    registry = get_metrics()
    if registry.enabled:
        t0 = time.perf_counter()
        p = _fisher_z_test(data, i, j, cond)
        _observe_ci_test(registry, "fisher_z", len(cond), p, time.perf_counter() - t0)
        return p
    return _fisher_z_test(data, i, j, cond)


def _fisher_z_test(data, i: int, j: int, cond: tuple[int, ...]) -> float:
    data = check_array(data, min_samples=4)
    d = data.shape[1]
    for col in (i, j, *cond):
        if not 0 <= col < d:
            raise ValidationError(f"column index {col} out of range for {d} columns")
    if i == j or i in cond or j in cond:
        raise ValidationError("i, j and cond must be distinct")
    n = data.shape[0]
    dof = n - len(cond) - 3
    if dof <= 0:
        return 1.0  # not enough samples to reject anything
    r = np.clip(_partial_correlation(data, i, j, cond), -1 + 1e-12, 1 - 1e-12)
    z = 0.5 * np.log((1 + r) / (1 - r)) * np.sqrt(dof)
    return float(2.0 * stats.norm.sf(abs(z)))


def g_squared_test(x, y, z=None, *, min_count: float = 0.0) -> float:
    """G² (likelihood-ratio) test of ``x ⊥ y | z`` for discrete variables.

    ``x``/``y`` are 1-D integer arrays; ``z`` an optional 2-D integer matrix
    of conditioning columns.  Returns a p-value.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if x.ndim != 1 or y.ndim != 1 or x.shape != y.shape:
        raise ValidationError("x and y must be 1-D arrays of equal length")
    if z is None:
        strata = np.zeros(x.shape[0], dtype=np.int64)
    else:
        z = np.asarray(z, dtype=np.int64)
        if z.ndim == 1:
            z = z[:, None]
        if z.shape[0] != x.shape[0]:
            raise ValidationError("z must match x in length")
        _, strata = np.unique(z, axis=0, return_inverse=True)

    _, x_codes = np.unique(x, return_inverse=True)
    _, y_codes = np.unique(y, return_inverse=True)
    n_x = int(x_codes.max()) + 1
    n_y = int(y_codes.max()) + 1
    n_strata = int(strata.max()) + 1

    # all (stratum, x, y) contingency tables in one bincount over encoded cells
    cells = (strata * n_x + x_codes) * n_y + y_codes
    tables = np.bincount(cells, minlength=n_strata * n_x * n_y).reshape(
        n_strata, n_x, n_y
    ).astype(np.float64)
    totals = tables.sum(axis=(1, 2))
    tables = tables[totals >= 2]  # strata with < 2 samples carry no evidence
    if tables.shape[0] == 0:
        return 1.0

    row_sums = tables.sum(axis=2, keepdims=True)
    col_sums = tables.sum(axis=1, keepdims=True)
    expected = row_sums * col_sums / tables.sum(axis=(1, 2), keepdims=True)
    nonzero = (tables > min_count) & (expected > 0)
    safe_t = np.where(nonzero, tables, 1.0)
    safe_e = np.where(nonzero, expected, 1.0)
    g2 = 2.0 * float(np.sum(np.where(nonzero, tables * np.log(safe_t / safe_e), 0.0)))

    rows = (row_sums[:, :, 0] > 0).sum(axis=1)
    cols = (col_sums[:, 0, :] > 0).sum(axis=1)
    dof = int(np.maximum(0, (rows - 1) * (cols - 1)).sum())
    if dof == 0:
        return 1.0
    return float(stats.chi2.sf(g2, dof))


def regression_invariance_test(
    x_source: np.ndarray,
    x_target: np.ndarray,
    z_source: np.ndarray | None = None,
    z_target: np.ndarray | None = None,
    *,
    ridge: float = 1e-3,
) -> float:
    """p-value for ``X ⊥ F | Z`` with F the binary domain indicator.

    Fits a ridge regression of X on Z using **source** samples only (the
    conditional mechanism under observational data), computes residuals in
    both domains, and tests whether target residuals follow the source
    residual distribution.  Combines a Welch t-test (mean shift) and a
    two-sample Kolmogorov–Smirnov test (distributional shift) with a
    Bonferroni correction, so either kind of soft intervention is caught.

    Passing ``z_source=None`` performs the marginal (unconditional) test.
    """
    registry = get_metrics()
    if registry.enabled:
        cond_size = 0 if z_source is None else int(np.asarray(z_source).shape[-1])
        t0 = time.perf_counter()
        p = _regression_invariance_test(
            x_source, x_target, z_source, z_target, ridge=ridge
        )
        _observe_ci_test(
            registry, "invariance", cond_size, p, time.perf_counter() - t0
        )
        return p
    return _regression_invariance_test(x_source, x_target, z_source, z_target, ridge=ridge)


def _regression_invariance_test(
    x_source: np.ndarray,
    x_target: np.ndarray,
    z_source: np.ndarray | None = None,
    z_target: np.ndarray | None = None,
    *,
    ridge: float = 1e-3,
) -> float:
    x_source = np.asarray(x_source, dtype=np.float64).ravel()
    x_target = np.asarray(x_target, dtype=np.float64).ravel()
    if x_source.size < 3 or x_target.size < 2:
        return 1.0
    if z_source is None or z_source.size == 0 or z_source.shape[1] == 0:
        res_s, res_t = x_source, x_target
    else:
        z_source = np.asarray(z_source, dtype=np.float64)
        z_target = np.asarray(z_target, dtype=np.float64)
        if z_source.shape[0] != x_source.size or z_target.shape[0] != x_target.size:
            raise ValidationError("conditioning sets must match sample counts")
        Zs = np.column_stack([np.ones(z_source.shape[0]), z_source])
        Zt = np.column_stack([np.ones(z_target.shape[0]), z_target])
        A = Zs.T @ Zs + ridge * np.eye(Zs.shape[1])
        beta = np.linalg.solve(A, Zs.T @ x_source)
        res_s = x_source - Zs @ beta
        res_t = x_target - Zt @ beta

    if res_s.std() == 0 and res_t.std() == 0:
        # both constant: independent iff the constants agree
        return 1.0 if np.isclose(res_s.mean(), res_t.mean()) else 0.0

    p_values = []
    try:
        _, p_t = stats.ttest_ind(res_s, res_t, equal_var=False)
        if np.isfinite(p_t):
            p_values.append(float(p_t))
    except ValueError:
        pass
    try:
        d_ks, _ = stats.ks_2samp(res_s, res_t, method="asymp")
        # shared tail evaluation with the batched engine (bit-identical to
        # scipy's own asymp p-value at the rounded effective sample size)
        p_ks = float(ks_pvalue(d_ks, res_s.size, res_t.size, mode="exact"))
        if np.isfinite(p_ks):
            p_values.append(p_ks)
    except ValueError:
        pass
    if not p_values:
        return 1.0
    return float(min(1.0, min(p_values) * len(p_values)))
