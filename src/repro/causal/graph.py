"""Causal graph data structure (CPDAG) used by the PC algorithm.

A :class:`CausalGraph` holds a mixed graph: undirected edges (unresolved
orientation) and directed edges.  It provides the operations constraint-based
discovery needs — skeleton edits, v-structure orientation, Meek's rules —
on top of plain adjacency sets (networkx is used only for export/analysis).
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from repro.utils.errors import GraphError


class CausalGraph:
    """A partially directed graph over named nodes."""

    def __init__(self, nodes) -> None:
        self.nodes: list = list(nodes)
        if len(set(self.nodes)) != len(self.nodes):
            raise GraphError("duplicate node names")
        self._undirected: dict = {node: set() for node in self.nodes}
        self._parents: dict = {node: set() for node in self.nodes}
        self._children: dict = {node: set() for node in self.nodes}

    # -- construction -----------------------------------------------------
    @classmethod
    def complete(cls, nodes) -> "CausalGraph":
        """Fully connected undirected graph (PC's starting point)."""
        graph = cls(nodes)
        for a, b in combinations(graph.nodes, 2):
            graph.add_undirected_edge(a, b)
        return graph

    def _check(self, *nodes) -> None:
        for node in nodes:
            if node not in self._undirected:
                raise GraphError(f"unknown node {node!r}")

    def add_undirected_edge(self, a, b) -> None:
        self._check(a, b)
        if a == b:
            raise GraphError("self-loops are not allowed")
        if b in self._parents[a] or a in self._parents[b]:
            raise GraphError(f"edge {a!r}-{b!r} already directed")
        self._undirected[a].add(b)
        self._undirected[b].add(a)

    def remove_edge(self, a, b) -> None:
        """Remove any edge (directed or undirected) between a and b."""
        self._check(a, b)
        self._undirected[a].discard(b)
        self._undirected[b].discard(a)
        self._parents[a].discard(b)
        self._children[b].discard(a)
        self._parents[b].discard(a)
        self._children[a].discard(b)

    def orient(self, a, b) -> None:
        """Turn the edge between a and b into ``a → b``."""
        self._check(a, b)
        if b not in self._undirected[a] and b not in self._children[a] \
                and a not in self._parents[b]:
            raise GraphError(f"no edge between {a!r} and {b!r} to orient")
        self._undirected[a].discard(b)
        self._undirected[b].discard(a)
        self._parents[b].add(a)
        self._children[a].add(b)

    # -- queries ----------------------------------------------------------
    def has_edge(self, a, b) -> bool:
        """Any edge between a and b, regardless of orientation."""
        self._check(a, b)
        return (
            b in self._undirected[a]
            or b in self._children[a]
            or b in self._parents[a]
        )

    def is_directed(self, a, b) -> bool:
        """True iff the graph contains ``a → b``."""
        self._check(a, b)
        return b in self._children[a]

    def neighbors(self, node) -> set:
        """All nodes connected to ``node`` by any edge."""
        self._check(node)
        return set(self._undirected[node]) | self._parents[node] | self._children[node]

    def undirected_neighbors(self, node) -> set:
        self._check(node)
        return set(self._undirected[node])

    def parents(self, node) -> set:
        self._check(node)
        return set(self._parents[node])

    def children(self, node) -> set:
        self._check(node)
        return set(self._children[node])

    def edges(self) -> list[tuple]:
        """All edges as (a, b, directed) triples (undirected listed once)."""
        seen = set()
        out = []
        for a in self.nodes:
            for b in self._children[a]:
                out.append((a, b, True))
            for b in self._undirected[a]:
                if (b, a) not in seen:
                    out.append((a, b, False))
                    seen.add((a, b))
        return out

    def n_edges(self) -> int:
        return len(self.edges())

    # -- orientation rules --------------------------------------------------
    def orient_v_structures(self, sepsets: dict) -> None:
        """Orient colliders ``a → c ← b`` for nonadjacent a, b with c ∉ sepset(a,b)."""
        for c in self.nodes:
            nbrs = sorted(self.neighbors(c), key=str)
            for a, b in combinations(nbrs, 2):
                if self.has_edge(a, b):
                    continue
                sepset = sepsets.get(frozenset((a, b)))
                if sepset is not None and c not in sepset:
                    if not self.is_directed(c, a):
                        self.orient(a, c)
                    if not self.is_directed(c, b):
                        self.orient(b, c)

    def apply_meek_rules(self) -> None:
        """Apply Meek's orientation rules 1–3 to a fixpoint."""
        changed = True
        while changed:
            changed = False
            for a in self.nodes:
                for b in list(self._undirected[a]):
                    # Rule 1: c → a and c not adjacent to b  =>  a → b
                    if any(
                        not self.has_edge(c, b)
                        for c in self._parents[a]
                    ):
                        self.orient(a, b)
                        changed = True
                        continue
                    # Rule 2: a → c → b  =>  a → b
                    if self._children[a] & self._parents[b]:
                        self.orient(a, b)
                        changed = True
                        continue
                    # Rule 3: a - c → b and a - d → b, c/d nonadjacent => a → b
                    candidates = [
                        c for c in self._undirected[a] if c in self._parents[b]
                    ]
                    if any(
                        not self.has_edge(c, d)
                        for c, d in combinations(candidates, 2)
                    ):
                        self.orient(a, b)
                        changed = True

    # -- export -------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Export as a DiGraph; undirected edges become bidirected pairs."""
        g = nx.DiGraph()
        g.add_nodes_from(self.nodes)
        for a, b, directed in self.edges():
            g.add_edge(a, b)
            if not directed:
                g.add_edge(b, a)
        return g

    def __repr__(self) -> str:
        return f"CausalGraph(n_nodes={len(self.nodes)}, n_edges={self.n_edges()})"
