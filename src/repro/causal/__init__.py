"""Causal-inference substrate: CI tests, causal graphs, the PC algorithm and
F-node intervention-target discovery (the machinery behind the FS method)."""

from repro.causal.ci_tests import (
    fisher_z_test,
    g_squared_test,
    ks_pvalue,
    regression_invariance_test,
)
from repro.causal.engine import (
    CIEngine,
    batch_ks_pvalues,
    batch_welch_t_pvalues,
    combined_invariance_pvalues,
    rank_candidates,
    resolve_n_jobs,
)
from repro.causal.shm import (
    SHM_AVAILABLE,
    SharedMatrices,
    attach_arrays,
    create_shared_matrices,
)
from repro.causal.fnode import (
    F_NODE,
    FNodeDiscovery,
    FNodeResult,
    discover_targets_pc,
)
from repro.causal.graph import CausalGraph
from repro.causal.pc import PCResult, pc_algorithm, pc_skeleton
from repro.causal.warm import CIStatCache, WarmState, matrix_fingerprint

__all__ = [
    "CIEngine",
    "CIStatCache",
    "CausalGraph",
    "F_NODE",
    "SHM_AVAILABLE",
    "SharedMatrices",
    "attach_arrays",
    "batch_ks_pvalues",
    "batch_welch_t_pvalues",
    "combined_invariance_pvalues",
    "create_shared_matrices",
    "rank_candidates",
    "resolve_n_jobs",
    "FNodeDiscovery",
    "FNodeResult",
    "PCResult",
    "WarmState",
    "discover_targets_pc",
    "fisher_z_test",
    "g_squared_test",
    "ks_pvalue",
    "matrix_fingerprint",
    "pc_algorithm",
    "pc_skeleton",
    "regression_invariance_test",
]
