"""Zero-copy process-pool fan-out via ``multiprocessing.shared_memory``.

The PR-2 process-pool subset search shipped the pooled (source, target)
matrices to every worker through the pool initializer — one pickle of the
full float64 matrices per worker.  At the paper's 442-feature width (and
the 1k+ widths ROADMAP item 4 targets) that serialization is a fixed cost
the workers pay before the first CI test runs.  This module replaces it:

- :func:`create_shared_matrices` publishes named float64 arrays into POSIX
  shared memory **once**; only the segment names/shapes/dtypes (a few
  hundred bytes) cross the process boundary.
- :func:`attach_arrays` maps the segments back into a worker as read-only
  NumPy views — no copy, no pickle.  ``CIEngine`` keeps the views as-is
  (``np.ascontiguousarray`` on an aligned float64 view is a no-op).

Lifecycle rules:

- The **parent** owns the segments.  :class:`SharedMatrices` is a context
  manager whose ``close()`` both closes and unlinks every segment; callers
  wrap the pool in ``try/finally`` so a crashed worker (BrokenProcessPool)
  cannot leak ``/dev/shm`` blocks.
- **Workers** attach but never unlink.  Python's ``resource_tracker``
  would otherwise unlink a segment when the *first* worker exits,
  destroying it under the remaining workers; attachments are therefore
  untracked (``track=False`` on 3.13+, ``resource_tracker.unregister``
  before).
- When shared memory is unavailable (no ``/dev/shm``, permissions,
  platform), :func:`create_shared_matrices` returns ``None`` and the
  caller falls back to the PR-2 pickling initializer — same results,
  slower fan-out.
"""

from __future__ import annotations

import secrets

import numpy as np

try:  # pragma: no cover - import failure exercised via the fallback path
    from multiprocessing import resource_tracker, shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - platforms without _posixshmem
    resource_tracker = None
    shared_memory = None
    SHM_AVAILABLE = False

#: segments attached by this process as a worker; kept referenced so the
#: mapped buffers outlive the NumPy views built on them
_ATTACHED: list = []


def _untracked_attach(name: str):
    """Attach an existing segment without resource-tracker registration.

    Workers must not be tracked: the tracker process is shared with the
    parent across fork, so a worker registering then unregistering the same
    segment name would erase the *parent's* tracker entry (the cache is a
    name set), turning the parent's legitimate unlink into tracker noise.
    Python 3.13+ exposes ``track=False``; earlier versions need
    registration suppressed during attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedMatrices:
    """Parent-side handle over a set of shared-memory-published arrays.

    Use :func:`create_shared_matrices`; construct directly only in tests.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        self._segments: dict[str, "shared_memory.SharedMemory"] = {}
        self._meta: dict[str, dict] = {}
        token = secrets.token_hex(4)
        try:
            for key, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                seg = shared_memory.SharedMemory(
                    create=True,
                    size=max(1, arr.nbytes),
                    name=f"repro_fs_{token}_{key}",
                )
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                self._segments[key] = seg
                self._meta[key] = {
                    "name": seg.name,
                    "shape": tuple(int(s) for s in arr.shape),
                    "dtype": str(arr.dtype),
                }
        except Exception:
            self.close()
            raise

    def meta(self) -> dict[str, dict]:
        """Picklable segment descriptors for the worker initializer."""
        return dict(self._meta)

    def close(self) -> None:
        """Close and unlink every segment (idempotent, swallows teardown races)."""
        for seg in self._segments.values():
            for step in (seg.close, seg.unlink):
                try:
                    step()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
        self._segments.clear()

    def __enter__(self) -> "SharedMatrices":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def create_shared_matrices(arrays: dict[str, np.ndarray]) -> SharedMatrices | None:
    """Publish ``arrays`` into shared memory, or ``None`` if unavailable.

    ``None`` signals the caller to use the pickling fan-out instead — the
    two paths are result-identical, so this is purely a performance
    downgrade, never a behaviour change.
    """
    if not SHM_AVAILABLE:
        return None
    try:
        return SharedMatrices(arrays)
    except (OSError, ValueError):
        return None


def attach_arrays(meta: dict[str, dict]) -> dict[str, np.ndarray]:
    """Worker-side: map shared segments into read-only NumPy views.

    The underlying segments are kept referenced for the life of the worker
    process; views are marked read-only so a worker bug cannot corrupt the
    matrices under its siblings.
    """
    arrays: dict[str, np.ndarray] = {}
    for key, spec in meta.items():
        seg = _untracked_attach(spec["name"])
        _ATTACHED.append(seg)
        view = np.ndarray(
            tuple(spec["shape"]), dtype=np.dtype(spec["dtype"]), buffer=seg.buf
        )
        view.flags.writeable = False
        arrays[key] = view
    return arrays


__all__ = [
    "SHM_AVAILABLE",
    "SharedMatrices",
    "attach_arrays",
    "create_shared_matrices",
]
