"""F-node discovery: identifying soft-intervention targets across domains.

This module implements the paper's adaptation of the Ψ-FCI idea (Jaber et
al. 2020) to the two-domain network-telemetry setting:

1. Pool source samples (``F = 0``) and target samples (``F = 1``).
2. For every feature ``X`` test ``X ⊥ F | Pa(X)`` (Eq. 2 of the paper).
3. Features for which the test *rejects* are the intervention targets — the
   **domain-variant** features (Eq. 3/4).

Two engines are provided:

- :func:`discover_targets_pc` — run the full PC algorithm on the pooled data
  with the F-node included (exact, but only tractable for small feature
  counts; used in tests and the didactic example).
- :class:`FNodeDiscovery` — the scalable procedure used on the real
  workloads.  As §VI-D of the paper notes, only relationships *with the
  F-node* are needed, so instead of building the whole 442-node graph we
  approximate each feature's parent set with its most correlated source-
  domain features and run a single conditional test per feature.  This keeps
  the number of CI tests linear in the feature count.

The CI tests themselves run on :class:`repro.causal.engine.CIEngine`: the
size-0 tests for all features are one batched sweep, the conditional tests
share cached Cholesky factors per conditioning tuple, and the subset search
optionally fans out over a process pool (``n_jobs``) with a deterministic
feature-order merge.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.causal.ci_tests import (
    _observe_ci_test,
    fisher_z_test,
    regression_invariance_test,
)
from repro.causal.engine import (
    CIEngine,
    init_search_worker,
    init_search_worker_shm,
    rank_candidates,
    resolve_n_jobs,
    search_chunk_worker,
)
from repro.causal.shm import create_shared_matrices
from repro.causal.pc import pc_algorithm
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array

F_NODE = "F"

#: features per child span in the discovery trace — coarse enough to keep
#: traces small on 442-feature data, fine enough to localize the cost
CI_BATCH_SIZE = 32


@dataclass
class FNodeResult:
    """Result of intervention-target discovery.

    Attributes
    ----------
    variant_indices / invariant_indices:
        Column indices of the domain-variant / domain-invariant features.
    p_values:
        Per-feature p-value for the ``X ⊥ F | Pa(X)`` test.
    parent_sets:
        The conditioning set used for every feature.
    n_tests:
        Total number of CI tests run (drives the running-time benchmark).
    coverage:
        Fraction of subset searches that ran to completion.  Always 1.0
        outside budgeted mode; under a test-count or wall-clock budget it
        reports how much of the full search the budget afforded.
    """

    variant_indices: np.ndarray
    invariant_indices: np.ndarray
    p_values: np.ndarray
    parent_sets: list[tuple[int, ...]] = field(default_factory=list)
    n_tests: int = 0
    coverage: float = 1.0

    @property
    def n_variant(self) -> int:
        return int(len(self.variant_indices))

    def variant_mask(self, n_features: int) -> np.ndarray:
        """Boolean mask over columns, True where domain-variant."""
        mask = np.zeros(n_features, dtype=bool)
        mask[self.variant_indices] = True
        return mask


class FNodeDiscovery:
    """Scalable discovery of soft-intervention targets (domain-variant features).

    For every feature ``X`` the procedure mirrors the PC skeleton phase for
    the single edge ``X — F``: candidate conditioning variables are the
    features most correlated with ``X`` in the source domain, and the edge is
    *removed* (X declared invariant) as soon as **any** conditioning subset
    ``S`` — including the empty set — makes ``X ⊥ F | S`` hold.  This subset
    search is what distinguishes the three causal roles correctly:

    - an intervention **target** stays dependent on F under every subset;
    - a **child** of a target is separated by conditioning on the (shifted)
      parent;
    - a **parent** of a target is separated by the empty set (its own
      marginal is untouched — children do not influence parents), which a
      fixed-conditioning-set test gets wrong.

    Parameters
    ----------
    alpha:
        Significance level; features whose every subset test yields
        ``p < alpha`` are declared variant.
    max_parents:
        Number of top-correlated candidate conditioners considered.
    max_cond_size:
        Largest conditioning-subset size tried (PC's depth limit).
    min_correlation:
        Candidate conditioners must exceed this absolute source-domain
        correlation (prevents conditioning on unrelated noise columns).
    n_jobs:
        Worker processes for the conditional subset search (``-1`` = all
        cores).  Features are chunked across workers and merged back in
        feature order, so results are bit-identical to ``n_jobs=1``.  The
        matrices reach workers zero-copy via shared memory when available
        (see ``use_shared_memory``).
    ridge:
        Ridge strength of the conditional regression (matches
        :func:`repro.causal.ci_tests.regression_invariance_test`).
    prune_k:
        Cap on each feature's *primary* conditioning-candidate pool: the
        top ``prune_k`` candidates by marginal-association effect size are
        searched first.  With ``prune_exact=True`` (default) the remaining
        candidates form a fallback pool searched only if the primary pool
        fails to separate the feature — variant decisions are then exactly
        those of the unpruned search, but features separated by a
        top-ranked conditioner (the common case) never pay for the full
        subset enumeration.  ``None`` disables pruning.
    prune_exact:
        When False, the fallback phase is skipped: only the pruned pool is
        searched (approximate, faster; some variants may be over-reported).
    budget / budget_seconds:
        Anytime mode — a global cap on the number of conditional CI tests
        and/or the wall-clock time of the subset-search phase.  Features
        are processed closest-to-clearing first and candidates are ranked
        by effect size, so tests form a deterministic prefix across budget
        values; a larger budget can only *clear* more features, so its
        variant set is a subset of any smaller budget's.  Budgeted runs are
        serial (a global countdown cannot span processes) and report the
        searched fraction in :attr:`FNodeResult.coverage`.
    stats_dtype:
        ``"float64"`` (default) or ``"float32"``: run the batched
        statistics in single precision, with every p-value within
        ``alpha/2`` of ``alpha`` re-verified in float64 so variant
        decisions match the float64 path.
    use_shared_memory:
        Publish the matrices to workers via ``multiprocessing.shared_memory``
        (zero-copy) instead of pickling them per worker.  Falls back to
        pickling automatically when shared memory is unavailable; both
        fan-outs are result-identical.
    multi_rhs:
        Frozen PR-2 solve mode (benchmark baseline): betas for all
        features are solved per conditioning tuple instead of per
        ``(tuple, feature)``.  float64 only.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.01,
        max_parents: int = 5,
        max_cond_size: int = 2,
        min_correlation: float = 0.2,
        n_jobs: int = 1,
        ridge: float = 1e-3,
        prune_k: int | None = None,
        prune_exact: bool = True,
        budget: int | None = None,
        budget_seconds: float | None = None,
        stats_dtype: str = "float64",
        use_shared_memory: bool = True,
        multi_rhs: bool = False,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValidationError("alpha must be in (0, 1)")
        if max_parents < 0:
            raise ValidationError("max_parents must be >= 0")
        if max_cond_size < 0:
            raise ValidationError("max_cond_size must be >= 0")
        if prune_k is not None and prune_k < 1:
            raise ValidationError("prune_k must be a positive int or None")
        if budget is not None and budget < 0:
            raise ValidationError("budget must be >= 0 or None")
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValidationError("budget_seconds must be > 0 or None")
        self.alpha = alpha
        self.max_parents = max_parents
        self.max_cond_size = max_cond_size
        self.min_correlation = min_correlation
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.ridge = ridge
        self.prune_k = prune_k
        self.prune_exact = prune_exact
        self.budget = budget
        self.budget_seconds = budget_seconds
        self.stats_dtype = stats_dtype
        self.use_shared_memory = use_shared_memory
        self.multi_rhs = multi_rhs

    def _candidates(self, corr: np.ndarray, j: int) -> tuple[int, ...]:
        """Top-``max_parents`` source-correlated features for column j."""
        if self.max_parents == 0:
            return ()
        row = np.abs(corr[j]).copy()
        row[j] = 0.0
        row[~np.isfinite(row)] = 0.0
        order = np.argsort(row)[::-1][: self.max_parents]
        return tuple(int(k) for k in order if row[k] >= self.min_correlation)

    def discover(self, X_source, X_target) -> FNodeResult:
        """Identify intervention targets between the two domains.

        Both matrices must share the same feature order.  Works with as few
        as a handful of target samples (the few-shot regime): power simply
        drops, so fewer variant features are detected — the behaviour the
        paper reports in §VI-C (35/68/75 variants at 1/5/10 shots on 5GC).
        """
        X_source = check_array(X_source, name="X_source", min_samples=4)
        X_target = check_array(X_target, name="X_target", min_samples=2)
        if X_source.shape[1] != X_target.shape[1]:
            raise ValidationError(
                f"domains disagree on feature count: "
                f"{X_source.shape[1]} vs {X_target.shape[1]}"
            )
        d = X_source.shape[1]
        # source-domain correlation matrix for conditioning-candidate proxies;
        # constant columns yield NaN rows that _candidates() zeroes out
        with np.errstate(invalid="ignore", divide="ignore"):
            corr = np.corrcoef(X_source, rowvar=False)
        if d == 1:
            corr = np.array([[1.0]])
        engine = CIEngine(
            X_source,
            X_target,
            ridge=self.ridge,
            stats_dtype=self.stats_dtype,
            verify_alpha=self.alpha,
            multi_rhs=self.multi_rhs,
        )
        registry = get_metrics()
        tracer = get_tracer()
        budgeted = self.budget is not None or self.budget_seconds is not None

        # the FS span decomposes into CI-test-batch child spans (the batched
        # marginal sweep, then chunks of conditional subset searches) so a
        # trace shows where the dominant (§VI-D) discovery cost goes
        with tracer.span("fs.discover", n_features=d, n_jobs=self.n_jobs) as fs_span:
            t0 = time.perf_counter()
            with tracer.span(
                "fs.ci_batch", feature_start=0, feature_stop=d, stage="marginal"
            ) as marginal_span:
                p_values = engine.marginal_pvalues().copy()
                marginal_span.tag(n_tests=d)
            if registry.enabled:
                per_test = (time.perf_counter() - t0) / max(d, 1)
                for p in p_values:
                    _observe_ci_test(registry, "invariance", 0, float(p), per_test)
            n_tests = d
            parent_sets: list[tuple[int, ...]] = [() for _ in range(d)]

            # only features failing the marginal test enter the subset search;
            # each task is (j, primary candidates, fallback candidates, p)
            tasks = []
            if self.max_parents > 0 and self.max_cond_size > 0:
                for j in np.nonzero(p_values < self.alpha)[0]:
                    j = int(j)
                    pool = self._candidates(corr, j)
                    if not pool:
                        continue
                    primary, extra = self._prune(corr, p_values, j, pool, budgeted)
                    tasks.append((j, primary, extra, float(p_values[j])))
            if budgeted:
                # closest-to-clearing first: a deterministic order in which
                # tight budgets spend their tests where clears are cheapest,
                # and any budget's tests are a prefix of a larger budget's
                tasks.sort(key=lambda t: (-t[3], t[0]))
            searched, coverage = self._search(engine, tasks, tracer)
            for j, best_p, separating, n_cond, log, _completed in searched:
                p_values[j] = best_p
                parent_sets[j] = separating
                n_tests += n_cond
                if registry.enabled:
                    for cond_size, p, seconds in log:
                        _observe_ci_test(registry, "invariance", cond_size, p, seconds)
            fs_span.tag(n_tests=n_tests)

        variant = np.where(p_values < self.alpha)[0]
        invariant = np.where(p_values >= self.alpha)[0]
        if registry.enabled:
            registry.counter("fs_discoveries_total").inc()
            registry.gauge("fs_n_variant").set(len(variant))
            registry.gauge("fs_n_features").set(d)
        return FNodeResult(
            variant_indices=variant,
            invariant_indices=invariant,
            p_values=p_values,
            parent_sets=parent_sets,
            n_tests=n_tests,
            coverage=coverage,
        )

    def _prune(
        self,
        corr: np.ndarray,
        marginal_p: np.ndarray,
        j: int,
        pool: tuple[int, ...],
        budgeted: bool,
    ) -> tuple[tuple[int, ...], tuple[int, ...] | None]:
        """Split feature ``j``'s candidate pool into (primary, fallback).

        Without pruning or budgeting the pool passes through untouched, so
        subset enumeration order — and therefore every reported p-value —
        is bit-identical to the unpruned engine.  With ``prune_k`` the top-k
        candidates by effect size form the primary pool; in exact mode the
        full pool becomes the fallback searched only if the primary pool
        never separates ``j``.  Budgeted runs rank the pool even when not
        pruning so a tight budget tries the most promising subsets first.
        """
        if self.prune_k is None:
            if budgeted:
                return rank_candidates(corr[j], marginal_p, pool), None
            return pool, None
        ranked = rank_candidates(corr[j], marginal_p, pool)
        if len(ranked) <= self.prune_k:
            return ranked, None
        primary = ranked[: self.prune_k]
        return primary, (ranked if self.prune_exact else None)

    def _search(self, engine, tasks, tracer) -> tuple[list, float]:
        """Run the conditional subset searches, serially or in a process pool.

        Returns ``(rows, coverage)`` where each row is ``(j, best_p,
        separating, n_tests, log, completed)``; the merge key is the feature
        index, so worker scheduling cannot reorder results.  Budgeted runs
        (test-count or wall-clock) are always serial: the budget is a global
        countdown shared across features.
        """
        if not tasks:
            return [], 1.0
        chunks = [
            tasks[start : start + CI_BATCH_SIZE]
            for start in range(0, len(tasks), CI_BATCH_SIZE)
        ]
        results: list = []
        budgeted = self.budget is not None or self.budget_seconds is not None
        if self.n_jobs == 1 or budgeted:
            remaining = self.budget
            deadline = (
                time.perf_counter() + self.budget_seconds
                if self.budget_seconds is not None
                else None
            )
            for chunk in chunks:
                with tracer.span(
                    "fs.ci_batch",
                    feature_start=chunk[0][0],
                    feature_stop=chunk[-1][0] + 1,
                    stage="conditional",
                ) as batch_span:
                    batch_tests = 0
                    for j, candidates, extra, marginal_p in chunk:
                        out = engine.search_feature(
                            j,
                            candidates,
                            marginal_p,
                            alpha=self.alpha,
                            max_cond_size=self.max_cond_size,
                            budget=remaining,
                            deadline=deadline,
                            extra_candidates=extra,
                        )
                        results.append((j, *out))
                        batch_tests += out[2]
                        if remaining is not None:
                            remaining -= out[2]
                    batch_span.tag(n_tests=batch_tests)
            coverage = sum(1 for row in results if row[5]) / len(tasks)
            return results, coverage
        params = {
            "alpha": self.alpha,
            "max_cond_size": self.max_cond_size,
            "ridge": self.ridge,
            "stats_dtype": self.stats_dtype,
            "verify_alpha": self.alpha,
            "multi_rhs": self.multi_rhs,
        }
        shared = (
            create_shared_matrices({"Xs": engine.Xs64, "Xt": engine.Xt64})
            if self.use_shared_memory
            else None
        )
        try:
            if shared is not None:
                initializer, initargs = init_search_worker_shm, (shared.meta(), params)
            else:  # shared memory unavailable: ship the matrices pickled
                initializer, initargs = (
                    init_search_worker,
                    (engine.Xs64, engine.Xt64, params),
                )
            with tracer.span(
                "fs.ci_batch",
                feature_start=tasks[0][0],
                feature_stop=tasks[-1][0] + 1,
                stage="conditional",
                n_jobs=self.n_jobs,
                shared_memory=shared is not None,
            ) as batch_span:
                with ProcessPoolExecutor(
                    max_workers=min(self.n_jobs, len(chunks)),
                    initializer=initializer,
                    initargs=initargs,
                ) as pool:
                    for chunk_result in pool.map(search_chunk_worker, chunks):
                        results.extend(chunk_result)
                batch_span.tag(n_tests=sum(row[3] for row in results))
        finally:
            # unlink even on BrokenProcessPool so /dev/shm cannot leak
            if shared is not None:
                shared.close()
        return results, 1.0


def _mixed_ci_test(f_col: int):
    """CI test for pooled data where column ``f_col`` is the binary F-node.

    Dispatches to :func:`regression_invariance_test` whenever the pair
    involves F, otherwise to Fisher-z.
    """

    def test(data: np.ndarray, i: int, j: int, cond: tuple[int, ...]) -> float:
        if f_col in (i, j):
            x_col = j if i == f_col else i
            f = data[:, f_col].astype(bool)
            z_cols = [c for c in cond if c != f_col]
            z_s = data[np.ix_(~f, z_cols)] if z_cols else None
            z_t = data[np.ix_(f, z_cols)] if z_cols else None
            return regression_invariance_test(
                data[~f, x_col], data[f, x_col], z_s, z_t
            )
        return fisher_z_test(data, i, j, cond)

    return test


def discover_targets_pc(
    X_source,
    X_target,
    *,
    alpha: float = 0.05,
    max_cond_size: int = 2,
    feature_names: list | None = None,
) -> tuple[FNodeResult, "object"]:
    """Exact Ψ-FCI-style discovery: full PC on the pooled data with an F-node.

    Returns ``(result, pc_result)`` where ``pc_result.graph`` is the learned
    CPDAG.  Only tractable for small feature counts (tests, examples); the
    scalable path is :class:`FNodeDiscovery`.
    """
    X_source = check_array(X_source, name="X_source", min_samples=4)
    X_target = check_array(X_target, name="X_target", min_samples=2)
    if X_source.shape[1] != X_target.shape[1]:
        raise ValidationError("domains disagree on feature count")
    d = X_source.shape[1]
    names = feature_names if feature_names is not None else list(range(d))
    if len(names) != d:
        raise ValidationError("feature_names length must match feature count")
    pooled = np.vstack([X_source, X_target])
    f_column = np.concatenate(
        [np.zeros(X_source.shape[0]), np.ones(X_target.shape[0])]
    )
    data = np.column_stack([pooled, f_column])
    nodes = list(names) + [F_NODE]
    pc_result = pc_algorithm(
        data,
        nodes,
        alpha=alpha,
        max_cond_size=max_cond_size,
        ci_test=_mixed_ci_test(d),
        forbidden_cond={F_NODE},
        exogenous={F_NODE},
    )
    variant_names = pc_result.graph.neighbors(F_NODE)
    name_to_idx = {name: k for k, name in enumerate(names)}
    variant = np.array(sorted(name_to_idx[v] for v in variant_names), dtype=np.int64)
    invariant = np.setdiff1d(np.arange(d), variant)
    p_values = np.ones(d)
    p_values[variant] = 0.0  # PC gives adjacency, not per-feature p-values
    result = FNodeResult(
        variant_indices=variant,
        invariant_indices=invariant,
        p_values=p_values,
        parent_sets=[],
        n_tests=pc_result.n_tests,
    )
    return result, pc_result
