"""F-node discovery: identifying soft-intervention targets across domains.

This module implements the paper's adaptation of the Ψ-FCI idea (Jaber et
al. 2020) to the two-domain network-telemetry setting:

1. Pool source samples (``F = 0``) and target samples (``F = 1``).
2. For every feature ``X`` test ``X ⊥ F | Pa(X)`` (Eq. 2 of the paper).
3. Features for which the test *rejects* are the intervention targets — the
   **domain-variant** features (Eq. 3/4).

Two engines are provided:

- :func:`discover_targets_pc` — run the full PC algorithm on the pooled data
  with the F-node included (exact, but only tractable for small feature
  counts; used in tests and the didactic example).
- :class:`FNodeDiscovery` — the scalable procedure used on the real
  workloads.  As §VI-D of the paper notes, only relationships *with the
  F-node* are needed, so instead of building the whole 442-node graph we
  approximate each feature's parent set with its most correlated source-
  domain features and run a single conditional test per feature.  This keeps
  the number of CI tests linear in the feature count.

The CI tests themselves run on :class:`repro.causal.engine.CIEngine`: the
size-0 tests for all features are one batched sweep, the conditional tests
share cached Cholesky factors per conditioning tuple, and the subset search
optionally fans out over a process pool (``n_jobs``) with a deterministic
feature-order merge.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.causal.ci_tests import (
    _observe_ci_test,
    fisher_z_test,
    regression_invariance_test,
)
from repro.causal.engine import (
    CIEngine,
    init_search_worker,
    resolve_n_jobs,
    search_chunk_worker,
)
from repro.causal.pc import pc_algorithm
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array

F_NODE = "F"

#: features per child span in the discovery trace — coarse enough to keep
#: traces small on 442-feature data, fine enough to localize the cost
CI_BATCH_SIZE = 32


@dataclass
class FNodeResult:
    """Result of intervention-target discovery.

    Attributes
    ----------
    variant_indices / invariant_indices:
        Column indices of the domain-variant / domain-invariant features.
    p_values:
        Per-feature p-value for the ``X ⊥ F | Pa(X)`` test.
    parent_sets:
        The conditioning set used for every feature.
    n_tests:
        Total number of CI tests run (drives the running-time benchmark).
    """

    variant_indices: np.ndarray
    invariant_indices: np.ndarray
    p_values: np.ndarray
    parent_sets: list[tuple[int, ...]] = field(default_factory=list)
    n_tests: int = 0

    @property
    def n_variant(self) -> int:
        return int(len(self.variant_indices))

    def variant_mask(self, n_features: int) -> np.ndarray:
        """Boolean mask over columns, True where domain-variant."""
        mask = np.zeros(n_features, dtype=bool)
        mask[self.variant_indices] = True
        return mask


class FNodeDiscovery:
    """Scalable discovery of soft-intervention targets (domain-variant features).

    For every feature ``X`` the procedure mirrors the PC skeleton phase for
    the single edge ``X — F``: candidate conditioning variables are the
    features most correlated with ``X`` in the source domain, and the edge is
    *removed* (X declared invariant) as soon as **any** conditioning subset
    ``S`` — including the empty set — makes ``X ⊥ F | S`` hold.  This subset
    search is what distinguishes the three causal roles correctly:

    - an intervention **target** stays dependent on F under every subset;
    - a **child** of a target is separated by conditioning on the (shifted)
      parent;
    - a **parent** of a target is separated by the empty set (its own
      marginal is untouched — children do not influence parents), which a
      fixed-conditioning-set test gets wrong.

    Parameters
    ----------
    alpha:
        Significance level; features whose every subset test yields
        ``p < alpha`` are declared variant.
    max_parents:
        Number of top-correlated candidate conditioners considered.
    max_cond_size:
        Largest conditioning-subset size tried (PC's depth limit).
    min_correlation:
        Candidate conditioners must exceed this absolute source-domain
        correlation (prevents conditioning on unrelated noise columns).
    n_jobs:
        Worker processes for the conditional subset search (``-1`` = all
        cores).  Features are chunked across workers and merged back in
        feature order, so results are bit-identical to ``n_jobs=1``.
    ridge:
        Ridge strength of the conditional regression (matches
        :func:`repro.causal.ci_tests.regression_invariance_test`).
    """

    def __init__(
        self,
        *,
        alpha: float = 0.01,
        max_parents: int = 5,
        max_cond_size: int = 2,
        min_correlation: float = 0.2,
        n_jobs: int = 1,
        ridge: float = 1e-3,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValidationError("alpha must be in (0, 1)")
        if max_parents < 0:
            raise ValidationError("max_parents must be >= 0")
        if max_cond_size < 0:
            raise ValidationError("max_cond_size must be >= 0")
        self.alpha = alpha
        self.max_parents = max_parents
        self.max_cond_size = max_cond_size
        self.min_correlation = min_correlation
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.ridge = ridge

    def _candidates(self, corr: np.ndarray, j: int) -> tuple[int, ...]:
        """Top-``max_parents`` source-correlated features for column j."""
        if self.max_parents == 0:
            return ()
        row = np.abs(corr[j]).copy()
        row[j] = 0.0
        row[~np.isfinite(row)] = 0.0
        order = np.argsort(row)[::-1][: self.max_parents]
        return tuple(int(k) for k in order if row[k] >= self.min_correlation)

    def discover(self, X_source, X_target) -> FNodeResult:
        """Identify intervention targets between the two domains.

        Both matrices must share the same feature order.  Works with as few
        as a handful of target samples (the few-shot regime): power simply
        drops, so fewer variant features are detected — the behaviour the
        paper reports in §VI-C (35/68/75 variants at 1/5/10 shots on 5GC).
        """
        X_source = check_array(X_source, name="X_source", min_samples=4)
        X_target = check_array(X_target, name="X_target", min_samples=2)
        if X_source.shape[1] != X_target.shape[1]:
            raise ValidationError(
                f"domains disagree on feature count: "
                f"{X_source.shape[1]} vs {X_target.shape[1]}"
            )
        d = X_source.shape[1]
        # source-domain correlation matrix for conditioning-candidate proxies;
        # constant columns yield NaN rows that _candidates() zeroes out
        with np.errstate(invalid="ignore", divide="ignore"):
            corr = np.corrcoef(X_source, rowvar=False)
        if d == 1:
            corr = np.array([[1.0]])
        engine = CIEngine(X_source, X_target, ridge=self.ridge)
        registry = get_metrics()
        tracer = get_tracer()

        # the FS span decomposes into CI-test-batch child spans (the batched
        # marginal sweep, then chunks of conditional subset searches) so a
        # trace shows where the dominant (§VI-D) discovery cost goes
        with tracer.span("fs.discover", n_features=d, n_jobs=self.n_jobs) as fs_span:
            t0 = time.perf_counter()
            with tracer.span(
                "fs.ci_batch", feature_start=0, feature_stop=d, stage="marginal"
            ) as marginal_span:
                p_values = engine.marginal_pvalues().copy()
                marginal_span.tag(n_tests=d)
            if registry.enabled:
                per_test = (time.perf_counter() - t0) / max(d, 1)
                for p in p_values:
                    _observe_ci_test(registry, "invariance", 0, float(p), per_test)
            n_tests = d
            parent_sets: list[tuple[int, ...]] = [() for _ in range(d)]

            # only features failing the marginal test enter the subset search
            tasks = []
            if self.max_parents > 0 and self.max_cond_size > 0:
                tasks = [
                    (int(j), candidates, float(p_values[j]))
                    for j in np.nonzero(p_values < self.alpha)[0]
                    if (candidates := self._candidates(corr, int(j)))
                ]
            searched = self._search(engine, X_source, X_target, tasks, tracer)
            for j, best_p, separating, n_cond, log in searched:
                p_values[j] = best_p
                parent_sets[j] = separating
                n_tests += n_cond
                if registry.enabled:
                    for cond_size, p, seconds in log:
                        _observe_ci_test(registry, "invariance", cond_size, p, seconds)
            fs_span.tag(n_tests=n_tests)

        variant = np.where(p_values < self.alpha)[0]
        invariant = np.where(p_values >= self.alpha)[0]
        if registry.enabled:
            registry.counter("fs_discoveries_total").inc()
            registry.gauge("fs_n_variant").set(len(variant))
            registry.gauge("fs_n_features").set(d)
        return FNodeResult(
            variant_indices=variant,
            invariant_indices=invariant,
            p_values=p_values,
            parent_sets=parent_sets,
            n_tests=n_tests,
        )

    def _search(self, engine, X_source, X_target, tasks, tracer) -> list:
        """Run the conditional subset searches, serially or in a process pool.

        Returns ``(j, best_p, separating, n_tests, log)`` rows; the merge key
        is the feature index, so worker scheduling cannot reorder results.
        """
        if not tasks:
            return []
        chunks = [
            tasks[start : start + CI_BATCH_SIZE]
            for start in range(0, len(tasks), CI_BATCH_SIZE)
        ]
        results: list = []
        if self.n_jobs == 1:
            for chunk in chunks:
                with tracer.span(
                    "fs.ci_batch",
                    feature_start=chunk[0][0],
                    feature_stop=chunk[-1][0] + 1,
                    stage="conditional",
                ) as batch_span:
                    batch_tests = 0
                    for j, candidates, marginal_p in chunk:
                        out = engine.search_feature(
                            j,
                            candidates,
                            marginal_p,
                            alpha=self.alpha,
                            max_cond_size=self.max_cond_size,
                        )
                        results.append((j, *out))
                        batch_tests += out[2]
                    batch_span.tag(n_tests=batch_tests)
            return results
        with tracer.span(
            "fs.ci_batch",
            feature_start=tasks[0][0],
            feature_stop=tasks[-1][0] + 1,
            stage="conditional",
            n_jobs=self.n_jobs,
        ) as batch_span:
            with ProcessPoolExecutor(
                max_workers=min(self.n_jobs, len(chunks)),
                initializer=init_search_worker,
                initargs=(
                    engine.Xs,
                    engine.Xt,
                    self.alpha,
                    self.max_cond_size,
                    self.ridge,
                ),
            ) as pool:
                for chunk_result in pool.map(search_chunk_worker, chunks):
                    results.extend(chunk_result)
            batch_span.tag(n_tests=sum(row[3] for row in results))
        return results


def _mixed_ci_test(f_col: int):
    """CI test for pooled data where column ``f_col`` is the binary F-node.

    Dispatches to :func:`regression_invariance_test` whenever the pair
    involves F, otherwise to Fisher-z.
    """

    def test(data: np.ndarray, i: int, j: int, cond: tuple[int, ...]) -> float:
        if f_col in (i, j):
            x_col = j if i == f_col else i
            f = data[:, f_col].astype(bool)
            z_cols = [c for c in cond if c != f_col]
            z_s = data[np.ix_(~f, z_cols)] if z_cols else None
            z_t = data[np.ix_(f, z_cols)] if z_cols else None
            return regression_invariance_test(
                data[~f, x_col], data[f, x_col], z_s, z_t
            )
        return fisher_z_test(data, i, j, cond)

    return test


def discover_targets_pc(
    X_source,
    X_target,
    *,
    alpha: float = 0.05,
    max_cond_size: int = 2,
    feature_names: list | None = None,
) -> tuple[FNodeResult, "object"]:
    """Exact Ψ-FCI-style discovery: full PC on the pooled data with an F-node.

    Returns ``(result, pc_result)`` where ``pc_result.graph`` is the learned
    CPDAG.  Only tractable for small feature counts (tests, examples); the
    scalable path is :class:`FNodeDiscovery`.
    """
    X_source = check_array(X_source, name="X_source", min_samples=4)
    X_target = check_array(X_target, name="X_target", min_samples=2)
    if X_source.shape[1] != X_target.shape[1]:
        raise ValidationError("domains disagree on feature count")
    d = X_source.shape[1]
    names = feature_names if feature_names is not None else list(range(d))
    if len(names) != d:
        raise ValidationError("feature_names length must match feature count")
    pooled = np.vstack([X_source, X_target])
    f_column = np.concatenate(
        [np.zeros(X_source.shape[0]), np.ones(X_target.shape[0])]
    )
    data = np.column_stack([pooled, f_column])
    nodes = list(names) + [F_NODE]
    pc_result = pc_algorithm(
        data,
        nodes,
        alpha=alpha,
        max_cond_size=max_cond_size,
        ci_test=_mixed_ci_test(d),
        forbidden_cond={F_NODE},
        exogenous={F_NODE},
    )
    variant_names = pc_result.graph.neighbors(F_NODE)
    name_to_idx = {name: k for k, name in enumerate(names)}
    variant = np.array(sorted(name_to_idx[v] for v in variant_names), dtype=np.int64)
    invariant = np.setdiff1d(np.arange(d), variant)
    p_values = np.ones(d)
    p_values[variant] = 0.0  # PC gives adjacency, not per-feature p-values
    result = FNodeResult(
        variant_indices=variant,
        invariant_indices=invariant,
        p_values=p_values,
        parent_sets=[],
        n_tests=pc_result.n_tests,
    )
    return result, pc_result
