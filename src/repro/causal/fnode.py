"""F-node discovery: identifying soft-intervention targets across domains.

This module implements the paper's adaptation of the Ψ-FCI idea (Jaber et
al. 2020) to the two-domain network-telemetry setting:

1. Pool source samples (``F = 0``) and target samples (``F = 1``).
2. For every feature ``X`` test ``X ⊥ F | Pa(X)`` (Eq. 2 of the paper).
3. Features for which the test *rejects* are the intervention targets — the
   **domain-variant** features (Eq. 3/4).

Two engines are provided:

- :func:`discover_targets_pc` — run the full PC algorithm on the pooled data
  with the F-node included (exact, but only tractable for small feature
  counts; used in tests and the didactic example).
- :class:`FNodeDiscovery` — the scalable procedure used on the real
  workloads.  As §VI-D of the paper notes, only relationships *with the
  F-node* are needed, so instead of building the whole 442-node graph we
  approximate each feature's parent set with its most correlated source-
  domain features and run a single conditional test per feature.  This keeps
  the number of CI tests linear in the feature count.

The CI tests themselves run on :class:`repro.causal.engine.CIEngine`: the
size-0 tests for all features are one batched sweep, the conditional tests
share cached Cholesky factors per conditioning tuple, and the subset search
optionally fans out over a process pool (``n_jobs``) with a deterministic
feature-order merge.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.causal.ci_tests import (
    _observe_ci_test,
    fisher_z_test,
    regression_invariance_test,
)
from repro.causal.engine import (
    CIEngine,
    init_search_worker,
    init_search_worker_shm,
    rank_candidates,
    resolve_n_jobs,
    search_chunk_worker,
)
from repro.causal.shm import create_shared_matrices
from repro.causal.pc import pc_algorithm
from repro.causal.warm import CIStatCache, WarmState, matrix_fingerprint
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array

F_NODE = "F"

#: features per child span in the discovery trace — coarse enough to keep
#: traces small on 442-feature data, fine enough to localize the cost
CI_BATCH_SIZE = 32

#: warm re-discovery modes (see :meth:`FNodeDiscovery.rediscover`)
WARM_MODES = ("exact", "confirm")


@dataclass
class FNodeResult:
    """Result of intervention-target discovery.

    Attributes
    ----------
    variant_indices / invariant_indices:
        Column indices of the domain-variant / domain-invariant features.
    p_values:
        Per-feature p-value for the ``X ⊥ F | Pa(X)`` test.
    parent_sets:
        The conditioning set used for every feature.
    n_tests:
        Total number of CI tests run (drives the running-time benchmark).
    coverage:
        Fraction of subset searches that ran to completion.  Always 1.0
        outside budgeted mode; under a test-count or wall-clock budget it
        reports how much of the full search the budget afforded.
    marginal_p_values:
        Per-feature *pre-search* marginal (size-0) p-values.  ``p_values``
        holds each feature's best p over all tested subsets, so the raw
        marginals are kept separately — warm re-discovery uses them to
        decide which marginal tests are worth re-running.  ``None`` on
        results produced before warm-start support (older artifacts).
    """

    variant_indices: np.ndarray
    invariant_indices: np.ndarray
    p_values: np.ndarray
    parent_sets: list[tuple[int, ...]] = field(default_factory=list)
    n_tests: int = 0
    coverage: float = 1.0
    marginal_p_values: np.ndarray | None = None

    @property
    def n_variant(self) -> int:
        return int(len(self.variant_indices))

    def variant_mask(self, n_features: int) -> np.ndarray:
        """Boolean mask over columns, True where domain-variant."""
        mask = np.zeros(n_features, dtype=bool)
        mask[self.variant_indices] = True
        return mask


class FNodeDiscovery:
    """Scalable discovery of soft-intervention targets (domain-variant features).

    For every feature ``X`` the procedure mirrors the PC skeleton phase for
    the single edge ``X — F``: candidate conditioning variables are the
    features most correlated with ``X`` in the source domain, and the edge is
    *removed* (X declared invariant) as soon as **any** conditioning subset
    ``S`` — including the empty set — makes ``X ⊥ F | S`` hold.  This subset
    search is what distinguishes the three causal roles correctly:

    - an intervention **target** stays dependent on F under every subset;
    - a **child** of a target is separated by conditioning on the (shifted)
      parent;
    - a **parent** of a target is separated by the empty set (its own
      marginal is untouched — children do not influence parents), which a
      fixed-conditioning-set test gets wrong.

    Parameters
    ----------
    alpha:
        Significance level; features whose every subset test yields
        ``p < alpha`` are declared variant.
    max_parents:
        Number of top-correlated candidate conditioners considered.
    max_cond_size:
        Largest conditioning-subset size tried (PC's depth limit).
    min_correlation:
        Candidate conditioners must exceed this absolute source-domain
        correlation (prevents conditioning on unrelated noise columns).
    n_jobs:
        Worker processes for the conditional subset search (``-1`` = all
        cores).  Features are chunked across workers and merged back in
        feature order, so results are bit-identical to ``n_jobs=1``.  The
        matrices reach workers zero-copy via shared memory when available
        (see ``use_shared_memory``).
    ridge:
        Ridge strength of the conditional regression (matches
        :func:`repro.causal.ci_tests.regression_invariance_test`).
    prune_k:
        Cap on each feature's *primary* conditioning-candidate pool: the
        top ``prune_k`` candidates by marginal-association effect size are
        searched first.  With ``prune_exact=True`` (default) the remaining
        candidates form a fallback pool searched only if the primary pool
        fails to separate the feature — variant decisions are then exactly
        those of the unpruned search, but features separated by a
        top-ranked conditioner (the common case) never pay for the full
        subset enumeration.  ``None`` disables pruning.
    prune_exact:
        When False, the fallback phase is skipped: only the pruned pool is
        searched (approximate, faster; some variants may be over-reported).
    budget / budget_seconds:
        Anytime mode — a global cap on the number of conditional CI tests
        and/or the wall-clock time of the subset-search phase.  Features
        are processed closest-to-clearing first and candidates are ranked
        by effect size, so tests form a deterministic prefix across budget
        values; a larger budget can only *clear* more features, so its
        variant set is a subset of any smaller budget's.  Budgeted runs are
        serial (a global countdown cannot span processes) and report the
        searched fraction in :attr:`FNodeResult.coverage`.
    stats_dtype:
        ``"float64"`` (default) or ``"float32"``: run the batched
        statistics in single precision, with every p-value within
        ``alpha/2`` of ``alpha`` re-verified in float64 so variant
        decisions match the float64 path.
    use_shared_memory:
        Publish the matrices to workers via ``multiprocessing.shared_memory``
        (zero-copy) instead of pickling them per worker.  Falls back to
        pickling automatically when shared memory is unavailable; both
        fan-outs are result-identical.
    multi_rhs:
        Frozen PR-2 solve mode (benchmark baseline): betas for all
        features are solved per conditioning tuple instead of per
        ``(tuple, feature)``.  float64 only.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.01,
        max_parents: int = 5,
        max_cond_size: int = 2,
        min_correlation: float = 0.2,
        n_jobs: int = 1,
        ridge: float = 1e-3,
        prune_k: int | None = None,
        prune_exact: bool = True,
        budget: int | None = None,
        budget_seconds: float | None = None,
        stats_dtype: str = "float64",
        use_shared_memory: bool = True,
        multi_rhs: bool = False,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValidationError("alpha must be in (0, 1)")
        if max_parents < 0:
            raise ValidationError("max_parents must be >= 0")
        if max_cond_size < 0:
            raise ValidationError("max_cond_size must be >= 0")
        if prune_k is not None and prune_k < 1:
            raise ValidationError("prune_k must be a positive int or None")
        if budget is not None and budget < 0:
            raise ValidationError("budget must be >= 0 or None")
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValidationError("budget_seconds must be > 0 or None")
        self.alpha = alpha
        self.max_parents = max_parents
        self.max_cond_size = max_cond_size
        self.min_correlation = min_correlation
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.ridge = ridge
        self.prune_k = prune_k
        self.prune_exact = prune_exact
        self.budget = budget
        self.budget_seconds = budget_seconds
        self.stats_dtype = stats_dtype
        self.use_shared_memory = use_shared_memory
        self.multi_rhs = multi_rhs
        #: WarmState captured by the last discover()/rediscover() call —
        #: feed it to the next rediscover() (or persist it via the
        #: FeatureSeparator estimator state) to warm-start that run
        self.warm_state_: WarmState | None = None
        #: CI-engine cache counters of the last discover()/rediscover()
        #: call (design/beta/warm hits+misses plus warm invalidations) —
        #: the warm-cache effectiveness evidence `repro rediscover --json`
        #: reports
        self.cache_stats_: dict | None = None

    def _candidates(self, corr: np.ndarray, j: int) -> tuple[int, ...]:
        """Top-``max_parents`` source-correlated features for column j."""
        if self.max_parents == 0:
            return ()
        row = np.abs(corr[j]).copy()
        row[j] = 0.0
        row[~np.isfinite(row)] = 0.0
        order = np.argsort(row)[::-1][: self.max_parents]
        return tuple(int(k) for k in order if row[k] >= self.min_correlation)

    def discover(self, X_source, X_target) -> FNodeResult:
        """Identify intervention targets between the two domains.

        Both matrices must share the same feature order.  Works with as few
        as a handful of target samples (the few-shot regime): power simply
        drops, so fewer variant features are detected — the behaviour the
        paper reports in §VI-C (35/68/75 variants at 1/5/10 shots on 5GC).

        A cold run still accumulates a :class:`~repro.causal.warm.WarmState`
        (exposed as :attr:`warm_state_`) so the *next* run can warm-start.
        """
        return self._discover(X_source, X_target, None, None, 0.0)

    def rediscover(
        self,
        X_source,
        X_target,
        warm: WarmState,
        *,
        mode: str = "exact",
        recheck_band: float = 0.1,
    ) -> FNodeResult:
        """Warm-start re-discovery after new few-shot target rows arrived.

        Composes the persistent CI-statistics cache with prior-guided
        search.  ``warm`` is the :attr:`warm_state_` of a previous
        discover/rediscover over the *same source matrix* (typically with a
        smaller target set); on any guard mismatch — changed source rows,
        different feature count — the run falls back to a cold discovery
        (and counts the dropped cache entries as invalidations), so
        ``rediscover`` never returns worse results than ``discover``.

        ``mode`` selects the reuse level (see EXPERIMENTS.md for the
        equivalence policy):

        - ``"exact"`` (default, provably variant-set-identical to cold):
          reuse the byte-for-byte-valid source-side cache entries,
          confirmation-test each feature's previous separating set first
          (with the full enumeration as fallback — the pruning contract),
          and order the remaining searches by the previous run's
          closest-to-clearing scores.  The marginal sweep is re-run in
          full.
        - ``"confirm"`` (confirmation-tested): additionally reuse prior
          *marginal* p-values for features whose prior marginal sits above
          ``recheck_band`` (re-testing only the near-threshold ones), and
          short-circuit previously-variant features after one confirmation
          test on their prior closest-to-clearing subset when both the
          current marginal and the confirmation p-value stay below
          ``alpha/2``; borderline features fall back to the full search.
          Decisions are not formally guaranteed but are empirically
          validated (``repro bench --warm`` asserts variant-set equality
          with cold discovery on every path).  Requires the warm state to
          come from a run with identical discovery parameters; degrades to
          ``"exact"`` otherwise.  Budgeted runs also degrade to ``"exact"``
          (the budget countdown must account every conditional test).
        """
        if mode not in WARM_MODES:
            raise ValidationError(
                f"rediscover mode must be one of {WARM_MODES}, got {mode!r}"
            )
        if warm is None:
            raise ValidationError(
                "rediscover requires a WarmState; use discover() for cold runs"
            )
        return self._discover(X_source, X_target, warm, mode, float(recheck_band))

    def _params_key(self) -> dict:
        """Discovery parameters that warm ``confirm`` mode must match."""
        return {
            "alpha": float(self.alpha),
            "max_parents": int(self.max_parents),
            "max_cond_size": int(self.max_cond_size),
            "min_correlation": float(self.min_correlation),
            "ridge": float(self.ridge),
            "stats_dtype": str(self.stats_dtype),
            "prune_k": None if self.prune_k is None else int(self.prune_k),
            "prune_exact": bool(self.prune_exact),
        }

    def _resolve_warm(self, warm, mode, d, src_fp):
        """Gate the warm state behind its validity guards.

        Returns ``(priors, stat_cache, invalidated, effective_mode)``.
        ``priors`` is ``None`` (cold fallback) unless the warm state
        describes this exact source matrix and feature count; the cache is
        dropped — its entries counted as invalidated — unless its (ridge,
        dtype, source-fingerprint) guards match byte-for-byte reuse.  A
        fresh empty cache is attached otherwise so this run captures state
        for the next one (``multi_rhs`` baseline mode never caches).
        """
        priors = None
        cache = None
        invalidated = 0
        if warm is not None:
            old = warm.cache
            if old is not None and not self.multi_rhs and old.matches(
                ridge=self.ridge,
                stats_dtype=self.stats_dtype,
                source_fingerprint=src_fp,
            ):
                cache = old
            elif old is not None:
                invalidated = old.invalidate()
            p = warm.priors
            if (
                p is not None
                and warm.n_features == d
                and len(p.p_values) == d
                and warm.source_fingerprint == src_fp
            ):
                priors = p
        if priors is None:
            mode = None
        elif mode == "confirm":
            marg = priors.marginal_p_values
            budgeted = self.budget is not None or self.budget_seconds is not None
            if (
                budgeted
                or marg is None
                or len(marg) != d
                or warm.params != self._params_key()
            ):
                mode = "exact"  # decisions can't be trusted; guards still hold
        if cache is None and not self.multi_rhs:
            cache = CIStatCache(
                ridge=self.ridge,
                stats_dtype=self.stats_dtype,
                source_fingerprint=src_fp,
            )
        return priors, cache, invalidated, mode

    def _prior_set(
        self, priors: FNodeResult, j: int, pool: tuple[int, ...]
    ) -> tuple[int, ...] | None:
        """Feature ``j``'s previous separating/closest-to-clearing set.

        Only returned when the cold search over ``pool`` (the *effective*
        enumerated pool) would have tested it anyway — the guard that keeps
        prior-seeded search decision-exact.
        """
        sets = priors.parent_sets
        if j >= len(sets):
            return None
        prior = tuple(int(c) for c in sets[j])
        if not prior or len(prior) > self.max_cond_size:
            return None
        if not set(prior).issubset(pool):
            return None
        return prior

    def _confirm_variant(self, engine, j, marginal_p, prior_set):
        """One-test confirmation of a previously-variant feature (confirm mode).

        A feature stays variant without re-enumerating its subsets when its
        current marginal p-value *and* one confirmation test on its prior
        closest-to-clearing subset both sit below ``alpha / 2`` — twice the
        evidence margin the decision needs.  Returns a search-result row, or
        ``None`` when the feature is borderline and must take the full
        search path.
        """
        thresh = 0.5 * self.alpha
        if marginal_p >= thresh:
            return None
        if not prior_set:
            # the prior search never found a subset better than the (deep
            # below threshold) marginal; nothing worth re-testing
            return (j, marginal_p, (), 0, [], True)
        t0 = time.perf_counter()
        p = float(engine.conditional_pvalues(j, [prior_set])[0])
        seconds = time.perf_counter() - t0
        if p >= thresh:
            return None
        best_p = max(marginal_p, p)
        separating = prior_set if p > marginal_p else ()
        return (j, best_p, separating, 1, [(len(prior_set), p, seconds)], True)

    def _discover(self, X_source, X_target, warm, mode, recheck_band) -> FNodeResult:
        X_source = check_array(X_source, name="X_source", min_samples=4)
        X_target = check_array(X_target, name="X_target", min_samples=2)
        if X_source.shape[1] != X_target.shape[1]:
            raise ValidationError(
                f"domains disagree on feature count: "
                f"{X_source.shape[1]} vs {X_target.shape[1]}"
            )
        d = X_source.shape[1]
        # source-domain correlation matrix for conditioning-candidate proxies;
        # constant columns yield NaN rows that _candidates() zeroes out
        with np.errstate(invalid="ignore", divide="ignore"):
            corr = np.corrcoef(X_source, rowvar=False)
        if d == 1:
            corr = np.array([[1.0]])
        self.warm_state_ = None
        src_fp = matrix_fingerprint(X_source)
        priors, stat_cache, invalidated, mode = self._resolve_warm(
            warm, mode, d, src_fp
        )
        engine = CIEngine(
            X_source,
            X_target,
            ridge=self.ridge,
            stats_dtype=self.stats_dtype,
            verify_alpha=self.alpha,
            multi_rhs=self.multi_rhs,
            stat_cache=stat_cache,
        )
        registry = get_metrics()
        tracer = get_tracer()
        budgeted = self.budget is not None or self.budget_seconds is not None

        # the FS span decomposes into CI-test-batch child spans (the batched
        # marginal sweep, then chunks of conditional subset searches) so a
        # trace shows where the dominant (§VI-D) discovery cost goes
        with tracer.span(
            "fs.discover", n_features=d, n_jobs=self.n_jobs, warm=mode or "cold"
        ) as fs_span:
            t0 = time.perf_counter()
            if mode == "confirm":
                # partial marginal sweep: re-test only features whose prior
                # marginal p sits near the threshold; reuse the rest
                band = max(recheck_band, self.alpha)
                prior_marg = np.asarray(priors.marginal_p_values, dtype=np.float64)
                p_values = prior_marg.copy()
                recheck = np.nonzero(prior_marg < band)[0]
                with tracer.span(
                    "fs.ci_batch", feature_start=0, feature_stop=d, stage="marginal"
                ) as marginal_span:
                    if recheck.size:
                        p_values[recheck] = engine.marginal_pvalues_for(recheck)
                    marginal_span.tag(
                        n_tests=int(recheck.size), reused=int(d - recheck.size)
                    )
                n_marginal = int(recheck.size)
                if registry.enabled and recheck.size:
                    per_test = (time.perf_counter() - t0) / recheck.size
                    for p in p_values[recheck]:
                        _observe_ci_test(registry, "invariance", 0, float(p), per_test)
            else:
                with tracer.span(
                    "fs.ci_batch", feature_start=0, feature_stop=d, stage="marginal"
                ) as marginal_span:
                    p_values = engine.marginal_pvalues().copy()
                    marginal_span.tag(n_tests=d)
                n_marginal = d
                if registry.enabled:
                    per_test = (time.perf_counter() - t0) / max(d, 1)
                    for p in p_values:
                        _observe_ci_test(registry, "invariance", 0, float(p), per_test)
            n_tests = n_marginal
            marginal = p_values.copy()
            parent_sets: list[tuple[int, ...]] = [() for _ in range(d)]
            prior_variant = (
                set(int(i) for i in priors.variant_indices)
                if priors is not None
                else set()
            )

            # only features failing the marginal test enter the subset search;
            # each task is (j, primary candidates, fallback candidates, p,
            # prior separating set or None)
            tasks = []
            confirm_rows = []
            if self.max_parents > 0 and self.max_cond_size > 0:
                for j in np.nonzero(p_values < self.alpha)[0]:
                    j = int(j)
                    pool = self._candidates(corr, j)
                    if not pool:
                        continue
                    primary, extra = self._prune(corr, p_values, j, pool, budgeted)
                    prior_set = None
                    if priors is not None:
                        effective = extra if extra is not None else primary
                        prior_set = self._prior_set(priors, j, effective)
                    if mode == "confirm" and j in prior_variant:
                        row = self._confirm_variant(
                            engine, j, float(p_values[j]), prior_set
                        )
                        if row is not None:
                            confirm_rows.append(row)
                            continue
                    tasks.append((j, primary, extra, float(p_values[j]), prior_set))
            if budgeted:
                # closest-to-clearing first: a deterministic order in which
                # tight budgets spend their tests where clears are cheapest,
                # and any budget's tests are a prefix of a larger budget's
                tasks.sort(key=lambda t: (-t[3], t[0]))
            elif priors is not None:
                # prior closest-to-clearing scores order the remaining
                # searches: cheap one-test confirmations first (result-
                # neutral — features are independent; order affects only
                # scheduling and cache locality)
                prior_p = np.asarray(priors.p_values, dtype=np.float64)
                tasks.sort(key=lambda t: (-float(prior_p[t[0]]), t[0]))
            searched, _search_cov = self._search(engine, tasks, tracer)
            for j, best_p, separating, n_cond, log, _completed in (
                confirm_rows + searched
            ):
                p_values[j] = best_p
                parent_sets[j] = separating
                n_tests += n_cond
                if registry.enabled:
                    for cond_size, p, seconds in log:
                        _observe_ci_test(registry, "invariance", cond_size, p, seconds)
            n_units = len(tasks) + len(confirm_rows)
            n_done = len(confirm_rows) + sum(1 for row in searched if row[5])
            coverage = 1.0 if n_units == 0 else n_done / n_units
            fs_span.tag(
                n_tests=n_tests,
                warm_hits=engine.cache_stats["warm_hits"],
                warm_misses=engine.cache_stats["warm_misses"],
            )

        variant = np.where(p_values < self.alpha)[0]
        invariant = np.where(p_values >= self.alpha)[0]
        if registry.enabled:
            registry.counter("fs_discoveries_total").inc()
            registry.gauge("fs_n_variant").set(len(variant))
            registry.gauge("fs_n_features").set(d)
            stats = engine.cache_stats
            for kind in ("design", "beta", "warm"):
                registry.counter("fs.cache.hits_total", cache=kind).inc(
                    stats[f"{kind}_hits"]
                )
                registry.counter("fs.cache.misses_total", cache=kind).inc(
                    stats[f"{kind}_misses"]
                )
            registry.counter("fs.cache.invalidated_total", cache="warm").inc(
                invalidated
            )
        result = FNodeResult(
            variant_indices=variant,
            invariant_indices=invariant,
            p_values=p_values,
            parent_sets=parent_sets,
            n_tests=n_tests,
            coverage=coverage,
            marginal_p_values=marginal,
        )
        self.warm_state_ = WarmState(
            priors=result,
            cache=stat_cache,
            source_fingerprint=src_fp,
            n_features=d,
            params=self._params_key(),
        )
        self.cache_stats_ = {
            **{k: int(v) for k, v in engine.cache_stats.items()},
            "warm_invalidated": int(invalidated),
            "warmed": warm is not None,
            "mode": mode if warm is not None else "cold",
        }
        return result

    def _prune(
        self,
        corr: np.ndarray,
        marginal_p: np.ndarray,
        j: int,
        pool: tuple[int, ...],
        budgeted: bool,
    ) -> tuple[tuple[int, ...], tuple[int, ...] | None]:
        """Split feature ``j``'s candidate pool into (primary, fallback).

        Without pruning or budgeting the pool passes through untouched, so
        subset enumeration order — and therefore every reported p-value —
        is bit-identical to the unpruned engine.  With ``prune_k`` the top-k
        candidates by effect size form the primary pool; in exact mode the
        full pool becomes the fallback searched only if the primary pool
        never separates ``j``.  Budgeted runs rank the pool even when not
        pruning so a tight budget tries the most promising subsets first.
        """
        if self.prune_k is None:
            if budgeted:
                return rank_candidates(corr[j], marginal_p, pool), None
            return pool, None
        ranked = rank_candidates(corr[j], marginal_p, pool)
        if len(ranked) <= self.prune_k:
            return ranked, None
        primary = ranked[: self.prune_k]
        return primary, (ranked if self.prune_exact else None)

    def _search(self, engine, tasks, tracer) -> tuple[list, float]:
        """Run the conditional subset searches, serially or in a process pool.

        Returns ``(rows, coverage)`` where each row is ``(j, best_p,
        separating, n_tests, log, completed)``; the merge key is the feature
        index, so worker scheduling cannot reorder results.  Budgeted runs
        (test-count or wall-clock) are always serial: the budget is a global
        countdown shared across features.
        """
        if not tasks:
            return [], 1.0
        chunks = [
            tasks[start : start + CI_BATCH_SIZE]
            for start in range(0, len(tasks), CI_BATCH_SIZE)
        ]
        results: list = []
        budgeted = self.budget is not None or self.budget_seconds is not None
        if self.n_jobs == 1 or budgeted:
            remaining = self.budget
            deadline = (
                time.perf_counter() + self.budget_seconds
                if self.budget_seconds is not None
                else None
            )
            for chunk in chunks:
                with tracer.span(
                    "fs.ci_batch",
                    feature_start=chunk[0][0],
                    feature_stop=chunk[-1][0] + 1,
                    stage="conditional",
                ) as batch_span:
                    batch_tests = 0
                    for j, candidates, extra, marginal_p, prior_set in chunk:
                        out = engine.search_feature(
                            j,
                            candidates,
                            marginal_p,
                            alpha=self.alpha,
                            max_cond_size=self.max_cond_size,
                            budget=remaining,
                            deadline=deadline,
                            extra_candidates=extra,
                            prior_set=prior_set,
                        )
                        results.append((j, *out))
                        batch_tests += out[2]
                        if remaining is not None:
                            remaining -= out[2]
                    batch_span.tag(n_tests=batch_tests)
            coverage = sum(1 for row in results if row[5]) / len(tasks)
            return results, coverage
        params = {
            "alpha": self.alpha,
            "max_cond_size": self.max_cond_size,
            "ridge": self.ridge,
            "stats_dtype": self.stats_dtype,
            "verify_alpha": self.alpha,
            "multi_rhs": self.multi_rhs,
            # warm entries ride to every worker (read side); workers' new
            # entries stay worker-local — only the serial path accumulates
            # a complete cache for the next run
            "stat_cache": (
                engine.stat_cache.to_portable()
                if engine.stat_cache is not None
                else None
            ),
        }
        shared = (
            create_shared_matrices({"Xs": engine.Xs64, "Xt": engine.Xt64})
            if self.use_shared_memory
            else None
        )
        try:
            if shared is not None:
                initializer, initargs = init_search_worker_shm, (shared.meta(), params)
            else:  # shared memory unavailable: ship the matrices pickled
                initializer, initargs = (
                    init_search_worker,
                    (engine.Xs64, engine.Xt64, params),
                )
            with tracer.span(
                "fs.ci_batch",
                feature_start=tasks[0][0],
                feature_stop=tasks[-1][0] + 1,
                stage="conditional",
                n_jobs=self.n_jobs,
                shared_memory=shared is not None,
            ) as batch_span:
                with ProcessPoolExecutor(
                    max_workers=min(self.n_jobs, len(chunks)),
                    initializer=initializer,
                    initargs=initargs,
                ) as pool:
                    for chunk_rows, stats_delta in pool.map(
                        search_chunk_worker, chunks
                    ):
                        results.extend(chunk_rows)
                        engine.merge_cache_stats(stats_delta)
                batch_span.tag(n_tests=sum(row[3] for row in results))
        finally:
            # unlink even on BrokenProcessPool so /dev/shm cannot leak
            if shared is not None:
                shared.close()
        return results, 1.0


def _mixed_ci_test(f_col: int):
    """CI test for pooled data where column ``f_col`` is the binary F-node.

    Dispatches to :func:`regression_invariance_test` whenever the pair
    involves F, otherwise to Fisher-z.
    """

    def test(data: np.ndarray, i: int, j: int, cond: tuple[int, ...]) -> float:
        if f_col in (i, j):
            x_col = j if i == f_col else i
            f = data[:, f_col].astype(bool)
            z_cols = [c for c in cond if c != f_col]
            z_s = data[np.ix_(~f, z_cols)] if z_cols else None
            z_t = data[np.ix_(f, z_cols)] if z_cols else None
            return regression_invariance_test(
                data[~f, x_col], data[f, x_col], z_s, z_t
            )
        return fisher_z_test(data, i, j, cond)

    return test


def discover_targets_pc(
    X_source,
    X_target,
    *,
    alpha: float = 0.05,
    max_cond_size: int = 2,
    feature_names: list | None = None,
) -> tuple[FNodeResult, "object"]:
    """Exact Ψ-FCI-style discovery: full PC on the pooled data with an F-node.

    Returns ``(result, pc_result)`` where ``pc_result.graph`` is the learned
    CPDAG.  Only tractable for small feature counts (tests, examples); the
    scalable path is :class:`FNodeDiscovery`.
    """
    X_source = check_array(X_source, name="X_source", min_samples=4)
    X_target = check_array(X_target, name="X_target", min_samples=2)
    if X_source.shape[1] != X_target.shape[1]:
        raise ValidationError("domains disagree on feature count")
    d = X_source.shape[1]
    names = feature_names if feature_names is not None else list(range(d))
    if len(names) != d:
        raise ValidationError("feature_names length must match feature count")
    pooled = np.vstack([X_source, X_target])
    f_column = np.concatenate(
        [np.zeros(X_source.shape[0]), np.ones(X_target.shape[0])]
    )
    data = np.column_stack([pooled, f_column])
    nodes = list(names) + [F_NODE]
    pc_result = pc_algorithm(
        data,
        nodes,
        alpha=alpha,
        max_cond_size=max_cond_size,
        ci_test=_mixed_ci_test(d),
        forbidden_cond={F_NODE},
        exogenous={F_NODE},
    )
    variant_names = pc_result.graph.neighbors(F_NODE)
    name_to_idx = {name: k for k, name in enumerate(names)}
    variant = np.array(sorted(name_to_idx[v] for v in variant_names), dtype=np.int64)
    invariant = np.setdiff1d(np.arange(d), variant)
    p_values = np.ones(d)
    p_values[variant] = 0.0  # PC gives adjacency, not per-feature p-values
    result = FNodeResult(
        variant_indices=variant,
        invariant_indices=invariant,
        p_values=p_values,
        parent_sets=[],
        n_tests=pc_result.n_tests,
    )
    return result, pc_result
