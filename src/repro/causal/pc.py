"""The PC algorithm (Spirtes, Glymour & Scheines) for causal discovery.

Used two ways in the reproduction:

- directly, on small feature sets, to learn a full CPDAG (tests and the
  didactic examples);
- as the structural backbone of the F-node procedure in
  :mod:`repro.causal.fnode`, which — as §VI-D of the paper describes — only
  needs the edges incident to the F-node and therefore avoids building the
  whole graph on 442-feature data.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.causal.ci_tests import fisher_z_test
from repro.causal.graph import CausalGraph
from repro.obs.trace import get_tracer
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, mark_validated


class PCResult:
    """Output of :func:`pc_algorithm`: the CPDAG plus the separating sets."""

    def __init__(self, graph: CausalGraph, sepsets: dict, n_tests: int) -> None:
        self.graph = graph
        self.sepsets = sepsets
        self.n_tests = n_tests


def pc_skeleton(
    data: np.ndarray,
    nodes: list,
    *,
    alpha: float = 0.05,
    max_cond_size: int | None = None,
    ci_test=fisher_z_test,
    forbidden_cond: set | None = None,
) -> tuple[CausalGraph, dict, int]:
    """Learn the undirected skeleton by iterative conditional-independence tests.

    Parameters
    ----------
    data:
        (n_samples, n_nodes) matrix, columns aligned with ``nodes``.
    alpha:
        Significance level; p-values above it delete the edge.
    max_cond_size:
        Cap on conditioning-set size (None = up to n_nodes - 2).
    ci_test:
        ``ci_test(data, i, j, cond) -> p_value``.
    forbidden_cond:
        Nodes never used inside conditioning sets (the F-node: conditioning
        on the manually added domain indicator is meaningless).
    """
    # validate once, then mark: the per-test check_array inside ci_test
    # short-circuits instead of re-scanning the matrix every iteration
    data = mark_validated(check_array(data))
    if data.shape[1] != len(nodes):
        raise ValidationError("data columns must align with nodes")
    if not 0.0 < alpha < 1.0:
        raise ValidationError("alpha must be in (0, 1)")
    col = {node: k for k, node in enumerate(nodes)}
    forbidden_cond = forbidden_cond or set()
    graph = CausalGraph.complete(nodes)
    sepsets: dict = {}
    n_tests = 0
    tracer = get_tracer()
    level = 0
    limit = max_cond_size if max_cond_size is not None else len(nodes) - 2
    while level <= limit:
        any_tested = False
        # one span per conditioning-set size: the PC cost profile is exactly
        # the per-level CI-test counts (the paper's dominant FS cost)
        with tracer.span("pc.level", cond_size=level) as span:
            level_tests = n_tests
            for a in list(graph.nodes):
                for b in sorted(graph.undirected_neighbors(a), key=str):
                    candidates = sorted(
                        (graph.neighbors(a) - {b}) - forbidden_cond, key=str
                    )
                    if len(candidates) < level:
                        continue
                    removed = False
                    for cond in combinations(candidates, level):
                        any_tested = True
                        n_tests += 1
                        p = ci_test(data, col[a], col[b], tuple(col[c] for c in cond))
                        if p > alpha:
                            graph.remove_edge(a, b)
                            sepsets[frozenset((a, b))] = set(cond)
                            removed = True
                            break
                    if removed:
                        continue
            span.tag(n_tests=n_tests - level_tests)
        if not any_tested and level > 0:
            break
        level += 1
    return graph, sepsets, n_tests


def pc_algorithm(
    data: np.ndarray,
    nodes: list | None = None,
    *,
    alpha: float = 0.05,
    max_cond_size: int | None = None,
    ci_test=fisher_z_test,
    forbidden_cond: set | None = None,
    exogenous: set | None = None,
) -> PCResult:
    """Full PC: skeleton, v-structure orientation, Meek rules.

    ``exogenous`` lists nodes treated as exogenous regime indicators — the
    manually added F-node of the Ψ-FCI formulation.  Nothing in the data can
    cause such a node, so every edge left undirected at it is oriented away
    from it (``F → X``), matching the paper's constraint that the F-node's
    orientation is fixed because the node was added by hand.
    """
    data = mark_validated(check_array(data))
    if nodes is None:
        nodes = list(range(data.shape[1]))
    graph, sepsets, n_tests = pc_skeleton(
        data,
        nodes,
        alpha=alpha,
        max_cond_size=max_cond_size,
        ci_test=ci_test,
        forbidden_cond=forbidden_cond,
    )
    graph.orient_v_structures(sepsets)
    if exogenous:
        for node in exogenous:
            for nbr in list(graph.undirected_neighbors(node)):
                graph.orient(node, nbr)
    graph.apply_meek_rules()
    return PCResult(graph, sepsets, n_tests)
