"""Warm-start state for incremental F-node re-discovery.

The drift-mitigation loop is inherently repeated: every drift event re-runs
discovery on a pooled matrix that differs from the previous run only by a
handful of few-shot target rows.  Two observations make re-runs cheap:

1. **The expensive CI-test state depends on the source domain only.**  The
   regression-invariance test fits X on Z with *source* samples (the
   observational mechanism), so design matrices, Gram/Cholesky factors,
   per-feature ridge betas and source residuals are all byte-for-byte
   reusable across runs as long as the source matrix is unchanged — only
   the cheap target-side residuals and the final two-sample statistics
   involve the new rows.  :class:`CIStatCache` persists exactly that state,
   keyed by conditioning tuple and guarded by a content fingerprint of the
   source matrix: a re-run with changed source rows invalidates everything
   (every entry derives from those rows), a re-run with only new target
   shots invalidates nothing.

2. **The previous run's decisions are strong priors.**  :class:`WarmState`
   couples the cache with the previous :class:`~repro.causal.fnode.FNodeResult`
   (including the pre-search marginal p-values) so
   :meth:`~repro.causal.fnode.FNodeDiscovery.rediscover` can confirmation-test
   old separating sets first and order the remaining search by the previous
   run's closest-to-clearing scores.

Both classes serialize to the flat ``{name: ndarray}`` + ``__meta__`` layout
of the estimator protocol, so the warm state rides inside v2 artifact
bundles (``allow_pickle=False``) and a daemon-triggered refit can warm-start
from disk.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from repro.utils.errors import ValidationError

if TYPE_CHECKING:  # circular at runtime: fnode imports this module
    from repro.causal.fnode import FNodeResult

#: bump when the serialized layout changes
WARM_STATE_VERSION = 1


def matrix_fingerprint(X) -> str:
    """Content hash of a matrix: sha256 over shape, dtype and raw bytes.

    The matrix is viewed as C-contiguous float64 — the canonical form
    :class:`~repro.causal.engine.CIEngine` converts inputs to — so logically
    equal matrices fingerprint identically regardless of input dtype/layout.
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    h = hashlib.sha256()
    h.update(str(X.shape).encode())
    h.update(X.tobytes())
    return h.hexdigest()


def _encode_meta(obj) -> np.ndarray:
    return np.frombuffer(
        json.dumps(obj, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )


def _decode_meta(arr) -> dict:
    return json.loads(bytes(np.asarray(arr, dtype=np.uint8).tobytes()).decode("utf-8"))


class CIStatCache:
    """Persistent per-conditioning-tuple CI-statistics cache.

    Stores the source-side state of :class:`~repro.causal.engine.CIEngine`:
    Cholesky factors of the ridge Gram matrix per conditioning tuple, ridge
    betas per ``(tuple, feature)``, and (in memory only, unless requested)
    source residuals per ``(tuple, feature)``.  Entries are valid exactly
    while the source matrix bytes match ``source_fingerprint`` and the
    engine runs with the same ``ridge`` / ``stats_dtype`` — under those
    guards a reused entry is byte-for-byte what a cold engine would compute.

    The engine treats the cache as a read-through/write-through store and
    counts hits and misses in ``CIEngine.cache_stats``; the cache itself
    counts invalidations (bulk drops on a guard mismatch).
    """

    def __init__(
        self,
        *,
        ridge: float,
        stats_dtype: str,
        source_fingerprint: str | None = None,
    ) -> None:
        self.ridge = float(ridge)
        self.stats_dtype = str(stats_dtype)
        self.source_fingerprint = source_fingerprint
        # cols -> (cholesky array, lower flag); cols -> {j: beta}; cols -> {j: res_s}
        self.factors: dict[tuple[int, ...], tuple[np.ndarray, bool]] = {}
        self.betas: dict[tuple[int, ...], dict[int, np.ndarray]] = {}
        self.residuals: dict[tuple[int, ...], dict[int, np.ndarray]] = {}
        self.invalidations = 0

    # -- entry accessors (engine-facing) -------------------------------------

    def get_factor(self, cols):
        return self.factors.get(cols)

    def put_factor(self, cols, factor) -> None:
        self.factors[cols] = (factor[0], bool(factor[1]))

    def get_beta(self, cols, j):
        per = self.betas.get(cols)
        return None if per is None else per.get(j)

    def put_beta(self, cols, j, beta) -> None:
        self.betas.setdefault(cols, {})[j] = beta

    def get_residual(self, cols, j):
        per = self.residuals.get(cols)
        return None if per is None else per.get(j)

    def put_residual(self, cols, j, res) -> None:
        self.residuals.setdefault(cols, {})[j] = res

    @property
    def n_entries(self) -> int:
        return (
            len(self.factors)
            + sum(len(per) for per in self.betas.values())
            + sum(len(per) for per in self.residuals.values())
        )

    def matches(self, *, ridge: float, stats_dtype: str, source_fingerprint: str) -> bool:
        """True when every entry is byte-for-byte valid for this engine setup."""
        return (
            self.ridge == float(ridge)
            and self.stats_dtype == str(stats_dtype)
            and self.source_fingerprint == source_fingerprint
        )

    def invalidate(self) -> int:
        """Drop every entry (the source rows they derive from changed)."""
        dropped = self.n_entries
        self.factors.clear()
        self.betas.clear()
        self.residuals.clear()
        self.invalidations += dropped
        return dropped

    # -- worker transport ----------------------------------------------------

    def to_portable(self, *, include_residuals: bool = True) -> dict:
        """Plain picklable dict for shipping to process-pool workers."""
        return {
            "ridge": self.ridge,
            "stats_dtype": self.stats_dtype,
            "source_fingerprint": self.source_fingerprint,
            "factors": self.factors,
            "betas": self.betas,
            "residuals": self.residuals if include_residuals else {},
        }

    @classmethod
    def from_portable(cls, d: dict) -> "CIStatCache":
        cache = cls(
            ridge=d["ridge"],
            stats_dtype=d["stats_dtype"],
            source_fingerprint=d["source_fingerprint"],
        )
        cache.factors = d["factors"]
        cache.betas = d["betas"]
        cache.residuals = d["residuals"]
        return cache

    # -- flat serialization (estimator-protocol compatible) -------------------

    def state_dict(self, *, include_residuals: bool = False) -> dict[str, np.ndarray]:
        """Flat ``{name: ndarray}`` + ``__meta__`` snapshot of the cache.

        Residuals are excluded by default: they are cheap to recompute (one
        matvec) and dominate the byte size, so artifacts stay small while a
        warm-from-disk run still skips every factorization and solve.
        """
        factor_cols = sorted(self.factors)
        beta_keys = sorted((cols, j) for cols, per in self.betas.items() for j in per)
        res_keys = (
            sorted((cols, j) for cols, per in self.residuals.items() for j in per)
            if include_residuals
            else []
        )
        meta = {
            "version": WARM_STATE_VERSION,
            "ridge": self.ridge,
            "stats_dtype": self.stats_dtype,
            "source_fingerprint": self.source_fingerprint,
            "invalidations": int(self.invalidations),
            "factor_cols": [list(c) for c in factor_cols],
            "factor_lower": [bool(self.factors[c][1]) for c in factor_cols],
            "beta_keys": [[list(c), int(j)] for c, j in beta_keys],
            "residual_keys": [[list(c), int(j)] for c, j in res_keys],
        }
        state: dict[str, np.ndarray] = {"__meta__": _encode_meta(meta)}
        for i, cols in enumerate(factor_cols):
            state[f"factor.{i}"] = np.ascontiguousarray(self.factors[cols][0])
        for i, (cols, j) in enumerate(beta_keys):
            state[f"beta.{i}"] = np.ascontiguousarray(self.betas[cols][j])
        for i, (cols, j) in enumerate(res_keys):
            state[f"residual.{i}"] = np.ascontiguousarray(self.residuals[cols][j])
        return state

    @classmethod
    def from_state(cls, state: dict) -> "CIStatCache":
        meta = _decode_meta(state["__meta__"])
        if meta.get("version") != WARM_STATE_VERSION:
            raise ValidationError(
                f"unsupported CIStatCache state version {meta.get('version')!r}"
            )
        cache = cls(
            ridge=meta["ridge"],
            stats_dtype=meta["stats_dtype"],
            source_fingerprint=meta["source_fingerprint"],
        )
        cache.invalidations = int(meta.get("invalidations", 0))
        for i, (cols, lower) in enumerate(
            zip(meta["factor_cols"], meta["factor_lower"])
        ):
            cache.factors[tuple(cols)] = (np.array(state[f"factor.{i}"]), bool(lower))
        for i, (cols, j) in enumerate(meta["beta_keys"]):
            cache.betas.setdefault(tuple(cols), {})[int(j)] = np.array(
                state[f"beta.{i}"]
            )
        for i, (cols, j) in enumerate(meta.get("residual_keys", [])):
            cache.residuals.setdefault(tuple(cols), {})[int(j)] = np.array(
                state[f"residual.{i}"]
            )
        return cache


@dataclass
class WarmState:
    """Everything a warm re-discovery needs from the previous run.

    Attributes
    ----------
    priors:
        The previous :class:`FNodeResult` — decisions, per-feature best
        p-values (closest-to-clearing scores), separating sets and the
        pre-search marginal p-values.
    cache:
        The :class:`CIStatCache` accumulated by the previous run (``None``
        in ``multi_rhs`` baseline mode, which never caches).
    source_fingerprint:
        Fingerprint of the source matrix the priors/cache derive from;
        a mismatch forces a cold fallback (and cache invalidation).
    n_features:
        Feature count the priors describe.
    params:
        The discovery parameters of the producing run.  ``exact`` mode
        tolerates mismatches (its per-feature guards keep it provable);
        ``confirm`` mode requires an exact match before trusting decisions.
    """

    priors: FNodeResult
    cache: CIStatCache | None
    source_fingerprint: str
    n_features: int
    params: dict = field(default_factory=dict)

    def state_dict(self, *, include_residuals: bool = False) -> dict[str, np.ndarray]:
        """Flat serialization: priors arrays + nested cache state."""
        priors = self.priors
        marginal = priors.marginal_p_values
        meta = {
            "version": WARM_STATE_VERSION,
            "source_fingerprint": self.source_fingerprint,
            "n_features": int(self.n_features),
            "params": self.params,
            "parent_sets": [list(p) for p in priors.parent_sets],
            "n_tests": int(priors.n_tests),
            "coverage": float(priors.coverage),
            "has_cache": self.cache is not None,
            "has_marginal": marginal is not None,
        }
        state: dict[str, np.ndarray] = {
            "__meta__": _encode_meta(meta),
            "variant_indices": np.asarray(priors.variant_indices).copy(),
            "invariant_indices": np.asarray(priors.invariant_indices).copy(),
            "p_values": np.asarray(priors.p_values).copy(),
        }
        if marginal is not None:
            state["marginal_p_values"] = np.asarray(marginal).copy()
        if self.cache is not None:
            for name, arr in self.cache.state_dict(
                include_residuals=include_residuals
            ).items():
                state[f"cache.{name}"] = arr
        return state

    @classmethod
    def from_state(cls, state: dict) -> "WarmState":
        from repro.causal.fnode import FNodeResult

        meta = _decode_meta(state["__meta__"])
        if meta.get("version") != WARM_STATE_VERSION:
            raise ValidationError(
                f"unsupported WarmState state version {meta.get('version')!r}"
            )
        priors = FNodeResult(
            variant_indices=np.array(state["variant_indices"]),
            invariant_indices=np.array(state["invariant_indices"]),
            p_values=np.array(state["p_values"]),
            parent_sets=[tuple(p) for p in meta.get("parent_sets", [])],
            n_tests=int(meta.get("n_tests", 0)),
            coverage=float(meta.get("coverage", 1.0)),
            marginal_p_values=(
                np.array(state["marginal_p_values"])
                if meta.get("has_marginal")
                else None
            ),
        )
        cache = None
        if meta.get("has_cache"):
            prefix = "cache."
            cache_state = {
                name[len(prefix):]: arr
                for name, arr in state.items()
                if name.startswith(prefix)
            }
            cache = CIStatCache.from_state(cache_state)
        return cls(
            priors=priors,
            cache=cache,
            source_fingerprint=meta["source_fingerprint"],
            n_features=int(meta["n_features"]),
            params=dict(meta.get("params", {})),
        )
