"""Decision trees: a CART classifier and a second-order regression tree.

The classifier backs :class:`~repro.ml.random_forest.RandomForestClassifier`;
the regression tree (fit on gradient/hessian pairs, XGBoost-style) backs
:class:`~repro.ml.gradient_boosting.GradientBoostingClassifier`.  Split search
is vectorized per feature with cumulative class counts / gradient sums, so the
trees stay usable on the 442-feature 5GC workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.estimator import Estimator, register_estimator
from repro.utils.errors import ArtifactError, ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
    check_X_y,
)


@dataclass
class _Node:
    """A tree node; leaves carry ``value`` and internal nodes a split."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | float | None = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _resolve_max_features(max_features, n_features: int) -> int:
    """Translate 'sqrt' / 'log2' / int / float / None into a column count."""
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, (int, np.integer)):
        if max_features < 1:
            raise ValidationError("integer max_features must be >= 1")
        return min(int(max_features), n_features)
    if isinstance(max_features, float):
        if not 0.0 < max_features <= 1.0:
            raise ValidationError("float max_features must be in (0, 1]")
        return max(1, int(max_features * n_features))
    raise ValidationError(f"unsupported max_features: {max_features!r}")


def pack_tree_nodes(root: _Node) -> dict[str, np.ndarray]:
    """Flatten a node tree into parallel preorder arrays (pickle-free codec).

    ``left``/``right`` hold child row indices (``-1`` at leaves); ``values``
    is ``(n_nodes, k)`` for classification trees and ``(n_nodes,)`` for
    regression trees.  Iterative traversal — deep unbalanced trees must not
    hit the interpreter recursion limit.
    """
    nodes: list[_Node] = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if node.left is not None:
            stack.append(node.right)
            stack.append(node.left)
    position = {id(node): i for i, node in enumerate(nodes)}
    return {
        "tree.feature": np.array([n.feature for n in nodes], dtype=np.int64),
        "tree.threshold": np.array([n.threshold for n in nodes], dtype=np.float64),
        "tree.left": np.array(
            [position[id(n.left)] if n.left is not None else -1 for n in nodes],
            dtype=np.int64,
        ),
        "tree.right": np.array(
            [position[id(n.right)] if n.right is not None else -1 for n in nodes],
            dtype=np.int64,
        ),
        "tree.n_samples": np.array([n.n_samples for n in nodes], dtype=np.int64),
        "tree.values": np.array([n.value for n in nodes], dtype=np.float64),
    }


def unpack_tree_nodes(state: dict[str, np.ndarray], *, scalar_values: bool) -> _Node:
    """Rebuild the node tree flattened by :func:`pack_tree_nodes`."""
    for key in ("tree.feature", "tree.threshold", "tree.left", "tree.right",
                "tree.n_samples", "tree.values"):
        if key not in state:
            raise ArtifactError(f"tree state is missing {key!r}")
    feature = np.asarray(state["tree.feature"], dtype=np.int64)
    threshold = np.asarray(state["tree.threshold"], dtype=np.float64)
    left = np.asarray(state["tree.left"], dtype=np.int64)
    right = np.asarray(state["tree.right"], dtype=np.int64)
    n_samples = np.asarray(state["tree.n_samples"], dtype=np.int64)
    values = np.asarray(state["tree.values"], dtype=np.float64)
    n_nodes = feature.shape[0]
    if n_nodes == 0:
        raise ArtifactError("tree state holds no nodes")
    nodes = [
        _Node(
            feature=int(feature[i]),
            threshold=float(threshold[i]),
            value=float(values[i]) if scalar_values else values[i].copy(),
            n_samples=int(n_samples[i]),
        )
        for i in range(n_nodes)
    ]
    for i in range(n_nodes):
        if left[i] >= 0:
            nodes[i].left = nodes[left[i]]
            nodes[i].right = nodes[right[i]]
    return nodes[0]


def _best_classification_split(
    X: np.ndarray,
    y_onehot: np.ndarray,
    feature_ids: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Best (feature, threshold, gini_decrease) among candidate features.

    Uses cumulative class counts over each feature's sort order; returns
    ``feature=-1`` when no valid split exists.
    """
    n, k = y_onehot.shape
    total = y_onehot.sum(axis=0)
    parent_gini = 1.0 - np.sum((total / n) ** 2)
    best = (-1, 0.0, 0.0)
    for j in feature_ids:
        col = X[:, j]
        order = np.argsort(col, kind="stable")
        sorted_col = col[order]
        cum = np.cumsum(y_onehot[order], axis=0)  # (n, k)
        left_n = np.arange(1, n + 1, dtype=np.float64)
        # valid split after position i (1-based count i+1 on the left)
        distinct = sorted_col[:-1] < sorted_col[1:]
        if not np.any(distinct):
            continue
        ln = left_n[:-1]
        rn = n - ln
        size_ok = (ln >= min_samples_leaf) & (rn >= min_samples_leaf)
        valid = distinct & size_ok
        if not np.any(valid):
            continue
        left_counts = cum[:-1]
        right_counts = total[None, :] - left_counts
        with np.errstate(divide="ignore", invalid="ignore"):
            gini_left = 1.0 - np.sum((left_counts / ln[:, None]) ** 2, axis=1)
            gini_right = 1.0 - np.sum((right_counts / rn[:, None]) ** 2, axis=1)
        weighted = (ln * gini_left + rn * gini_right) / n
        weighted[~valid] = np.inf
        pos = int(np.argmin(weighted))
        decrease = parent_gini - weighted[pos]
        if decrease > best[2] + 1e-12:
            threshold = 0.5 * (sorted_col[pos] + sorted_col[pos + 1])
            best = (int(j), float(threshold), float(decrease))
    return best


def _best_regression_split(
    X: np.ndarray,
    g: np.ndarray,
    h: np.ndarray,
    feature_ids: np.ndarray,
    min_samples_leaf: int,
    reg_lambda: float,
) -> tuple[int, float, float]:
    """Best split maximizing the XGBoost gain for gradient/hessian targets."""
    n = X.shape[0]
    G, H = g.sum(), h.sum()
    parent_score = G * G / (H + reg_lambda)
    best = (-1, 0.0, 0.0)
    for j in feature_ids:
        col = X[:, j]
        order = np.argsort(col, kind="stable")
        sorted_col = col[order]
        gl = np.cumsum(g[order])[:-1]
        hl = np.cumsum(h[order])[:-1]
        gr = G - gl
        hr = H - hl
        ln = np.arange(1, n, dtype=np.float64)
        rn = n - ln
        distinct = sorted_col[:-1] < sorted_col[1:]
        valid = distinct & (ln >= min_samples_leaf) & (rn >= min_samples_leaf)
        if not np.any(valid):
            continue
        gain = gl * gl / (hl + reg_lambda) + gr * gr / (hr + reg_lambda) - parent_score
        gain[~valid] = -np.inf
        pos = int(np.argmax(gain))
        if gain[pos] > best[2] + 1e-12:
            threshold = 0.5 * (sorted_col[pos] + sorted_col[pos + 1])
            best = (int(j), float(threshold), float(gain[pos]))
    return best


@register_estimator("decision_tree")
class DecisionTreeClassifier(Estimator):
    """CART classifier with Gini impurity.

    Parameters mirror the common scikit-learn surface (``max_depth``,
    ``min_samples_split``, ``min_samples_leaf``, ``max_features``); the tree
    predicts class probabilities from leaf class frequencies.
    """

    _fitted_attr = "root_"
    _state_scalars = ("n_features_",)
    _state_arrays = ("classes_",)

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state=None,
    ) -> None:
        if min_samples_split < 2:
            raise ValidationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValidationError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise ValidationError("max_depth must be >= 1 or None")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: _Node | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        state.update(pack_tree_nodes(self.root_))
        return state

    def load_state_dict(self, state) -> "DecisionTreeClassifier":
        super().load_state_dict(state)
        self.root_ = unpack_tree_nodes(state, scalar_values=False)
        self._n_candidates = _resolve_max_features(self.max_features, self.n_features_)
        return self

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        k = len(self.classes_)
        y_onehot = np.zeros((X.shape[0], k))
        y_onehot[np.arange(X.shape[0]), y_codes] = 1.0
        rng = check_random_state(self.random_state)
        self._n_candidates = _resolve_max_features(self.max_features, self.n_features_)
        self.root_ = self._grow(X, y_onehot, depth=0, rng=rng)
        return self

    def _grow(self, X: np.ndarray, y_onehot: np.ndarray, depth: int,
              rng: np.random.Generator) -> _Node:
        n = X.shape[0]
        counts = y_onehot.sum(axis=0)
        node = _Node(value=counts / n, n_samples=n)
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.count_nonzero(counts) <= 1
        ):
            return node
        feature_ids = rng.choice(self.n_features_, size=self._n_candidates, replace=False)
        feature, threshold, decrease = _best_classification_split(
            X, y_onehot, feature_ids, self.min_samples_leaf
        )
        if feature < 0 or decrease <= 0.0:
            return node
        mask = X[:, feature] <= threshold
        node.feature, node.threshold = feature, threshold
        node.left = self._grow(X[mask], y_onehot[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], y_onehot[~mask], depth + 1, rng)
        return node

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "root_")
        X = check_array(X)
        check_consistent_features(X, self.n_features_)
        out = np.empty((X.shape[0], len(self.classes_)))
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        check_is_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""
        check_is_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)


@register_estimator("regression_tree")
class RegressionTree(Estimator):
    """Second-order regression tree fit on (gradient, hessian) targets.

    Leaf values are the Newton step ``-G / (H + lambda)``; used as the weak
    learner inside gradient boosting.
    """

    _fitted_attr = "root_"
    _state_scalars = ("n_features_",)

    def __init__(
        self,
        *,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        reg_lambda: float = 1.0,
        max_features=None,
        random_state=None,
    ) -> None:
        if max_depth < 1:
            raise ValidationError("max_depth must be >= 1")
        if reg_lambda < 0:
            raise ValidationError("reg_lambda must be non-negative")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.max_features = max_features
        self.random_state = random_state
        self.root_: _Node | None = None
        self.n_features_: int | None = None

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        state.update(pack_tree_nodes(self.root_))
        return state

    def load_state_dict(self, state) -> "RegressionTree":
        super().load_state_dict(state)
        self.root_ = unpack_tree_nodes(state, scalar_values=True)
        self._n_candidates = _resolve_max_features(self.max_features, self.n_features_)
        return self

    def fit(self, X, g, h) -> "RegressionTree":
        X = check_array(X)
        g = np.asarray(g, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        if g.shape != (X.shape[0],) or h.shape != (X.shape[0],):
            raise ValidationError("g and h must be 1-D arrays matching X rows")
        self.n_features_ = X.shape[1]
        self._n_candidates = _resolve_max_features(self.max_features, self.n_features_)
        rng = check_random_state(self.random_state)
        self.root_ = self._grow(X, g, h, depth=0, rng=rng)
        return self

    def _grow(self, X, g, h, depth: int, rng: np.random.Generator) -> _Node:
        node = _Node(
            value=float(-g.sum() / (h.sum() + self.reg_lambda)), n_samples=X.shape[0]
        )
        if depth >= self.max_depth or X.shape[0] < 2 * self.min_samples_leaf:
            return node
        feature_ids = rng.choice(self.n_features_, size=self._n_candidates, replace=False)
        feature, threshold, gain = _best_regression_split(
            X, g, h, feature_ids, self.min_samples_leaf, self.reg_lambda
        )
        if feature < 0 or gain <= 0.0:
            return node
        mask = X[:, feature] <= threshold
        node.feature, node.threshold = feature, threshold
        node.left = self._grow(X[mask], g[mask], h[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], g[~mask], h[~mask], depth + 1, rng)
        return node

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "root_")
        X = check_array(X)
        check_consistent_features(X, self.n_features_)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out
