"""Classification metrics: F1 (macro/micro/binary), accuracy, confusion matrix.

Table I of the paper reports macro F1-scores (scaled to [0, 100]); helpers
here return fractions in [0, 1] and the experiment layer scales for display.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.ndim != 1 or y_pred.ndim != 1:
        raise ValidationError("y_true and y_pred must be 1-dimensional")
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValidationError(
            f"length mismatch: {y_true.shape[0]} vs {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValidationError("metrics require at least one sample")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, *, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true label i predicted as j."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels)}
    n = len(labels)
    cm = np.zeros((n, n), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        if t in index and p in index:
            cm[index[t], index[p]] += 1
    return cm


def precision_recall_f1(
    y_true, y_pred, *, labels=None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall and F1 arrays (zero where undefined)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    cm = confusion_matrix(y_true, y_pred, labels=labels)
    tp = np.diag(cm).astype(np.float64)
    pred_total = cm.sum(axis=0).astype(np.float64)
    true_total = cm.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_total > 0, tp / pred_total, 0.0)
        recall = np.where(true_total > 0, tp / true_total, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / np.where(denom > 0, denom, 1.0), 0.0)
    return precision, recall, f1


def f1_score(y_true, y_pred, *, average: str = "macro", labels=None) -> float:
    """F1 score with ``macro``, ``micro``, ``weighted`` or ``binary`` averaging."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    if average == "micro":
        return accuracy_score(y_true, y_pred)
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, labels=labels)
    if average == "macro":
        return float(f1.mean())
    if average == "weighted":
        counts = np.array([(y_true == label).sum() for label in labels], dtype=np.float64)
        total = counts.sum()
        if total == 0:
            return 0.0
        return float(np.sum(f1 * counts) / total)
    if average == "binary":
        labels = np.asarray(labels)
        if len(labels) > 2:
            raise ValidationError("binary average requires at most two classes")
        # positive class is the largest label (1 in {0, 1})
        pos_index = int(np.argmax(labels))
        return float(f1[pos_index])
    raise ValidationError(f"unknown average {average!r}")


def macro_f1(y_true, y_pred) -> float:
    """Shorthand for macro-averaged F1 as used in Table I."""
    return f1_score(y_true, y_pred, average="macro")


def classification_report(y_true, y_pred, *, labels=None, target_names=None) -> str:
    """Human-readable per-class precision/recall/F1 table."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, labels=labels)
    if target_names is None:
        target_names = [str(label) for label in labels]
    if len(target_names) != len(labels):
        raise ValidationError("target_names length must match number of labels")
    width = max(12, max(len(name) for name in target_names) + 2)
    lines = [f"{'class':<{width}}{'precision':>10}{'recall':>10}{'f1':>10}{'support':>10}"]
    for i, name in enumerate(target_names):
        support = int((y_true == labels[i]).sum())
        lines.append(
            f"{name:<{width}}{precision[i]:>10.3f}{recall[i]:>10.3f}{f1[i]:>10.3f}{support:>10d}"
        )
    lines.append(
        f"{'macro avg':<{width}}{precision.mean():>10.3f}{recall.mean():>10.3f}{f1.mean():>10.3f}"
        f"{len(y_true):>10d}"
    )
    return "\n".join(lines)
