"""Gradient-boosted trees with second-order (XGBoost-style) updates.

Stands in for the "XGB" downstream model of Table I.  Multiclass boosting
fits one regression tree per class per round on the softmax cross-entropy
gradients/hessians; binary problems use a single sigmoid ensemble.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import (
    Estimator,
    decode_json,
    encode_json,
    pack_estimator,
    register_estimator,
    unpack_estimator,
)
from repro.ml.tree import RegressionTree
from repro.nn.losses import softmax
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
    check_X_y,
)


@register_estimator("gbm")
class GradientBoostingClassifier(Estimator):
    """Newton-boosted regression trees for classification.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's leaf values.
    max_depth, min_samples_leaf, reg_lambda, max_features:
        Weak-learner (regression tree) parameters.
    subsample:
        Row-sampling fraction per round (stochastic gradient boosting).
    """

    def __init__(
        self,
        *,
        n_estimators: int = 30,
        learning_rate: float = 0.3,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        reg_lambda: float = 1.0,
        max_features=None,
        subsample: float = 1.0,
        random_state=None,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValidationError("learning_rate must be positive")
        if not 0.0 < subsample <= 1.0:
            raise ValidationError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.max_features = max_features
        self.subsample = subsample
        self.random_state = random_state
        self.trees_: list[list[RegressionTree]] | None = None
        self.classes_: np.ndarray | None = None
        self.base_score_: np.ndarray | None = None
        self.n_features_: int | None = None

    def state_dict(self) -> dict[str, np.ndarray]:
        check_is_fitted(self, "trees_")
        state = {
            "__meta__": encode_json(
                {"n_features_": self.n_features_, "n_rounds": len(self.trees_)}
            ),
            "classes_": np.asarray(self.classes_).copy(),
            "base_score_": self.base_score_.copy(),
        }
        for r, round_trees in enumerate(self.trees_):
            for c, tree in enumerate(round_trees):
                state.update(pack_estimator(tree, prefix=f"round{r}.class{c}."))
        return state

    def load_state_dict(self, state) -> "GradientBoostingClassifier":
        meta = decode_json(state["__meta__"])
        self.n_features_ = meta["n_features_"]
        self.classes_ = np.array(state["classes_"])
        self.base_score_ = np.array(state["base_score_"])
        k = len(self.classes_)
        self.trees_ = [
            [
                unpack_estimator(state, prefix=f"round{r}.class{c}.")
                for c in range(k)
            ]
            for r in range(meta["n_rounds"])
        ]
        return self

    def fit(self, X, y, sample_weight=None) -> "GradientBoostingClassifier":
        X, y = check_X_y(X, y)
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        n, k = X.shape[0], len(self.classes_)
        if k < 2:
            raise ValidationError("need at least two classes")
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=np.float64)
            if w.shape != (n,):
                raise ValidationError("sample_weight must match the number of samples")
            w = w * n / w.sum()
        else:
            w = np.ones(n)
        rng = check_random_state(self.random_state)
        y_onehot = np.zeros((n, k))
        y_onehot[np.arange(n), y_codes] = 1.0
        # log-prior initial scores
        prior = np.clip(y_onehot.mean(axis=0), 1e-6, 1.0)
        self.base_score_ = np.log(prior)
        scores = np.tile(self.base_score_, (n, 1))
        self.trees_ = []
        for _ in range(self.n_estimators):
            probs = softmax(scores, axis=1)
            grad = (probs - y_onehot) * w[:, None]
            hess = (probs * (1.0 - probs)) * w[:, None] + 1e-6
            if self.subsample < 1.0:
                m = max(2, int(self.subsample * n))
                rows = rng.choice(n, size=m, replace=False)
            else:
                rows = np.arange(n)
            round_trees: list[RegressionTree] = []
            for c in range(k):
                tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    reg_lambda=self.reg_lambda,
                    max_features=self.max_features,
                    random_state=int(rng.integers(0, 2**31 - 1)),
                )
                tree.fit(X[rows], grad[rows, c], hess[rows, c])
                scores[:, c] += self.learning_rate * tree.predict(X)
                round_trees.append(tree)
            self.trees_.append(round_trees)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw per-class scores before the softmax."""
        check_is_fitted(self, "trees_")
        X = check_array(X)
        check_consistent_features(X, self.n_features_)
        scores = np.tile(self.base_score_, (X.shape[0], 1))
        for round_trees in self.trees_:
            for c, tree in enumerate(round_trees):
                scores[:, c] += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X), axis=1)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]
