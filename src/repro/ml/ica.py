"""FastICA (Hyvärinen & Oja) — independent component analysis.

Substrate for the CMT baseline (Teshima et al., ICML 2020), which models the
data as a nonlinear mixing of independent components and transfers the
mechanism by permuting components across target samples.  We use the
deflation-free symmetric FastICA with the log-cosh contrast.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import Estimator, register_estimator
from repro.utils.errors import ConvergenceError, ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
)


@register_estimator("fastica")
class FastICA(Estimator):
    """Symmetric FastICA with whitening.

    Parameters
    ----------
    n_components:
        Number of components to extract (defaults to min(n_samples, n_features)
        capped by the whitening rank).
    max_iter, tol:
        Fixed-point iteration budget and convergence tolerance.
    """

    _fitted_attr = "unmixing_"
    _state_scalars = ("n_iter_",)
    _state_arrays = ("mean_", "whitening_", "unmixing_", "mixing_")

    def __init__(
        self,
        n_components: int | None = None,
        *,
        max_iter: int = 200,
        tol: float = 1e-4,
        random_state=None,
    ) -> None:
        if n_components is not None and n_components < 1:
            raise ValidationError("n_components must be >= 1")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.mean_: np.ndarray | None = None
        self.whitening_: np.ndarray | None = None
        self.unmixing_: np.ndarray | None = None
        self.mixing_: np.ndarray | None = None
        self.n_iter_: int = 0

    def fit(self, X) -> "FastICA":
        X = check_array(X, min_samples=2)
        n, d = X.shape
        self.mean_ = X.mean(axis=0)
        Xc = X - self.mean_
        # whitening via eigendecomposition of the covariance
        cov = Xc.T @ Xc / n
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        eigvals, eigvecs = eigvals[order], eigvecs[:, order]
        rank = int(np.sum(eigvals > max(1e-10, eigvals[0] * 1e-10)))
        k = min(self.n_components or rank, rank)
        if k < 1:
            raise ValidationError("data has zero variance; cannot run ICA")
        D = np.diag(1.0 / np.sqrt(eigvals[:k]))
        self.whitening_ = D @ eigvecs[:, :k].T  # (k, d)
        Z = Xc @ self.whitening_.T  # (n, k), white

        rng = check_random_state(self.random_state)
        W = rng.standard_normal((k, k))
        W = self._symmetric_decorrelate(W)
        converged = False
        for it in range(self.max_iter):
            WZ = Z @ W.T  # (n, k)
            g = np.tanh(WZ)
            g_prime = 1.0 - g**2
            W_new = (g.T @ Z) / n - np.diag(g_prime.mean(axis=0)) @ W
            W_new = self._symmetric_decorrelate(W_new)
            delta = float(np.max(np.abs(np.abs(np.einsum("ij,ij->i", W_new, W)) - 1.0)))
            W = W_new
            if delta < self.tol:
                converged = True
                self.n_iter_ = it + 1
                break
        if not converged:
            self.n_iter_ = self.max_iter
        self.unmixing_ = W @ self.whitening_  # (k, d): s = (x - mean) @ unmixing.T
        self.mixing_ = np.linalg.pinv(self.unmixing_)  # (d, k)
        return self

    @staticmethod
    def _symmetric_decorrelate(W: np.ndarray) -> np.ndarray:
        """W ← (W Wᵀ)^{-1/2} W."""
        s, u = np.linalg.eigh(W @ W.T)
        s = np.clip(s, 1e-12, None)
        return (u @ np.diag(1.0 / np.sqrt(s)) @ u.T) @ W

    def transform(self, X) -> np.ndarray:
        """Recover independent components for ``X``."""
        check_is_fitted(self, "unmixing_")
        X = check_array(X)
        check_consistent_features(X, self.mean_.shape[0])
        return (X - self.mean_) @ self.unmixing_.T

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, S) -> np.ndarray:
        """Mix components back into the observed feature space."""
        check_is_fitted(self, "unmixing_")
        S = check_array(S)
        if S.shape[1] != self.unmixing_.shape[0]:
            raise ValidationError(
                f"expected {self.unmixing_.shape[0]} components, got {S.shape[1]}"
            )
        return S @ self.mixing_.T + self.mean_
