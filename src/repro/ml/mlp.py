"""MLP classifier on the numpy neural-network substrate.

One of the four downstream network-management models of Table I ("MLP"),
and the only model the paper's Fine-Tune baseline applies to (all parameters
are re-optimized during fine-tuning, per §VI-B).
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import Estimator, register_estimator
from repro.ml.preprocessing import one_hot
from repro.nn.layers import Dense, Dropout, ReLU
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.optimizers import Adam
from repro.nn.workspace import Workspace
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
    check_X_y,
)


@register_estimator("mlp")
class MLPClassifier(Estimator):
    """Multi-layer perceptron with softmax cross-entropy and Adam.

    Parameters
    ----------
    hidden_sizes:
        Widths of the hidden layers.
    epochs, batch_size, lr, weight_decay, dropout:
        Optimization hyperparameters.
    """

    _fitted_attr = "network_"
    _state_scalars = ("n_features_", "loss_curve_")
    _state_arrays = ("classes_",)
    _state_networks = ("network_",)

    def __init__(
        self,
        *,
        hidden_sizes: tuple[int, ...] = (128, 64),
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        weight_decay: float = 0.0,
        dropout: float = 0.0,
        random_state=None,
    ) -> None:
        if not hidden_sizes:
            raise ValidationError("hidden_sizes must contain at least one layer")
        if epochs < 1:
            raise ValidationError("epochs must be >= 1")
        self.hidden_sizes = tuple(hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.random_state = random_state
        self.network_: Sequential | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self.loss_curve_: list[float] = []

    def _build(self, n_features: int, n_classes: int, rng: np.random.Generator) -> Sequential:
        layers = []
        last = n_features
        for width in self.hidden_sizes:
            layers.append(Dense(last, width, random_state=int(rng.integers(0, 2**31 - 1))))
            layers.append(ReLU())
            if self.dropout > 0:
                layers.append(Dropout(self.dropout, random_state=int(rng.integers(0, 2**31 - 1))))
            last = width
        layers.append(Dense(last, n_classes, init="glorot_uniform",
                            random_state=int(rng.integers(0, 2**31 - 1))))
        return Sequential(layers)

    def _prepare_load(self, meta: dict, state: dict) -> None:
        # topology is a pure function of (n_features, classes, hyperparams);
        # weights are overwritten in place right after
        self.network_ = self._build(
            int(self.n_features_), len(self.classes_), np.random.default_rng(0)
        )

    def fit(self, X, y, sample_weight=None) -> "MLPClassifier":
        X, y = check_X_y(X, y)
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        rng = check_random_state(self.random_state)
        self.network_ = self._build(self.n_features_, len(self.classes_), rng)
        self.loss_curve_ = []
        self._train(X, y_codes, sample_weight, epochs=self.epochs, lr=self.lr, rng=rng)
        return self

    def fine_tune(self, X, y, *, epochs: int = 30, lr: float | None = None,
                  sample_weight=None) -> "MLPClassifier":
        """Continue optimizing all parameters on new data (Fine-Tune baseline)."""
        check_is_fitted(self, "network_")
        X, y = check_X_y(X, y)
        check_consistent_features(X, self.n_features_)
        codes = np.searchsorted(self.classes_, y)
        if np.any(self.classes_[np.clip(codes, 0, len(self.classes_) - 1)] != y):
            raise ValidationError("fine_tune received labels unseen during fit")
        rng = check_random_state(self.random_state)
        self._train(X, codes, sample_weight, epochs=epochs,
                    lr=lr if lr is not None else self.lr / 2, rng=rng)
        return self

    def _train(self, X, y_codes, sample_weight, *, epochs, lr, rng) -> None:
        n_classes = len(self.classes_)
        targets = one_hot(y_codes, n_classes)
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=np.float64)
            if w.shape != (X.shape[0],):
                raise ValidationError("sample_weight must match the number of samples")
            w = w * X.shape[0] / w.sum()
        else:
            w = None
        loss_fn = SoftmaxCrossEntropy()
        optimizer = Adam(self.network_.trainable_layers(), lr=lr,
                         weight_decay=self.weight_decay)
        batch = min(self.batch_size, X.shape[0])
        ws = Workspace()  # minibatch gather buffers, reused across epochs
        for _ in range(epochs):
            epoch_loss = 0.0
            n_batches = 0
            for idx in iterate_minibatches(X.shape[0], batch, rng):
                m = idx.shape[0]
                xb = ws.get("xb", (m, X.shape[1]), X.dtype)
                np.take(X, idx, axis=0, out=xb)
                tb = ws.get("tb", (m, n_classes), targets.dtype)
                np.take(targets, idx, axis=0, out=tb)
                logits = self.network_.forward(xb, training=True)
                epoch_loss += loss_fn.forward(logits, tb)
                grad = loss_fn.backward()
                if w is not None:
                    wb = ws.get("wb", (m,), w.dtype)
                    np.take(w, idx, out=wb)
                    np.multiply(grad, wb[:, None], out=grad)
                self.network_.backward(grad)
                optimizer.step()
                optimizer.zero_grad()
                n_batches += 1
            self.loss_curve_.append(epoch_loss / max(1, n_batches))

    def decision_function(self, X) -> np.ndarray:
        """Raw logits."""
        check_is_fitted(self, "network_")
        X = check_array(X)
        check_consistent_features(X, self.n_features_)
        # forward returns a reused workspace buffer — hand back a copy
        return self.network_.forward(X, training=False).copy()

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X), axis=1)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]
