"""TNet: a tabular-specialized neural classifier.

Stand-in for TabularNet (Du et al., KDD 2021), the paper's best-performing
downstream model.  The architecture adds two tabular-specific ingredients to
a plain MLP:

- a learned **feature gate** (sigmoid-activated per-feature scaling) acting
  as soft feature selection — the light-weight analogue of TabularNet's
  semantic feature attention, well-suited to wide telemetry tables where many
  columns are redundant; and
- **residual dense blocks** with batch normalization, which stabilize
  optimization on heterogeneous feature scales.

TNet consistently edging out MLP/RF/XGB (as in Table I) is reproduced by the
gate suppressing noisy columns.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import one_hot
from repro.nn.layers import BatchNorm1d, Dense, Dropout, Layer, ReLU
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.optimizers import Adam
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
    check_X_y,
)


class FeatureGate(Layer):
    """Elementwise ``x * sigmoid(g)`` with a learned per-feature logit ``g``.

    Initialized at ``g = 2`` (gate ≈ 0.88) so training starts close to the
    identity and learns to *close* gates on uninformative features.
    """

    def __init__(self, n_features: int) -> None:
        super().__init__()
        if n_features <= 0:
            raise ValidationError("n_features must be positive")
        self.params = {"g": np.full(n_features, 2.0)}
        self.grads = {"g": np.zeros(n_features)}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        self._gate = 1.0 / (1.0 + np.exp(-self.params["g"]))
        return x * self._gate

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        dgate = (grad_output * self._x).sum(axis=0)
        self.grads["g"] = dgate * self._gate * (1.0 - self._gate)
        return grad_output * self._gate

    def gate_values(self) -> np.ndarray:
        """Current sigmoid gate per feature — interpretable feature importance."""
        return 1.0 / (1.0 + np.exp(-self.params["g"]))


class ResidualBlock(Layer):
    """``x + Dropout(ReLU(BN(Dense(x))))`` with matching width."""

    def __init__(self, width: int, *, dropout: float, random_state=None) -> None:
        super().__init__()
        rng = check_random_state(random_state)
        self.inner = Sequential(
            [
                Dense(width, width, random_state=int(rng.integers(0, 2**31 - 1))),
                BatchNorm1d(width),
                ReLU(),
                Dropout(dropout, random_state=int(rng.integers(0, 2**31 - 1))),
            ]
        )

    @property
    def params(self):  # type: ignore[override]
        return {}

    @params.setter
    def params(self, value) -> None:
        pass

    def trainable_layers(self):
        return self.inner.trainable_layers()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x + self.inner.forward(x, training=training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output + self.inner.backward(grad_output)


class _TNetSequential(Sequential):
    """Sequential that knows how to flatten ResidualBlock parameters."""

    def trainable_layers(self):
        found = []
        for layer in self.layers:
            if isinstance(layer, ResidualBlock):
                found.extend(layer.trainable_layers())
            elif isinstance(layer, Sequential):
                found.extend(layer.trainable_layers())
            elif layer.params:
                found.append(layer)
        return found


class TNetClassifier:
    """Tabular network: feature gate → projection → residual blocks → softmax."""

    def __init__(
        self,
        *,
        width: int = 128,
        n_blocks: int = 2,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        weight_decay: float = 1e-5,
        dropout: float = 0.1,
        random_state=None,
    ) -> None:
        if width < 1 or n_blocks < 1:
            raise ValidationError("width and n_blocks must be >= 1")
        self.width = width
        self.n_blocks = n_blocks
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.dropout = dropout
        self.random_state = random_state
        self.network_: _TNetSequential | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self.loss_curve_: list[float] = []

    def _build(self, n_features: int, n_classes: int, rng: np.random.Generator):
        layers: list[Layer] = [FeatureGate(n_features)]
        layers.append(Dense(n_features, self.width,
                            random_state=int(rng.integers(0, 2**31 - 1))))
        layers.append(BatchNorm1d(self.width))
        layers.append(ReLU())
        for _ in range(self.n_blocks):
            layers.append(
                ResidualBlock(self.width, dropout=self.dropout,
                              random_state=int(rng.integers(0, 2**31 - 1)))
            )
        layers.append(Dense(self.width, n_classes, init="glorot_uniform",
                            random_state=int(rng.integers(0, 2**31 - 1))))
        return _TNetSequential(layers)

    def fit(self, X, y, sample_weight=None) -> "TNetClassifier":
        X, y = check_X_y(X, y)
        self.classes_, y_codes = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        rng = check_random_state(self.random_state)
        self.network_ = self._build(self.n_features_, len(self.classes_), rng)
        targets = one_hot(y_codes, len(self.classes_))
        if sample_weight is not None:
            w = np.asarray(sample_weight, dtype=np.float64)
            if w.shape != (X.shape[0],):
                raise ValidationError("sample_weight must match the number of samples")
            w = w * X.shape[0] / w.sum()
        else:
            w = None
        loss_fn = SoftmaxCrossEntropy()
        optimizer = Adam(self.network_.trainable_layers(), lr=self.lr,
                         weight_decay=self.weight_decay)
        batch = min(self.batch_size, X.shape[0])
        self.loss_curve_ = []
        for _ in range(self.epochs):
            epoch_loss, n_batches = 0.0, 0
            for idx in iterate_minibatches(X.shape[0], batch, rng):
                logits = self.network_.forward(X[idx], training=True)
                epoch_loss += loss_fn.forward(logits, targets[idx])
                grad = loss_fn.backward()
                if w is not None:
                    grad = grad * w[idx][:, None]
                self.network_.backward(grad)
                optimizer.step()
                optimizer.zero_grad()
                n_batches += 1
            self.loss_curve_.append(epoch_loss / max(1, n_batches))
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw logits."""
        check_is_fitted(self, "network_")
        X = check_array(X)
        check_consistent_features(X, self.n_features_)
        # forward may return a reused workspace buffer — hand back a copy
        return self.network_.forward(X, training=False).copy()

    def predict_proba(self, X) -> np.ndarray:
        return softmax(self.decision_function(X), axis=1)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]

    def feature_importances(self) -> np.ndarray:
        """The learned feature-gate values (soft feature-selection weights)."""
        check_is_fitted(self, "network_")
        gate = self.network_.layers[0]
        assert isinstance(gate, FeatureGate)
        return gate.gate_values()
