"""Classical-ML substrate: trees, forests, boosting, neural classifiers,
mixtures, ICA, preprocessing, metrics and splits (replaces scikit-learn /
XGBoost, unavailable offline)."""

from repro.ml.gmm import GaussianMixture, split_domains_by_gmm
from repro.ml.gradient_boosting import GradientBoostingClassifier
from repro.ml.ica import FastICA
from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    macro_f1,
    precision_recall_f1,
)
from repro.ml.mlp import MLPClassifier
from repro.ml.model_selection import (
    cross_val_f1,
    sample_few_shot,
    stratified_kfold_indices,
    train_test_split,
)
from repro.ml.preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    one_hot,
)
from repro.ml.random_forest import RandomForestClassifier
from repro.ml.tabnet import TNetClassifier
from repro.ml.tree import DecisionTreeClassifier, RegressionTree

__all__ = [
    "DecisionTreeClassifier",
    "FastICA",
    "GaussianMixture",
    "GradientBoostingClassifier",
    "LabelEncoder",
    "MLPClassifier",
    "MinMaxScaler",
    "OneHotEncoder",
    "RandomForestClassifier",
    "RegressionTree",
    "StandardScaler",
    "TNetClassifier",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "cross_val_f1",
    "f1_score",
    "macro_f1",
    "one_hot",
    "precision_recall_f1",
    "sample_few_shot",
    "split_domains_by_gmm",
    "stratified_kfold_indices",
    "train_test_split",
]
