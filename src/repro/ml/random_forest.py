"""Random forest classifier (bagged CART trees with feature subsampling).

One of the four downstream network-management models of Table I ("RF").
Supports per-sample weights via weighted bootstrap, which the S&T baseline
uses to up-weight the few target-domain samples.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import (
    Estimator,
    decode_json,
    encode_json,
    pack_estimator,
    register_estimator,
    unpack_estimator,
)
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.errors import ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
    check_X_y,
)


@register_estimator("random_forest")
class RandomForestClassifier(Estimator):
    """Bootstrap-aggregated decision trees with sqrt-feature split sampling."""

    def __init__(
        self,
        *,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state=None,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None

    def state_dict(self) -> dict[str, np.ndarray]:
        check_is_fitted(self, "trees_")
        state = {
            "__meta__": encode_json(
                {"n_features_": self.n_features_, "n_trees": len(self.trees_)}
            ),
            "classes_": np.asarray(self.classes_).copy(),
        }
        for i, tree in enumerate(self.trees_):
            state.update(pack_estimator(tree, prefix=f"tree{i}."))
        return state

    def load_state_dict(self, state) -> "RandomForestClassifier":
        meta = decode_json(state["__meta__"])
        self.n_features_ = meta["n_features_"]
        self.classes_ = np.array(state["classes_"])
        self.trees_ = [
            unpack_estimator(state, prefix=f"tree{i}.")
            for i in range(meta["n_trees"])
        ]
        return self

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            if sample_weight.shape != (n,):
                raise ValidationError("sample_weight must match the number of samples")
            if np.any(sample_weight < 0) or sample_weight.sum() <= 0:
                raise ValidationError("sample_weight must be non-negative with positive sum")
            probs = sample_weight / sample_weight.sum()
        else:
            probs = None
        self.trees_ = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.choice(n, size=n, replace=True, p=probs)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = check_array(X)
        check_consistent_features(X, self.n_features_)
        total = np.zeros((X.shape[0], len(self.classes_)))
        class_index = {label: i for i, label in enumerate(self.classes_)}
        for tree in self.trees_:
            proba = tree.predict_proba(X)
            # trees may have seen a subset of classes on a small bootstrap
            for j, label in enumerate(tree.classes_):
                total[:, class_index[label]] += proba[:, j]
        return total / len(self.trees_)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
