"""Dataset splitting utilities: train/test split, stratified k-fold, few-shot
support sampling (the paper's 1/5/10-samples-per-fault-type protocol)."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.validation import check_random_state, check_X_y


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    stratify: bool = False,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(X, y)`` into train and test partitions.

    With ``stratify=True`` each class contributes proportionally to the test
    split (at least one test sample per class when possible).
    """
    X, y = check_X_y(X, y)
    if not 0.0 < test_size < 1.0:
        raise ValidationError(f"test_size must be in (0, 1), got {test_size}")
    rng = check_random_state(random_state)
    n = X.shape[0]
    if stratify:
        test_idx: list[int] = []
        for label in np.unique(y):
            members = np.where(y == label)[0]
            rng.shuffle(members)
            k = max(1, int(round(test_size * len(members)))) if len(members) > 1 else 0
            test_idx.extend(members[:k].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_idx] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


def stratified_kfold_indices(
    y, *, n_splits: int = 5, random_state=None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return ``(train_idx, test_idx)`` pairs for stratified k-fold CV."""
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValidationError("y must be 1-dimensional")
    if n_splits < 2:
        raise ValidationError("n_splits must be at least 2")
    rng = check_random_state(random_state)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    for label in np.unique(y):
        members = np.where(y == label)[0]
        rng.shuffle(members)
        for i, idx in enumerate(members):
            folds[i % n_splits].append(int(idx))
    splits = []
    all_idx = np.arange(y.shape[0])
    for fold in folds:
        test_idx = np.array(sorted(fold), dtype=np.int64)
        train_idx = np.setdiff1d(all_idx, test_idx)
        splits.append((train_idx, test_idx))
    return splits


def sample_few_shot(
    X,
    y,
    *,
    shots: int,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample ``shots`` examples per class (the paper's few-shot protocol).

    Classes with fewer than ``shots`` samples contribute all of their samples
    (the realistic case for rare faults).  Returns ``(X_few, y_few, idx)``
    where ``idx`` indexes back into the input arrays.
    """
    X, y = check_X_y(X, y)
    if shots < 1:
        raise ValidationError(f"shots must be >= 1, got {shots}")
    rng = check_random_state(random_state)
    chosen: list[int] = []
    for label in np.unique(y):
        members = np.where(y == label)[0]
        rng.shuffle(members)
        chosen.extend(members[:shots].tolist())
    idx = np.array(sorted(chosen), dtype=np.int64)
    return X[idx], y[idx], idx


def cross_val_f1(model_factory, X, y, *, n_splits: int = 5, random_state=None) -> float:
    """Mean macro-F1 over stratified folds; used for the in-domain SrcOnly
    sanity check (§VI-B: >98.1 on 5GC, >94.3 on 5GIPC when no drift)."""
    from repro.ml.metrics import macro_f1

    X, y = check_X_y(X, y)
    scores = []
    for train_idx, test_idx in stratified_kfold_indices(
        y, n_splits=n_splits, random_state=random_state
    ):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        scores.append(macro_f1(y[test_idx], model.predict(X[test_idx])))
    return float(np.mean(scores))
