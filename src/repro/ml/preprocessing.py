"""Preprocessing transformers: scalers and encoders.

The paper normalizes features to [-1, 1] for its own methods
(:class:`MinMaxScaler` with ``feature_range=(-1, 1)``) and uses standard
scaling / one-hot label encoding for the baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import Estimator, register_estimator
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, check_consistent_features, check_is_fitted


@register_estimator("minmax_scaler")
class MinMaxScaler(Estimator):
    """Scale features linearly into ``feature_range`` (default ``(-1, 1)``).

    Constant features map to the midpoint of the range, which keeps the
    transform finite for degenerate telemetry columns (e.g. an interface that
    never changes state in the source domain).
    """

    _fitted_attr = "data_min_"
    _state_arrays = ("data_min_", "data_max_")

    def __init__(self, feature_range: tuple[float, float] = (-1.0, 1.0)) -> None:
        lo, hi = feature_range
        if not lo < hi:
            raise ValidationError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = (float(lo), float(hi))
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def _compute_scale(self) -> None:
        span = self.data_max_ - self.data_min_
        # spans so small that dividing would overflow count as constant
        usable = span > (self.feature_range[1] - self.feature_range[0]) / np.finfo(np.float64).max
        self._scale = np.where(
            usable,
            (self.feature_range[1] - self.feature_range[0]) / np.where(usable, span, 1.0),
            0.0,
        )

    def _post_load(self, meta: dict) -> None:
        self._compute_scale()

    def fit(self, X) -> "MinMaxScaler":
        X = check_array(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        self._compute_scale()
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "data_min_")
        X = check_array(X)
        check_consistent_features(X, self.data_min_.shape[0])
        lo, hi = self.feature_range
        out = lo + (X - self.data_min_) * self._scale
        constant = self._scale == 0.0
        if np.any(constant):
            out[:, constant] = (lo + hi) / 2.0
        return out

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Map scaled values back to the original feature units."""
        check_is_fitted(self, "data_min_")
        X = check_array(X)
        check_consistent_features(X, self.data_min_.shape[0])
        lo, _hi = self.feature_range
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.where(self._scale > 0, (X - lo) / np.where(self._scale > 0, self._scale, 1.0), 0.0)
        out = inv + self.data_min_
        constant = self._scale == 0.0
        if np.any(constant):
            out[:, constant] = self.data_min_[constant]
        return out


@register_estimator("standard_scaler")
class StandardScaler(Estimator):
    """Zero-mean unit-variance scaling; constant features map to zero."""

    _fitted_attr = "mean_"
    _state_arrays = ("mean_", "scale_")

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "mean_")
        X = check_array(X)
        check_consistent_features(X, self.mean_.shape[0])
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Undo the standardization."""
        check_is_fitted(self, "mean_")
        X = check_array(X)
        check_consistent_features(X, self.mean_.shape[0])
        return X * self.scale_ + self.mean_


@register_estimator("label_encoder")
class LabelEncoder(Estimator):
    """Encode arbitrary hashable labels as contiguous integers."""

    _fitted_attr = "classes_"
    _state_arrays = ("classes_",)

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def _post_load(self, meta: dict) -> None:
        if self.classes_ is not None:
            self._index = {label: i for i, label in enumerate(self.classes_)}

    def fit(self, y) -> "LabelEncoder":
        y = np.asarray(y)
        if y.ndim != 1:
            raise ValidationError("y must be 1-dimensional")
        self.classes_ = np.unique(y)
        self._index = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, y) -> np.ndarray:
        check_is_fitted(self, "classes_")
        y = np.asarray(y)
        try:
            return np.array([self._index[label] for label in y], dtype=np.int64)
        except KeyError as exc:
            raise ValidationError(f"unseen label {exc.args[0]!r}") from exc

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        """Map integer codes back to the original labels."""
        check_is_fitted(self, "classes_")
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValidationError("codes out of range for fitted classes")
        return self.classes_[codes]


@register_estimator("one_hot_encoder")
class OneHotEncoder(Estimator):
    """One-hot encode an integer label vector into a dense matrix."""

    _fitted_attr = "n_classes_"
    _state_scalars = ("n_classes_",)

    def __init__(self) -> None:
        self.n_classes_: int | None = None

    def fit(self, y) -> "OneHotEncoder":
        y = np.asarray(y, dtype=np.int64)
        if y.ndim != 1:
            raise ValidationError("y must be 1-dimensional")
        if y.size == 0:
            raise ValidationError("y must be non-empty")
        if y.min() < 0:
            raise ValidationError("labels must be non-negative integers")
        self.n_classes_ = int(y.max()) + 1
        return self

    def transform(self, y) -> np.ndarray:
        check_is_fitted(self, "n_classes_")
        y = np.asarray(y, dtype=np.int64)
        if y.size and y.max() >= self.n_classes_:
            raise ValidationError(
                f"label {int(y.max())} out of range for {self.n_classes_} classes"
            )
        out = np.zeros((y.shape[0], self.n_classes_), dtype=np.float64)
        out[np.arange(y.shape[0]), y] = 1.0
        return out

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)


def one_hot(y, n_classes: int | None = None) -> np.ndarray:
    """Functional one-hot encoding of an integer vector."""
    y = np.asarray(y, dtype=np.int64)
    if n_classes is None:
        n_classes = int(y.max()) + 1 if y.size else 0
    out = np.zeros((y.shape[0], n_classes), dtype=np.float64)
    out[np.arange(y.shape[0]), y] = 1.0
    return out
