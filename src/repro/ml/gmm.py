"""Gaussian mixture model fit by expectation-maximization.

The paper uses GMM clustering to split the 5GIPC dataset into source/target
domains (two clusters for Table I, three clusters for Table III).  Diagonal
covariances keep the model stable on wide telemetry matrices.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import Estimator, register_estimator
from repro.utils.errors import ConvergenceError, ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
)

_LOG2PI = np.log(2.0 * np.pi)


@register_estimator("gmm")
class GaussianMixture(Estimator):
    """Diagonal-covariance GMM with k-means++-style initialization.

    Parameters
    ----------
    n_components:
        Number of mixture components (clusters).
    max_iter, tol:
        EM iteration budget and log-likelihood convergence tolerance.
    reg_covar:
        Variance floor added to every diagonal entry.
    n_init:
        Number of random restarts; the best log-likelihood wins.
    """

    _fitted_attr = "means_"
    _state_scalars = ("converged_", "lower_bound_")
    _state_arrays = ("weights_", "means_", "variances_")

    def __init__(
        self,
        n_components: int = 2,
        *,
        max_iter: int = 200,
        tol: float = 1e-4,
        reg_covar: float = 1e-6,
        n_init: int = 3,
        random_state=None,
    ) -> None:
        if n_components < 1:
            raise ValidationError("n_components must be >= 1")
        if max_iter < 1:
            raise ValidationError("max_iter must be >= 1")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.n_init = n_init
        self.random_state = random_state
        self.weights_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.converged_: bool = False
        self.lower_bound_: float = -np.inf

    def _init_means(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial means across the data."""
        n = X.shape[0]
        means = [X[rng.integers(n)]]
        for _ in range(1, self.n_components):
            d2 = np.min(
                [np.sum((X - m) ** 2, axis=1) for m in means], axis=0
            )
            total = d2.sum()
            if total <= 0:
                means.append(X[rng.integers(n)])
            else:
                means.append(X[rng.choice(n, p=d2 / total)])
        return np.array(means)

    def _log_prob(self, X: np.ndarray) -> np.ndarray:
        """Per-component log densities, shape (n, k)."""
        diff2 = (X[:, None, :] - self.means_[None, :, :]) ** 2
        logdet = np.sum(np.log(self.variances_), axis=1)
        quad = np.sum(diff2 / self.variances_[None, :, :], axis=2)
        return -0.5 * (X.shape[1] * _LOG2PI + logdet[None, :] + quad)

    def fit(self, X) -> "GaussianMixture":
        X = check_array(X)
        if X.shape[0] < self.n_components:
            raise ValidationError(
                f"need at least {self.n_components} samples, got {X.shape[0]}"
            )
        rng = check_random_state(self.random_state)
        best = None
        for _ in range(self.n_init):
            result = self._fit_once(X, rng)
            if best is None or result[3] > best[3]:
                best = result
        self.weights_, self.means_, self.variances_, self.lower_bound_, self.converged_ = best
        return self

    def _fit_once(self, X: np.ndarray, rng: np.random.Generator):
        n, d = X.shape
        self.means_ = self._init_means(X, rng)
        self.variances_ = np.tile(X.var(axis=0) + self.reg_covar, (self.n_components, 1))
        self.weights_ = np.full(self.n_components, 1.0 / self.n_components)
        prev_ll = -np.inf
        converged = False
        for _ in range(self.max_iter):
            # E step
            log_prob = self._log_prob(X) + np.log(self.weights_)[None, :]
            max_lp = log_prob.max(axis=1, keepdims=True)
            log_norm = max_lp + np.log(np.exp(log_prob - max_lp).sum(axis=1, keepdims=True))
            resp = np.exp(log_prob - log_norm)
            ll = float(log_norm.mean())
            # M step
            nk = resp.sum(axis=0) + 1e-10
            self.weights_ = nk / n
            self.means_ = (resp.T @ X) / nk[:, None]
            diff2 = (X[:, None, :] - self.means_[None, :, :]) ** 2
            self.variances_ = (
                np.einsum("nk,nkd->kd", resp, diff2) / nk[:, None] + self.reg_covar
            )
            if abs(ll - prev_ll) < self.tol:
                converged = True
                break
            prev_ll = ll
        return self.weights_, self.means_, self.variances_, ll, converged

    def predict_proba(self, X) -> np.ndarray:
        """Posterior responsibilities, shape (n, k)."""
        check_is_fitted(self, "means_")
        X = check_array(X)
        check_consistent_features(X, self.means_.shape[1])
        log_prob = self._log_prob(X) + np.log(self.weights_)[None, :]
        max_lp = log_prob.max(axis=1, keepdims=True)
        p = np.exp(log_prob - max_lp)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        """Hard cluster assignments."""
        return np.argmax(self.predict_proba(X), axis=1)

    def score(self, X) -> float:
        """Mean log-likelihood of ``X``."""
        check_is_fitted(self, "means_")
        X = check_array(X)
        log_prob = self._log_prob(X) + np.log(self.weights_)[None, :]
        max_lp = log_prob.max(axis=1, keepdims=True)
        log_norm = max_lp + np.log(np.exp(log_prob - max_lp).sum(axis=1, keepdims=True))
        return float(log_norm.mean())

    def sample(self, n_samples: int, *, random_state=None) -> tuple[np.ndarray, np.ndarray]:
        """Draw samples; returns ``(X, component_labels)``."""
        check_is_fitted(self, "means_")
        if n_samples < 1:
            raise ValidationError("n_samples must be >= 1")
        rng = check_random_state(random_state)
        comps = rng.choice(self.n_components, size=n_samples, p=self.weights_)
        noise = rng.standard_normal((n_samples, self.means_.shape[1]))
        X = self.means_[comps] + noise * np.sqrt(self.variances_[comps])
        return X, comps


def split_domains_by_gmm(
    X: np.ndarray,
    *,
    n_domains: int = 2,
    random_state=None,
) -> list[np.ndarray]:
    """Partition sample indices into domains by GMM cluster size (descending).

    Reproduces the paper's 5GIPC protocol: the largest cluster is the source
    domain, smaller clusters are target domains.  Raises
    :class:`ConvergenceError` if any cluster comes back empty.
    """
    gmm = GaussianMixture(n_components=n_domains, random_state=random_state)
    gmm.fit(X)
    labels = gmm.predict(check_array(X))
    groups = [np.where(labels == c)[0] for c in range(n_domains)]
    if any(len(g) == 0 for g in groups):
        raise ConvergenceError("GMM produced an empty cluster; try another seed")
    groups.sort(key=len, reverse=True)
    return groups
