"""Versioned artifact lineage: publish → promote → rollback as pointer flips.

The adaptation loop keeps every generation of a tenant's adapter on disk and
moves a single *active pointer* between them::

    <root>/<tenant>.npz                      active pointer (symlink, or copy
                                             where symlinks are unavailable)
    <root>/versions/<tenant>-gen<G>-<hash12>.npz   immutable version bundles
    <root>/<tenant>.lineage.json             lineage index (this module's state)

Version bundles are written once by :meth:`ArtifactLineage.publish` and never
rewritten afterwards; :meth:`promote` and :meth:`rollback` only flip the
pointer and update the index, so a rollback restores the *identical bytes*
the previous plan was compiled from — bit-exact by construction.  The
pointer flip is atomic (temp link + ``os.replace``) and changes the
pointer's ``(mtime_ns, size)`` stat, which is exactly the trigger the
serving daemon's :class:`~repro.serve.registry.PlanCache` watches for its
sha256-validated hot reload: promoting or rolling back a tenant takes
effect on the next request without a daemon restart.

Each version carries a lineage block in its artifact manifest
(``parent_hash`` / ``generation`` / ``lifecycle_state``; see
:func:`repro.core.artifacts.save_artifact`) and mirrors it in the JSON
index.  Lifecycle states follow the adaptation state machine:

``candidate``
    freshly published by the controller, not yet scored against traffic
``shadow``
    being scored concurrently with the incumbent (serve shadow mode)
``active``
    the version the pointer resolves to — what live traffic is scored on
``retired``
    was active (superseded or rolled back) or aborted in shadow
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.core.artifacts import (
    LIFECYCLE_STATES,
    LoadedArtifact,
    load_artifact,
    save_artifact,
)
from repro.utils.errors import ArtifactError

__all__ = ["ArtifactLineage", "LineageVersion", "LINEAGE_SCHEMA"]

LINEAGE_SCHEMA = "repro.lineage/v1"

#: tenant names are path components; same alphabet the serve registry enforces
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class LineageVersion:
    """One published generation of a tenant's adapter."""

    tenant: str
    content_hash: str
    file: str
    parent_hash: str | None
    generation: int
    lifecycle_state: str

    def to_json(self) -> dict:
        return {
            "content_hash": self.content_hash,
            "file": self.file,
            "parent_hash": self.parent_hash,
            "generation": self.generation,
            "lifecycle_state": self.lifecycle_state,
        }

    @classmethod
    def from_json(cls, tenant: str, doc: dict) -> "LineageVersion":
        return cls(
            tenant=tenant,
            content_hash=doc["content_hash"],
            file=doc["file"],
            parent_hash=doc.get("parent_hash"),
            generation=int(doc.get("generation", 0)),
            lifecycle_state=doc.get("lifecycle_state", "candidate"),
        )


class ArtifactLineage:
    """Lineage index + pointer management over an artifact store root.

    The root is the same directory a :class:`~repro.serve.registry.PlanCache`
    serves from: ``<root>/<tenant>.npz`` stays the single path the daemon
    knows about, and this class redirects it between immutable version
    bundles under ``<root>/versions/``.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._lock = threading.RLock()

    # -- paths ---------------------------------------------------------------

    def _check_tenant(self, tenant: str) -> str:
        if not _TENANT_NAME.match(tenant or ""):
            raise ArtifactError(
                f"invalid tenant name {tenant!r} (letters, digits, '._-' "
                f"only, must not start with a separator)"
            )
        return tenant

    def pointer_path(self, tenant: str) -> Path:
        """The active-pointer path the serving daemon scores from."""
        return self.root / f"{self._check_tenant(tenant)}.npz"

    def versions_dir(self) -> Path:
        return self.root / "versions"

    def index_path(self, tenant: str) -> Path:
        return self.root / f"{self._check_tenant(tenant)}.lineage.json"

    def version_path(self, version: LineageVersion) -> Path:
        return self.versions_dir() / version.file

    # -- index I/O -----------------------------------------------------------

    def _read_index(self, tenant: str) -> dict:
        path = self.index_path(tenant)
        if not path.exists():
            return {
                "schema": LINEAGE_SCHEMA,
                "tenant": tenant,
                "active": None,
                "previous": None,
                "versions": [],
            }
        doc = json.loads(path.read_text())
        if doc.get("schema") != LINEAGE_SCHEMA:
            raise ArtifactError(
                f"unknown lineage schema {doc.get('schema')!r} in {path}"
            )
        return doc

    def _write_index(self, tenant: str, doc: dict) -> None:
        path = self.index_path(tenant)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    @staticmethod
    def _find(doc: dict, content_hash: str) -> dict:
        for entry in doc["versions"]:
            if entry["content_hash"] == content_hash:
                return entry
        raise ArtifactError(
            f"no lineage version with content hash {content_hash!r}"
        )

    # -- pointer flip --------------------------------------------------------

    def _flip_pointer(self, tenant: str, version_path: Path) -> None:
        """Atomically repoint ``<root>/<tenant>.npz`` at a version bundle."""
        pointer = self.pointer_path(tenant)
        tmp = self.root / f".{tenant}.npz.flip"
        if tmp.exists() or tmp.is_symlink():
            tmp.unlink()
        target = os.path.relpath(version_path, self.root)
        try:
            os.symlink(target, tmp)
        except OSError:
            # no symlink support: fall back to an (atomic) copy replace;
            # copy2 preserves the version's mtime so the serve cache still
            # sees a stat change on every flip
            shutil.copy2(version_path, tmp)
        os.replace(tmp, pointer)
        sidecar = version_path.with_suffix(version_path.suffix + ".manifest.json")
        if sidecar.exists():
            pointer_sidecar = pointer.with_suffix(pointer.suffix + ".manifest.json")
            shutil.copyfile(sidecar, pointer_sidecar)

    # -- public surface ------------------------------------------------------

    def publish(self, tenant: str, estimator, *, provenance=None, monitor=None,
                parent: str | None = "active",
                state: str = "candidate") -> LineageVersion:
        """Write a new immutable version bundle and record it in the index.

        ``parent="active"`` (the default) chains the new version onto the
        current active generation; pass an explicit content hash to chain
        elsewhere, or None for a root (generation 0) version.  ``state``
        is the initial lifecycle state; ``state="active"`` additionally
        flips the pointer — the way a tenant's generation 0 is seeded.
        """
        self._check_tenant(tenant)
        if state not in LIFECYCLE_STATES:
            raise ArtifactError(
                f"unknown lifecycle_state {state!r} "
                f"(expected one of {', '.join(LIFECYCLE_STATES)})"
            )
        with self._lock:
            doc = self._read_index(tenant)
            if parent == "active":
                parent_hash = doc.get("active")
            else:
                parent_hash = parent
            generation = 0
            if parent_hash is not None:
                generation = int(self._find(doc, parent_hash)["generation"]) + 1
            lineage = {
                "parent_hash": parent_hash,
                "generation": generation,
                "lifecycle_state": state,
            }
            # the content hash covers array payloads only, so it can name
            # the file before the bundle (whose manifest repeats it) exists
            from repro.core.artifacts import _content_hash
            from repro.core.estimator import pack_estimator

            content_hash = _content_hash(pack_estimator(estimator))
            file_name = f"{tenant}-gen{generation}-{content_hash[:12]}.npz"
            version_path = self.versions_dir() / file_name
            save_artifact(
                estimator, version_path,
                provenance=provenance, monitor=monitor, lineage=lineage,
            )
            version = LineageVersion(
                tenant=tenant,
                content_hash=content_hash,
                file=file_name,
                parent_hash=parent_hash,
                generation=generation,
                lifecycle_state=state,
            )
            doc["versions"] = [e for e in doc["versions"]
                               if e["content_hash"] != content_hash]
            doc["versions"].append(version.to_json())
            if state == "active":
                doc["previous"] = doc.get("active")
                doc["active"] = content_hash
                self._flip_pointer(tenant, version_path)
            self._write_index(tenant, doc)
            return version

    def promote(self, tenant: str, content_hash: str | None = None) -> LineageVersion:
        """Make a version active: pure pointer flip, no bundle rewrite.

        Defaults to the most recently published candidate/shadow version.
        The incumbent (if any) is retired and remembered as ``previous``
        so :meth:`rollback` can undo exactly this promotion.
        """
        with self._lock:
            doc = self._read_index(tenant)
            if content_hash is None:
                pending = [e for e in doc["versions"]
                           if e["lifecycle_state"] in ("candidate", "shadow")]
                if not pending:
                    raise ArtifactError(
                        f"tenant {tenant!r} has no candidate/shadow version "
                        f"to promote"
                    )
                entry = pending[-1]
            else:
                entry = self._find(doc, content_hash)
            if entry["content_hash"] == doc.get("active"):
                return LineageVersion.from_json(tenant, entry)
            incumbent = doc.get("active")
            if incumbent is not None:
                self._find(doc, incumbent)["lifecycle_state"] = "retired"
            entry["lifecycle_state"] = "active"
            doc["previous"] = incumbent
            doc["active"] = entry["content_hash"]
            version = LineageVersion.from_json(tenant, entry)
            self._flip_pointer(tenant, self.version_path(version))
            self._write_index(tenant, doc)
            return version

    def rollback(self, tenant: str) -> LineageVersion:
        """Undo the last promotion: flip the pointer back to ``previous``.

        The demoted version is retired and becomes the new ``previous``,
        so a second rollback rolls *forward* again (ping-pong semantics —
        the two most recent generations stay one command apart).
        """
        with self._lock:
            doc = self._read_index(tenant)
            previous = doc.get("previous")
            if previous is None:
                raise ArtifactError(
                    f"tenant {tenant!r} has no previous version to roll "
                    f"back to"
                )
            entry = self._find(doc, previous)
            demoted = doc.get("active")
            if demoted is not None:
                self._find(doc, demoted)["lifecycle_state"] = "retired"
            entry["lifecycle_state"] = "active"
            doc["previous"] = demoted
            doc["active"] = entry["content_hash"]
            version = LineageVersion.from_json(tenant, entry)
            self._flip_pointer(tenant, self.version_path(version))
            self._write_index(tenant, doc)
            return version

    def mark(self, tenant: str, content_hash: str, state: str) -> LineageVersion:
        """Set a version's lifecycle state (e.g. candidate → shadow)."""
        if state not in LIFECYCLE_STATES:
            raise ArtifactError(
                f"unknown lifecycle_state {state!r} "
                f"(expected one of {', '.join(LIFECYCLE_STATES)})"
            )
        with self._lock:
            doc = self._read_index(tenant)
            entry = self._find(doc, content_hash)
            entry["lifecycle_state"] = state
            self._write_index(tenant, doc)
            return LineageVersion.from_json(tenant, entry)

    def active(self, tenant: str) -> LineageVersion | None:
        """The version the pointer currently resolves to (None = unmanaged)."""
        with self._lock:
            doc = self._read_index(tenant)
            if doc.get("active") is None:
                return None
            return LineageVersion.from_json(tenant, self._find(doc, doc["active"]))

    def previous(self, tenant: str) -> LineageVersion | None:
        """The version :meth:`rollback` would restore (None = nothing to undo)."""
        with self._lock:
            doc = self._read_index(tenant)
            if doc.get("previous") is None:
                return None
            return LineageVersion.from_json(
                tenant, self._find(doc, doc["previous"])
            )

    def history(self, tenant: str) -> list[LineageVersion]:
        """Every published version in publish order."""
        with self._lock:
            doc = self._read_index(tenant)
            return [LineageVersion.from_json(tenant, e) for e in doc["versions"]]

    def tenants(self) -> list[str]:
        """Every tenant with a lineage index under the root."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name[: -len(".lineage.json")]
            for p in self.root.glob("*.lineage.json")
        )

    def load(self, tenant: str,
             content_hash: str | None = None) -> LoadedArtifact:
        """Restore a version (default: the active one) with hash validation."""
        with self._lock:
            if content_hash is None:
                return load_artifact(self.pointer_path(tenant))
            doc = self._read_index(tenant)
            version = LineageVersion.from_json(
                tenant, self._find(doc, content_hash)
            )
            return load_artifact(self.version_path(version))
