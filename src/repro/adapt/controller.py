"""Alarm-driven adaptation controller: the closed loop around the pipeline.

:class:`AdaptationController` automates the paper's §VI-F refresh policy as
a state machine over a fitted :class:`~repro.core.pipeline.FSGANPipeline`::

    WATCHING ──drift.alarm──▶ ACCUMULATING ──min_shots──▶ REDISCOVERING
        ▲                                                      │ warm FS
        │                                                      ▼
    PROMOTED ◀──verdict──── SHADOW ◀──publish candidate── REFITTING

* **WATCHING** — every observed batch feeds a
  :class:`~repro.obs.drift.FeatureDriftTracker` referenced on the
  pipeline's scaled source; the controller also subscribes to
  edge-triggered ``drift.alarm`` events on the process event log, so an
  external detector (a serve-side tracker or a
  :class:`~repro.core.monitor.DriftMonitor`) can trip the loop too.
* **ACCUMULATING** — post-alarm batches are treated as target-domain
  shots and collected into a bounded :class:`ShotBuffer` until
  ``min_shots`` are available (the few-shot budget of the paper).
* **REDISCOVERING** — FS re-runs *warm* through
  :meth:`FSGANPipeline.rediscover_fs`, seeded by the incumbent
  separator's persisted ``warm_state_`` (priors + CI-statistics cache).
* **REFITTING** — the cGAN adapter is retrained for the new variant set
  (:meth:`FSGANPipeline.refit_reconstruction`); the downstream model is
  never touched.
* **SHADOW** — the refit pipeline is published as a *candidate* version
  in the :class:`~repro.adapt.lineage.ArtifactLineage` and scored against
  the incumbent: through the serving daemon's shadow mode when one is
  attached, else in-process on subsequent observed batches.
* **PROMOTED** — the candidate won its agreement window: the lineage
  pointer flips, the drift tracker re-references on the accumulated
  target window (so the *next* hop — the paper's Target_1 → Target_2
  regime — is detected relative to the domain just adapted to), and the
  loop re-arms to WATCHING.  An aborted shadow retires the candidate and
  re-arms without flipping anything.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.adapt.shadow import ShadowEvaluator, ShadowPolicy
from repro.obs.drift import FeatureDriftTracker
from repro.obs.export import get_event_log
from repro.obs.metrics import get_metrics
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array

__all__ = ["AdaptationConfig", "AdaptationController", "ShotBuffer",
           "STATES"]

#: lifecycle states in transition order
STATES = ("WATCHING", "ACCUMULATING", "REDISCOVERING", "REFITTING",
          "SHADOW", "PROMOTED")


class ShotBuffer:
    """Bounded FIFO of target-domain rows (the few-shot accumulation buffer).

    Holds at most ``capacity`` rows; overflowing drops the *oldest* rows so
    the buffer always contains the most recent post-alarm traffic.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValidationError("shot buffer capacity must be >= 1")
        self.capacity = int(capacity)
        self._batches: deque[np.ndarray] = deque()
        self._rows = 0

    @property
    def count(self) -> int:
        return self._rows

    def add(self, X) -> int:
        """Append a batch of rows; returns the buffered row count."""
        X = np.array(np.atleast_2d(np.asarray(X, dtype=np.float64)), copy=True)
        if X.shape[0] == 0:
            return self._rows
        self._batches.append(X)
        self._rows += X.shape[0]
        while self._rows > self.capacity:
            head = self._batches[0]
            excess = self._rows - self.capacity
            if head.shape[0] <= excess:
                self._batches.popleft()
                self._rows -= head.shape[0]
            else:
                self._batches[0] = head[excess:]
                self._rows -= excess
        return self._rows

    def matrix(self) -> np.ndarray:
        """The buffered rows as one matrix (oldest first)."""
        if not self._batches:
            raise ValidationError("shot buffer is empty")
        return np.vstack(list(self._batches))

    def clear(self) -> None:
        self._batches.clear()
        self._rows = 0


@dataclass(frozen=True)
class AdaptationConfig:
    """Tunables of one adaptation loop; defaults suit tests and smoke runs."""

    #: target shots required before the re-discovery/refit fires
    min_shots: int = 32
    #: bound of the shot buffer (rows)
    shot_capacity: int = 256
    #: kwargs of the controller-owned FeatureDriftTracker
    #: (``psi_threshold`` / ``min_rows`` / ``window_rows`` / ``n_bins``)
    drift_options: dict = field(default_factory=dict)
    #: shadow promotion/abort thresholds
    policy: ShadowPolicy = field(default_factory=ShadowPolicy)
    #: MC draws of in-process shadow plans (standalone mode)
    n_draws: int = 1
    #: promote automatically on a winning shadow verdict (False leaves the
    #: candidate in state ``shadow`` for a manual ``repro adapt promote``)
    auto_promote: bool = True
    #: also react to external ``drift.alarm`` events on the event log
    subscribe_alarms: bool = True


class AdaptationController:
    """State machine driving detect → re-discover → refit → roll out.

    Parameters
    ----------
    pipeline:
        A fitted :class:`FSGANPipeline` **with its training cache intact**
        (refitting needs the scaled source matrix).
    lineage:
        The :class:`~repro.adapt.lineage.ArtifactLineage` versions are
        published to.  Generation 0 (the incumbent) is seeded from the
        pipeline on construction when the tenant has no active version.
    tenant:
        Lineage/daemon tenant name.
    config:
        An :class:`AdaptationConfig`; None uses the defaults.
    daemon:
        Optional running :class:`~repro.serve.daemon.ServeDaemon` over the
        same lineage root.  When given, shadow scoring runs inside the
        daemon on live traffic; when None, the controller shadow-scores
        in-process on the batches it observes.
    """

    def __init__(self, pipeline, lineage, tenant: str, config=None, *,
                 daemon=None) -> None:
        if pipeline._fit_cache is None:
            raise ValidationError(
                "AdaptationController needs a pipeline with its training "
                "cache (refit_adapter must be available)"
            )
        self.pipeline = pipeline
        self.lineage = lineage
        self.tenant = str(tenant)
        self.config = config or AdaptationConfig()
        self.daemon = daemon
        self.state = "WATCHING"
        self.batches = 0
        self.generation = 0
        self.shots = ShotBuffer(self.config.shot_capacity)
        self.timeline: list[dict] = []
        self.timings: dict = {}
        self.variant_diff: dict | None = None
        self.last_shots_: np.ndarray | None = None
        self.alarm_batch: int | None = None
        self.alarm_fields: dict | None = None
        self._alarm_time: float | None = None
        self._external_alarm: dict | None = None
        self._candidate_hash: str | None = None
        self._shadow_eval: ShadowEvaluator | None = None
        self._incumbent_plan = None
        self._candidate_plan = None
        self._subscribed_log = None
        self._make_tracker(self._source_reference())
        active = lineage.active(self.tenant)
        if active is None:
            active = lineage.publish(
                self.tenant, pipeline,
                provenance={"adapt": {"seeded_by": "controller"}},
                parent=None, state="active",
            )
        self.generation = active.generation
        if self.config.subscribe_alarms:
            self._subscribed_log = get_event_log()
            self._subscribed_log.subscribe(self._on_event, kinds=("drift.alarm",))

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Detach the event-log subscription (idempotent)."""
        if self._subscribed_log is not None:
            self._subscribed_log.unsubscribe(self._on_event)
            self._subscribed_log = None

    def __enter__(self) -> "AdaptationController":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- drift plumbing ------------------------------------------------------

    def _source_reference(self) -> np.ndarray:
        cache = self.pipeline._fit_cache
        if cache is not None:
            return cache[0]
        return self.pipeline.drift_reference_

    def _make_tracker(self, reference) -> None:
        options = {"min_rows": 64, "name": "adapt"}
        options.update(self.config.drift_options)
        self.tracker = FeatureDriftTracker(reference, **options)

    def _on_event(self, kind: str, fields: dict) -> None:
        # edge-triggered external alarm (serve tracker / DriftMonitor);
        # our own tracker's events come back through this subscription too,
        # but those are already handled via its update() return value
        if fields.get("source") != self.tracker.name:
            self._external_alarm = dict(fields)

    # -- state machine -------------------------------------------------------

    def _set_state(self, state: str, **fields) -> None:
        self.state = state
        entry = {"state": state, "batch": self.batches,
                 "time": time.perf_counter(), **fields}
        self.timeline.append(entry)
        registry = get_metrics()
        if registry.enabled:
            registry.gauge("adapt.state", tenant=self.tenant).set(
                STATES.index(state)
            )
        get_event_log().emit(
            "adapt.state", tenant=self.tenant, state=state,
            batch=self.batches, **fields,
        )

    def observe(self, X) -> str:
        """Feed one live batch (raw target-domain rows); returns the state."""
        X = check_array(X)
        self.batches += 1
        scores = self.tracker.update(self.pipeline.scaler_.transform(X))
        if self.state == "PROMOTED":
            # transient: the post-promotion batch re-arms the loop
            self._set_state("WATCHING")
        if self.state == "WATCHING":
            alarmed = bool(scores and scores["alarmed"])
            if alarmed or self._external_alarm is not None:
                self.alarm_batch = self.batches
                self._alarm_time = time.perf_counter()
                self.alarm_fields = (
                    self._external_alarm
                    or {"source": self.tracker.name,
                        "psi_max": scores["psi_max"] if scores else None}
                )
                self._external_alarm = None
                self._set_state("ACCUMULATING", source=self.alarm_fields.get("source"))
                self.shots.add(X)
        elif self.state == "ACCUMULATING":
            self.shots.add(X)
            if self.shots.count >= self.config.min_shots:
                self._adapt()
        elif self.state == "SHADOW":
            self._shadow_step(X)
        return self.state

    # -- re-discovery / refit ------------------------------------------------

    def _adapt(self) -> None:
        pipeline = self.pipeline
        shots = self.shots.matrix()
        # snapshot for post-hoc analysis (the bench's cold-rediscovery
        # comparison re-runs discovery on exactly these rows)
        self.last_shots_ = shots
        self._set_state("REDISCOVERING", shots=int(shots.shape[0]))
        if self.daemon is None:
            # in-process shadow mode compares against the incumbent as it
            # was *before* this refit: snapshot its compiled plan now
            self._incumbent_plan = pipeline.compile(n_draws=self.config.n_draws)
        old_variant = set(int(j) for j in pipeline.separator_.variant_indices_)
        warm = pipeline.separator_.warm_state_
        t0 = time.perf_counter()
        pipeline.rediscover_fs(shots)
        rediscover_seconds = time.perf_counter() - t0
        new_variant = set(int(j) for j in pipeline.separator_.variant_indices_)
        self.variant_diff = {
            "added": sorted(new_variant - old_variant),
            "removed": sorted(old_variant - new_variant),
            "kept": sorted(old_variant & new_variant),
        }
        self.timings["rediscover_seconds"] = rediscover_seconds
        self.timings["rediscover_warm"] = warm is not None

        self._set_state(
            "REFITTING",
            variant_added=len(self.variant_diff["added"]),
            variant_removed=len(self.variant_diff["removed"]),
        )
        t0 = time.perf_counter()
        pipeline.refit_reconstruction()
        self.timings["refit_seconds"] = time.perf_counter() - t0

        parent = self.lineage.active(self.tenant)
        version = self.lineage.publish(
            self.tenant, pipeline,
            provenance={
                "adapt": {
                    "alarm_batch": self.alarm_batch,
                    "alarm_source": (self.alarm_fields or {}).get("source"),
                    "shots": int(shots.shape[0]),
                    "warm": warm is not None,
                    "variant_added": self.variant_diff["added"],
                    "variant_removed": self.variant_diff["removed"],
                }
            },
            parent=parent.content_hash if parent is not None else None,
            state="shadow",
        )
        self._candidate_hash = version.content_hash
        self._shadow_eval = ShadowEvaluator(self.tenant, self.config.policy)
        if self.daemon is not None:
            self.daemon.start_shadow(self.tenant, version.content_hash,
                                     policy=self.config.policy)
        else:
            self._candidate_plan = pipeline.compile(n_draws=self.config.n_draws)
        self._set_state("SHADOW", candidate=version.content_hash,
                        generation=version.generation)

    # -- shadow --------------------------------------------------------------

    def _shadow_step(self, X: np.ndarray) -> None:
        if self.daemon is not None:
            verdict = self.daemon.shadow_verdict(self.tenant)
            if verdict is not None:
                self._finish_shadow(verdict, daemon_handled=True)
            return
        inc, cand = self._incumbent_plan, self._candidate_plan
        inc_merged = np.array(inc.transform(X), copy=True)
        cand_merged = np.array(cand.transform(X), copy=True)
        verdict = self._shadow_eval.observe(
            inc.model.predict_proba(inc_merged),
            cand.model.predict_proba(cand_merged),
            inc_merged[:, inc._var_idx],
            cand_merged[:, cand._var_idx],
        )
        if verdict is not None:
            self._finish_shadow(verdict, daemon_handled=False)

    def _finish_shadow(self, verdict: str, *, daemon_handled: bool) -> None:
        candidate = self._candidate_hash
        if verdict == "promote" and self.config.auto_promote:
            if not daemon_handled:
                self.lineage.promote(self.tenant, candidate)
            active = self.lineage.active(self.tenant)
            self.generation = active.generation if active is not None else 0
            if self._alarm_time is not None:
                self.timings["alarm_to_promotion_seconds"] = (
                    time.perf_counter() - self._alarm_time
                )
            self._set_state("PROMOTED", candidate=candidate,
                            generation=self.generation)
            self._rearm()
        elif verdict == "promote":
            # manual-promotion mode: leave the candidate in state "shadow"
            # for `repro adapt promote`, re-arm the detector
            self._set_state("WATCHING", candidate=candidate,
                            pending="manual_promotion")
            self._rearm(keep_candidate=True)
        else:
            if not daemon_handled:
                self.lineage.mark(self.tenant, candidate, "retired")
            self._set_state("WATCHING", candidate=candidate, aborted=True)
            self._rearm()

    def _rearm(self, *, keep_candidate: bool = False) -> None:
        """Re-reference drift detection on the just-accumulated target window.

        After adapting to Target_1 the loop must detect the *next* domain
        (Target_2) relative to Target_1 — rebuilding the tracker on the
        accumulated shots does exactly that.
        """
        if self.shots.count > 0:
            self._make_tracker(
                self.pipeline.scaler_.transform(self.shots.matrix())
            )
        self.shots.clear()
        self._external_alarm = None
        self._incumbent_plan = None
        self._candidate_plan = None
        self._shadow_eval = None if not keep_candidate else self._shadow_eval
        if not keep_candidate:
            self._candidate_hash = None

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        """One JSON-able snapshot of the loop (CLI ``repro adapt status``)."""
        active = self.lineage.active(self.tenant)
        return {
            "tenant": self.tenant,
            "state": self.state,
            "batches": self.batches,
            "generation": self.generation,
            "shots": self.shots.count,
            "alarm_batch": self.alarm_batch,
            "active": active.content_hash if active is not None else None,
            "candidate": self._candidate_hash,
            "variant_diff": self.variant_diff,
            "timings": dict(self.timings),
            "shadow": (self._shadow_eval.stats()
                       if self._shadow_eval is not None else None),
        }
