"""Closed-loop adaptation lifecycle: lineage, controller, shadow scoring.

The subsystem that turns the repo's one-shot drift mitigation into the
continual loop the paper implies (§VI-F, Table III's sequential targets):

- :mod:`repro.adapt.lineage` — versioned artifact lineage with
  promote/rollback as pure pointer flips;
- :mod:`repro.adapt.controller` — the alarm-driven WATCHING →
  ACCUMULATING → REDISCOVERING → REFITTING → SHADOW → PROMOTED state
  machine;
- :mod:`repro.adapt.shadow` — candidate-vs-incumbent shadow scoring with
  promotion/abort verdicts.
"""

from repro.adapt.controller import (
    AdaptationConfig,
    AdaptationController,
    ShotBuffer,
)
from repro.adapt.lineage import ArtifactLineage, LineageVersion
from repro.adapt.shadow import ShadowEvaluator, ShadowPolicy

__all__ = [
    "AdaptationConfig",
    "AdaptationController",
    "ArtifactLineage",
    "LineageVersion",
    "ShadowEvaluator",
    "ShadowPolicy",
    "ShotBuffer",
]
