"""Shadow scoring: candidate-vs-incumbent divergence with a promotion verdict.

During the SHADOW phase of the adaptation lifecycle, live traffic is scored
on *both* the incumbent plan (whose answers are served) and the candidate
plan (whose answers are only compared).  :class:`ShadowEvaluator` folds each
shadow batch into running divergence statistics, publishes them as metrics,
and applies a :class:`ShadowPolicy` to reach a verdict:

``promote``
    ``agreement_batches`` consecutive batches stayed within
    ``max_disagreement`` (max abs probability difference) — the candidate
    reproduces the incumbent's decisions on live traffic and is safe to
    take over.
``abort``
    a single batch exceeded ``abort_disagreement`` (regression guard), or
    ``max_batches`` shadow batches passed without a promotion — the
    candidate is retired and the incumbent keeps serving.

Metrics (via the process-global registry): the
``adapt.shadow.disagreement`` histogram (per-batch max abs probability
difference), ``adapt.shadow.batches_total`` / ``adapt.shadow.rows_total``
counters, an ``adapt.shadow.agreement_streak`` gauge, and — when the
caller also feeds reconstructed variant-feature blocks — per-feature
``adapt.shadow.psi_delta{feature=j}`` gauges: the PSI of the candidate's
reconstruction distribution against the incumbent's, minus the
incumbent's own drift against the same frozen reference, so a positive
delta isolates divergence the *candidate* introduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.export import get_event_log
from repro.obs.metrics import get_metrics
from repro.obs.sketch import DistributionSketch
from repro.utils.errors import ValidationError

__all__ = ["ShadowEvaluator", "ShadowPolicy"]

#: bounded cardinality for per-feature psi_delta gauges
_MAX_FEATURE_GAUGES = 16


@dataclass(frozen=True)
class ShadowPolicy:
    """Promotion/abort thresholds for one shadow evaluation."""

    #: consecutive agreeing batches required to promote
    agreement_batches: int = 3
    #: per-batch max abs probability difference counting as agreement
    max_disagreement: float = 5e-3
    #: any batch above this aborts immediately (regression guard)
    abort_disagreement: float = 0.5
    #: give up (abort) after this many shadow batches without promotion
    max_batches: int | None = 64

    def __post_init__(self) -> None:
        if self.agreement_batches < 1:
            raise ValidationError("agreement_batches must be >= 1")
        if not 0.0 <= self.max_disagreement:
            raise ValidationError("max_disagreement must be >= 0")
        if self.abort_disagreement < self.max_disagreement:
            raise ValidationError(
                "abort_disagreement must be >= max_disagreement"
            )
        if self.max_batches is not None and self.max_batches < 1:
            raise ValidationError("max_batches must be >= 1 or None")


class ShadowEvaluator:
    """Streaming divergence scorer for one (incumbent, candidate) pair."""

    def __init__(self, tenant: str, policy: ShadowPolicy | None = None,
                 *, n_bins: int = 10) -> None:
        self.tenant = str(tenant)
        self.policy = policy or ShadowPolicy()
        self.n_bins = int(n_bins)
        self.batches = 0
        self.rows = 0
        self.agreement_streak = 0
        self.label_flips = 0
        self.max_abs_diff = 0.0
        self.last_max_abs = 0.0
        self.last_mean_abs = 0.0
        self.verdict: str | None = None
        self._inc_sketch: DistributionSketch | None = None
        self._cand_sketch: DistributionSketch | None = None
        self.psi_delta: np.ndarray | None = None

    def observe(self, incumbent_proba, candidate_proba,
                incumbent_features=None,
                candidate_features=None) -> str | None:
        """Fold one shadow batch in; returns the verdict once reached.

        ``incumbent_proba`` / ``candidate_proba`` are the two plans'
        probability rows for the *same* request rows.  The optional feature
        blocks (both plans' reconstructed variant features for those rows)
        feed the per-feature PSI-delta gauges.
        """
        if self.verdict is not None:
            return self.verdict
        inc = np.asarray(incumbent_proba, dtype=np.float64)
        cand = np.asarray(candidate_proba, dtype=np.float64)
        if inc.shape != cand.shape:
            raise ValidationError(
                f"shadow probability shapes differ: {inc.shape} vs {cand.shape}"
            )
        diff = np.abs(inc - cand)
        max_abs = float(diff.max()) if diff.size else 0.0
        mean_abs = float(diff.mean()) if diff.size else 0.0
        flips = int(np.count_nonzero(
            np.argmax(inc, axis=1) != np.argmax(cand, axis=1)
        )) if inc.ndim == 2 and inc.shape[1] > 1 else 0

        self.batches += 1
        self.rows += int(inc.shape[0])
        self.label_flips += flips
        self.last_max_abs = max_abs
        self.last_mean_abs = mean_abs
        self.max_abs_diff = max(self.max_abs_diff, max_abs)
        if incumbent_features is not None and candidate_features is not None:
            self._update_feature_sketches(incumbent_features, candidate_features)

        policy = self.policy
        if max_abs <= policy.max_disagreement:
            self.agreement_streak += 1
        else:
            self.agreement_streak = 0
        self._publish(max_abs, mean_abs)

        if max_abs > policy.abort_disagreement:
            return self._decide("abort", reason="regression")
        if self.agreement_streak >= policy.agreement_batches:
            return self._decide("promote", reason="agreement_window")
        if policy.max_batches is not None and self.batches >= policy.max_batches:
            return self._decide("abort", reason="max_batches")
        return None

    # -- internals -----------------------------------------------------------

    def _update_feature_sketches(self, inc_feats, cand_feats) -> None:
        inc_feats = np.asarray(inc_feats, dtype=np.float64)
        cand_feats = np.asarray(cand_feats, dtype=np.float64)
        if inc_feats.size == 0 or inc_feats.shape != cand_feats.shape:
            return
        if self._inc_sketch is None:
            # freeze the reference on the first batch's incumbent output;
            # both streams then accumulate against the same baseline
            self._inc_sketch = DistributionSketch(inc_feats, n_bins=self.n_bins)
            self._cand_sketch = DistributionSketch(inc_feats, n_bins=self.n_bins)
        self._inc_sketch.update(inc_feats)
        self._cand_sketch.update(cand_feats)
        self.psi_delta = self._cand_sketch.psi() - self._inc_sketch.psi()

    def _publish(self, max_abs: float, mean_abs: float) -> None:
        registry = get_metrics()
        if not registry.enabled:
            return
        tenant = self.tenant
        registry.histogram("adapt.shadow.disagreement", tenant=tenant).observe(
            max_abs
        )
        registry.counter("adapt.shadow.batches_total", tenant=tenant).inc()
        registry.counter("adapt.shadow.rows_total", tenant=tenant).inc(
            int(self.rows)
        )
        registry.gauge("adapt.shadow.agreement_streak", tenant=tenant).set(
            self.agreement_streak
        )
        registry.gauge("adapt.shadow.mean_abs_diff", tenant=tenant).set(
            mean_abs
        )
        if self.psi_delta is not None and self.psi_delta.size:
            worst = np.argsort(self.psi_delta)[::-1][:_MAX_FEATURE_GAUGES]
            for j in worst:
                delta = float(self.psi_delta[j])
                if delta > 0.0:
                    registry.gauge(
                        "adapt.shadow.psi_delta", tenant=tenant, feature=int(j)
                    ).set(delta)

    def _decide(self, verdict: str, *, reason: str) -> str:
        self.verdict = verdict
        get_event_log().emit(
            "adapt.shadow.verdict",
            tenant=self.tenant,
            verdict=verdict,
            reason=reason,
            batches=self.batches,
            rows=self.rows,
            label_flips=self.label_flips,
            max_abs_diff=self.max_abs_diff,
            agreement_streak=self.agreement_streak,
        )
        return verdict

    def stats(self) -> dict:
        return {
            "tenant": self.tenant,
            "batches": self.batches,
            "rows": self.rows,
            "agreement_streak": self.agreement_streak,
            "label_flips": self.label_flips,
            "max_abs_diff": self.max_abs_diff,
            "last_max_abs": self.last_max_abs,
            "last_mean_abs": self.last_mean_abs,
            "verdict": self.verdict,
        }
