"""Shared utilities: typed errors, validation helpers, logging."""

from repro.utils.errors import (
    ConfigurationError,
    ConvergenceError,
    GraphError,
    NotFittedError,
    ReproError,
    ValidationError,
)
from repro.utils.validation import (
    ValidatedArray,
    check_array,
    check_consistent_features,
    check_is_fitted,
    check_random_state,
    check_X_y,
    mark_validated,
)

__all__ = [
    "ValidatedArray",
    "mark_validated",
    "ConfigurationError",
    "ConvergenceError",
    "GraphError",
    "NotFittedError",
    "ReproError",
    "ValidationError",
    "check_array",
    "check_consistent_features",
    "check_is_fitted",
    "check_random_state",
    "check_X_y",
]
