"""Typed exceptions used across the :mod:`repro` package.

Raising narrow, documented exception types (instead of bare ``ValueError``
everywhere) lets callers distinguish user input problems from internal
invariant violations, and lets the failure-injection tests assert on exact
error classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """Invalid user-supplied data or argument (wrong shape, dtype, range)."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator method requiring a prior ``fit`` was called before it."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed to converge within its budget."""


class GraphError(ReproError, ValueError):
    """A causal-graph operation received an inconsistent graph."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object contains mutually inconsistent settings."""


class ArtifactError(ReproError, ValueError):
    """A serialized artifact is missing, corrupted, or incompatible.

    Raised by the artifact store when a bundle fails its content hash, uses
    an unknown schema version, or does not match the estimator/pipeline it
    is being loaded into (feature counts, variant-mask shape, model kind).
    """
