"""Input-validation helpers shared by every estimator in the library.

The helpers convert inputs to float64/int arrays, enforce shapes, and raise
:class:`~repro.utils.errors.ValidationError` with actionable messages.  They
mirror the small subset of scikit-learn's ``check_array``/``check_X_y``
behaviour that the library actually needs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.errors import NotFittedError, ValidationError


class ValidatedArray(np.ndarray):
    """An ndarray subclass marking data that already passed :func:`check_array`.

    Hot loops (the PC skeleton, F-node discovery) call validated helpers per
    CI test; re-scanning the same matrix for NaNs thousands of times is pure
    overhead.  Wrapping the matrix once with :func:`mark_validated` lets
    ``check_array`` short-circuit.  Only mark data that really went through
    full validation — slices and views inherit the mark.
    """


def mark_validated(arr: np.ndarray) -> "ValidatedArray":
    """Tag an already-validated array so later ``check_array`` calls are free."""
    return np.asarray(arr).view(ValidatedArray)


def check_array(
    X,
    *,
    name: str = "X",
    ndim: int = 2,
    allow_nan: bool = False,
    min_samples: int = 1,
    dtype=np.float64,
) -> np.ndarray:
    """Validate and convert an array-like to a numpy array.

    Parameters
    ----------
    X:
        Array-like input.
    name:
        Name used in error messages.
    ndim:
        Required dimensionality (1 or 2).
    allow_nan:
        Whether NaN/inf entries are permitted.
    min_samples:
        Minimum number of rows (axis 0).
    dtype:
        Target dtype; ``None`` keeps the input dtype.

    Returns
    -------
    numpy.ndarray
        The validated array (a copy only if conversion was required).
    """
    if isinstance(X, ValidatedArray):
        if (
            X.ndim == ndim
            and X.shape[0] >= min_samples
            and (dtype is None or X.dtype == dtype)
        ):
            return X
    try:
        arr = np.asarray(X, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} could not be converted to a numeric array: {exc}") from exc
    if arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if arr.shape[0] < min_samples:
        raise ValidationError(
            f"{name} must contain at least {min_samples} sample(s), got {arr.shape[0]}"
        )
    if not allow_nan and arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_X_y(X, y, *, allow_nan: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and its label vector together.

    Ensures ``X`` is a finite 2-D float matrix, ``y`` a 1-D vector, and that
    their first dimensions agree.
    """
    X = check_array(X, name="X", ndim=2, allow_nan=allow_nan)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValidationError(f"y must be 1-dimensional, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValidationError(
            f"X and y have inconsistent lengths: {X.shape[0]} vs {y.shape[0]}"
        )
    return X, y


def check_is_fitted(estimator, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` has ``attribute`` set."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() before this method"
        )


def check_consistent_features(X: np.ndarray, n_features: int, *, name: str = "X") -> None:
    """Raise if ``X`` does not have exactly ``n_features`` columns."""
    if X.shape[1] != n_features:
        raise ValidationError(
            f"{name} has {X.shape[1]} features, but the estimator was fitted with {n_features}"
        )


def check_dtype(dtype) -> np.dtype:
    """Validate a compute dtype for the NN substrate (float64 or float32).

    ``float64`` is the exact default; ``float32`` is the fast path whose
    results are tolerance-bounded rather than bit-identical.
    """
    try:
        dt = np.dtype(dtype)
    except TypeError as exc:
        raise ValidationError(f"invalid compute dtype {dtype!r}: {exc}") from exc
    if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ValidationError(
            f"compute dtype must be float64 or float32, got {dt.name}"
        )
    return dt


def check_random_state(seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    ``Generator`` (returned unchanged, so state is shared intentionally).
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise ValidationError(f"Cannot build a random generator from {seed!r}")
