"""The thirteen compared approaches of Table I behind one interface."""

from repro.baselines.base import DAMethod
from repro.baselines.cmt import CMT
from repro.baselines.coral import CORAL, coral_transform
from repro.baselines.dann import DANN
from repro.baselines.fewshot import MatchNet, ProtoNet
from repro.baselines.icd import ICD
from repro.baselines.naive import FineTune, SourceAndTarget, SrcOnly, TarOnly
from repro.baselines.ours import FSGANMethod, FSMethod
from repro.baselines.registry import (
    ALL_METHODS,
    METHOD_GROUPS,
    MODEL_AGNOSTIC_METHODS,
    MODEL_SPECIFIC_METHODS,
    build_method,
)
from repro.baselines.scl import SCL

__all__ = [
    "ALL_METHODS",
    "CMT",
    "CORAL",
    "DAMethod",
    "DANN",
    "FSGANMethod",
    "FSMethod",
    "FineTune",
    "ICD",
    "METHOD_GROUPS",
    "MODEL_AGNOSTIC_METHODS",
    "MODEL_SPECIFIC_METHODS",
    "MatchNet",
    "ProtoNet",
    "SCL",
    "SourceAndTarget",
    "SrcOnly",
    "TarOnly",
    "build_method",
    "coral_transform",
]
