"""DAMethod adapters for the paper's own FS and FS+GAN approaches.

Thin wrappers putting :class:`repro.core.FSModel` and
:class:`repro.core.FSGANPipeline` behind the shared baseline interface so the
Table I runner treats all thirteen approaches uniformly.  Unlike every other
method, these never use the target labels and never train the downstream
model on target samples.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import DAMethod
from repro.core.config import FSConfig, ReconstructionConfig
from repro.core.estimator import param_to_jsonable, register_estimator
from repro.core.pipeline import FSGANPipeline, FSModel
from repro.utils.validation import check_is_fitted


@register_estimator("fs")
class FSMethod(DAMethod):
    """"FS (ours)": invariant-feature training on source data only."""

    uses_target_in_training = False
    _fitted_attr = "inner"
    _state_estimators = ("inner",)

    def get_params(self) -> dict:
        # constructor args live on the wrapped FSModel
        return {"fs_config": param_to_jsonable(self.inner.fs_config)}

    def __init__(self, model_factory, *, fs_config: FSConfig | None = None) -> None:
        self.inner = FSModel(model_factory, fs_config=fs_config)

    def fit(self, X_source, y_source, X_target_few, y_target_few=None):
        if y_target_few is None:
            y_target_few = np.zeros(len(X_target_few), dtype=np.int64)
        X_source, y_source, X_target_few, _ = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        self.inner.fit(X_source, y_source, X_target_few)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self.inner, "model_")
        return self.inner.predict(X)

    @property
    def n_variant_(self) -> int:
        return self.inner.n_variant_


@register_estimator("fs+gan")
class FSGANMethod(DAMethod):
    """"FS+GAN (ours)": full pipeline with GAN variant reconstruction."""

    uses_target_in_training = False
    _fitted_attr = "inner"
    _state_estimators = ("inner",)

    def get_params(self) -> dict:
        # constructor args live on the wrapped FSGANPipeline
        return {
            "fs_config": param_to_jsonable(self.inner.fs_config),
            "reconstruction_config": param_to_jsonable(
                self.inner.reconstruction_config
            ),
            "n_draws": self.n_draws,
            "random_state": param_to_jsonable(self.inner.random_state),
        }

    def __init__(
        self,
        model_factory,
        *,
        fs_config: FSConfig | None = None,
        reconstruction_config: ReconstructionConfig | None = None,
        n_draws: int = 1,
        random_state=None,
    ) -> None:
        self.inner = FSGANPipeline(
            model_factory,
            fs_config=fs_config,
            reconstruction_config=reconstruction_config,
            random_state=random_state,
        )
        self.n_draws = n_draws

    def fit(self, X_source, y_source, X_target_few, y_target_few=None):
        if y_target_few is None:
            y_target_few = np.zeros(len(X_target_few), dtype=np.int64)
        X_source, y_source, X_target_few, _ = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        self.inner.fit(X_source, y_source, X_target_few)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self.inner, "model_")
        return self.inner.predict(X, n_draws=self.n_draws)

    @property
    def n_variant_(self) -> int:
        return self.inner.n_variant_
