"""Registry of the compared approaches, keyed by the names used in Table I.

``build_method(name, model_factory, ...)`` instantiates any approach behind
the shared :class:`~repro.baselines.base.DAMethod` surface.  Model-specific
methods (DANN, SCL, MatchNet, ProtoNet, Fine-Tune) ignore ``model_factory``,
mirroring the paper's protocol where they use their original architectures.
"""

from __future__ import annotations

from repro.baselines.cmt import CMT
from repro.baselines.coral import CORAL
from repro.baselines.dann import DANN
from repro.baselines.fewshot import MatchNet, ProtoNet
from repro.baselines.icd import ICD
from repro.baselines.naive import FineTune, SourceAndTarget, SrcOnly, TarOnly
from repro.baselines.ours import FSGANMethod, FSMethod
from repro.baselines.scl import SCL
from repro.core.config import FSConfig, ReconstructionConfig
from repro.utils.errors import ValidationError

#: Table I rows, grouped as in the paper
METHOD_GROUPS = {
    "causal": ("fs+gan", "fs", "cmt", "icd"),
    "naive": ("srconly", "taronly", "s&t", "fine-tune"),
    "domain_independent": ("coral", "dann", "scl"),
    "few_shot": ("matchnet", "protonet"),
}

MODEL_AGNOSTIC_METHODS = (
    "fs+gan", "fs", "cmt", "icd", "srconly", "taronly", "s&t", "coral",
)
MODEL_SPECIFIC_METHODS = ("fine-tune", "dann", "scl", "matchnet", "protonet")
ALL_METHODS = MODEL_AGNOSTIC_METHODS + MODEL_SPECIFIC_METHODS


def build_method(
    name: str,
    model_factory=None,
    *,
    random_state=None,
    fs_config: FSConfig | None = None,
    reconstruction_config: ReconstructionConfig | None = None,
    **kwargs,
):
    """Instantiate a compared approach by its Table I name.

    ``kwargs`` are forwarded to the method's constructor for fine control
    (e.g. ``epochs`` for the neural baselines).
    """
    key = name.strip().lower()
    if key in MODEL_AGNOSTIC_METHODS and model_factory is None:
        raise ValidationError(f"method {name!r} requires a model_factory")
    if key == "srconly":
        return SrcOnly(model_factory, **kwargs)
    if key == "taronly":
        return TarOnly(model_factory, **kwargs)
    if key == "s&t":
        return SourceAndTarget(model_factory, **kwargs)
    if key == "fine-tune":
        return FineTune(random_state=random_state, **kwargs)
    if key == "coral":
        return CORAL(model_factory, **kwargs)
    if key == "dann":
        return DANN(random_state=random_state, **kwargs)
    if key == "scl":
        return SCL(random_state=random_state, **kwargs)
    if key == "matchnet":
        return MatchNet(random_state=random_state, **kwargs)
    if key == "protonet":
        return ProtoNet(random_state=random_state, **kwargs)
    if key == "cmt":
        return CMT(model_factory, random_state=random_state, **kwargs)
    if key == "icd":
        return ICD(model_factory, **kwargs)
    if key == "fs":
        return FSMethod(model_factory, fs_config=fs_config, **kwargs)
    if key == "fs+gan":
        return FSGANMethod(
            model_factory,
            fs_config=fs_config,
            reconstruction_config=reconstruction_config,
            random_state=random_state,
            **kwargs,
        )
    raise ValidationError(f"unknown method {name!r}; available: {sorted(ALL_METHODS)}")
