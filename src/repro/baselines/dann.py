"""DANN — domain-adversarial neural network (Ganin & Lempitsky, ICML 2015).

A shared feature extractor feeds (a) a label classifier trained on labeled
samples (source + few-shot target) and (b) a domain classifier behind a
gradient-reversal layer trained to distinguish domains on all samples.  The
reversal makes the extractor learn domain-independent features.  Model-
specific (its own network), as in the paper's evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import DAMethod, fit_scaler
from repro.core.estimator import register_estimator
from repro.ml.preprocessing import one_hot
from repro.nn.layers import Dense, GradientReversal, ReLU
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.network import Sequential, iterate_minibatches
from repro.nn.optimizers import Adam
from repro.utils.errors import ValidationError
from repro.utils.validation import check_is_fitted, check_random_state


@register_estimator("dann")
class DANN(DAMethod):
    """Domain-adversarial training with a gradient-reversal layer.

    Parameters
    ----------
    embed_dim:
        Feature-extractor output width.
    lambda_:
        Gradient-reversal strength (trade-off between label accuracy and
        domain confusion).
    """

    model_agnostic = False
    _fitted_attr = "extractor_"
    _state_arrays = ("classes_",)
    _state_networks = ("extractor_", "label_head_", "domain_head_")
    _state_estimators = ("scaler_",)

    def __init__(
        self,
        *,
        hidden_size: int = 128,
        embed_dim: int = 64,
        lambda_: float = 0.3,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        random_state=None,
    ) -> None:
        if lambda_ < 0:
            raise ValidationError("lambda_ must be non-negative")
        self.hidden_size = hidden_size
        self.embed_dim = embed_dim
        self.lambda_ = lambda_
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.random_state = random_state
        self.extractor_: Sequential | None = None
        self.label_head_: Sequential | None = None
        self.domain_head_: Sequential | None = None
        self.classes_: np.ndarray | None = None

    def _extra_meta(self) -> dict:
        return {"n_features": int(self.scaler_.mean_.shape[0])}

    def _prepare_load(self, meta: dict, state: dict) -> None:
        # topology is a pure function of (n_features, classes, hyperparams);
        # weights are overwritten in place right after
        d = int(meta["n_features"])
        k = len(self.classes_)
        build_rng = np.random.default_rng(0)
        seed = lambda: int(build_rng.integers(0, 2**31 - 1))  # noqa: E731
        self.extractor_ = Sequential(
            [
                Dense(d, self.hidden_size, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size, self.embed_dim, random_state=seed()),
                ReLU(),
            ]
        )
        self.label_head_ = Sequential(
            [Dense(self.embed_dim, k, init="glorot_uniform", random_state=seed())]
        )
        self.domain_head_ = Sequential(
            [
                GradientReversal(self.lambda_),
                Dense(self.embed_dim, self.hidden_size // 2, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size // 2, 2, init="glorot_uniform", random_state=seed()),
            ]
        )

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        rng = check_random_state(self.random_state)
        self.scaler_ = fit_scaler(X_source)
        Xs = self.scaler_.transform(X_source)
        Xt = self.scaler_.transform(X_target_few)
        self.classes_, ys_codes = np.unique(
            np.concatenate([y_source, y_target_few]), return_inverse=True
        )
        n_s = Xs.shape[0]
        codes_s, codes_t = ys_codes[:n_s], ys_codes[n_s:]
        k = len(self.classes_)
        d = Xs.shape[1]
        seed = lambda: int(rng.integers(0, 2**31 - 1))  # noqa: E731

        self.extractor_ = Sequential(
            [
                Dense(d, self.hidden_size, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size, self.embed_dim, random_state=seed()),
                ReLU(),
            ]
        )
        self.label_head_ = Sequential(
            [Dense(self.embed_dim, k, init="glorot_uniform", random_state=seed())]
        )
        self.domain_head_ = Sequential(
            [
                GradientReversal(self.lambda_),
                Dense(self.embed_dim, self.hidden_size // 2, random_state=seed()),
                ReLU(),
                Dense(self.hidden_size // 2, 2, init="glorot_uniform", random_state=seed()),
            ]
        )
        layers = (
            self.extractor_.trainable_layers()
            + self.label_head_.trainable_layers()
            + self.domain_head_.trainable_layers()
        )
        opt = Adam(layers, lr=self.lr)
        label_loss = SoftmaxCrossEntropy()
        domain_loss = SoftmaxCrossEntropy()

        X_all = np.vstack([Xs, Xt])
        labels_all = np.concatenate([codes_s, codes_t])
        domains_all = np.concatenate(
            [np.zeros(n_s, dtype=np.int64), np.ones(Xt.shape[0], dtype=np.int64)]
        )
        # up-weight target samples in the label loss so the handful of shots
        # is not drowned by source batches
        w_all = np.concatenate(
            [np.ones(n_s), np.full(Xt.shape[0], max(1.0, 0.1 * n_s / Xt.shape[0]))]
        )
        y_onehot = one_hot(labels_all, k)
        d_onehot = one_hot(domains_all, 2)
        batch = min(self.batch_size, X_all.shape[0])

        for _ in range(self.epochs):
            for idx in iterate_minibatches(X_all.shape[0], batch, rng):
                feats = self.extractor_.forward(X_all[idx], training=True)
                logits = self.label_head_.forward(feats, training=True)
                label_loss.forward(logits, y_onehot[idx])
                g_label = label_loss.backward() * w_all[idx][:, None]
                grad_feats = self.label_head_.backward(g_label)

                d_logits = self.domain_head_.forward(feats, training=True)
                domain_loss.forward(d_logits, d_onehot[idx])
                grad_feats = grad_feats + self.domain_head_.backward(domain_loss.backward())

                self.extractor_.backward(grad_feats)
                opt.step()
                opt.zero_grad()
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "extractor_")
        feats = self.extractor_.forward(self.scaler_.transform(X), training=False)
        logits = self.label_head_.forward(feats, training=False)
        return self.classes_[np.argmax(logits, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "extractor_")
        feats = self.extractor_.forward(self.scaler_.transform(X), training=False)
        return softmax(self.label_head_.forward(feats, training=False), axis=1)

    def embed(self, X) -> np.ndarray:
        """Domain-independent embeddings (for analysis/tests)."""
        check_is_fitted(self, "extractor_")
        # forward returns a reused workspace buffer — hand back a copy
        return self.extractor_.forward(self.scaler_.transform(X), training=False).copy()
