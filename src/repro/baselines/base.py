"""Common interface for all compared domain-adaptation approaches.

Every method — naive baselines, domain-independent representation learning,
few-shot learners, causal approaches and the paper's own FS / FS+GAN —
implements :class:`DAMethod`:

``fit(X_source, y_source, X_target_few, y_target_few)`` then ``predict(X)``
on target-domain test samples.  The experiment runner (Table I) treats them
uniformly through this surface.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import Estimator
from repro.ml.preprocessing import StandardScaler
from repro.utils.errors import ValidationError
from repro.utils.validation import check_array, check_X_y


class DAMethod(Estimator):
    """Abstract base for domain-adaptation methods.

    Every method implements the :class:`~repro.core.estimator.Estimator`
    protocol so a fitted baseline round-trips through the artifact store
    exactly like the paper's own pipeline.
    """

    _param_exclude = ("model_factory",)

    #: whether the method trains the downstream model on target samples
    #: (True for everything except FS / FS+GAN, per §VI-A)
    uses_target_in_training: bool = True
    #: whether the method accepts an arbitrary downstream classifier
    model_agnostic: bool = True

    def fit(self, X_source, y_source, X_target_few, y_target_few) -> "DAMethod":
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _validate(X_source, y_source, X_target_few, y_target_few):
        X_source, y_source = check_X_y(X_source, y_source)
        X_target_few = check_array(X_target_few, name="X_target_few")
        y_target_few = np.asarray(y_target_few)
        if y_target_few.ndim != 1 or y_target_few.shape[0] != X_target_few.shape[0]:
            raise ValidationError("y_target_few must be 1-D and match X_target_few")
        if X_target_few.shape[1] != X_source.shape[1]:
            raise ValidationError("source and target feature counts differ")
        return X_source, y_source, X_target_few, y_target_few


def fit_scaler(X_source, X_target_few=None) -> StandardScaler:
    """Standard scaling fitted on source (optionally pooled with target few).

    The non-FS baselines follow their original works' normalization, which is
    standardization; pooling the handful of target samples changes statistics
    negligibly, so source-only fitting is used throughout.
    """
    return StandardScaler().fit(X_source)
