"""Naive baselines of Table I: SrcOnly, TarOnly, S&T, Fine-Tune."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import DAMethod, fit_scaler
from repro.core.estimator import register_estimator
from repro.ml.mlp import MLPClassifier
from repro.utils.errors import ValidationError
from repro.utils.validation import check_is_fitted


@register_estimator("srconly")
class SrcOnly(DAMethod):
    """Train only on source data; no adaptation.

    The paper's lower anchor: collapses under drift (F1 10.6–22.6 on 5GC)
    despite >98 in-domain cross-validation.
    """

    uses_target_in_training = False
    _fitted_attr = "model_"
    _state_estimators = ("scaler_", "model_")

    def __init__(self, model_factory) -> None:
        if not callable(model_factory):
            raise ValidationError("model_factory must be callable")
        self.model_factory = model_factory
        self.model_ = None

    def fit(self, X_source, y_source, X_target_few=None, y_target_few=None):
        if X_target_few is None:
            X_target_few = X_source[:1]
            y_target_few = y_source[:1]
        X_source, y_source, _, _ = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        self.scaler_ = fit_scaler(X_source)
        self.model_ = self.model_factory()
        self.model_.fit(self.scaler_.transform(X_source), y_source)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "model_")
        return self.model_.predict(self.scaler_.transform(X))


@register_estimator("taronly")
class TarOnly(DAMethod):
    """Train only on the few target samples."""

    _fitted_attr = "model_"
    _state_estimators = ("scaler_", "model_")

    def __init__(self, model_factory) -> None:
        if not callable(model_factory):
            raise ValidationError("model_factory must be callable")
        self.model_factory = model_factory
        self.model_ = None

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        if len(np.unique(y_target_few)) < 2:
            raise ValidationError("TarOnly needs at least two target classes")
        self.scaler_ = fit_scaler(X_target_few)
        self.model_ = self.model_factory()
        self.model_.fit(self.scaler_.transform(X_target_few), y_target_few)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "model_")
        return self.model_.predict(self.scaler_.transform(X))


@register_estimator("s&t")
class SourceAndTarget(DAMethod):
    """S&T: pool source and target samples, up-weighting the target ones.

    ``target_weight_ratio`` sets the total weight mass of the target split
    relative to the source split (0.5 → target counts half as much as all of
    source combined — a strong per-sample boost in the few-shot regime).
    """

    _fitted_attr = "model_"
    _state_estimators = ("scaler_", "model_")

    def __init__(self, model_factory, *, target_weight_ratio: float = 0.5) -> None:
        if not callable(model_factory):
            raise ValidationError("model_factory must be callable")
        if target_weight_ratio <= 0:
            raise ValidationError("target_weight_ratio must be positive")
        self.model_factory = model_factory
        self.target_weight_ratio = target_weight_ratio
        self.model_ = None

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        X = np.vstack([X_source, X_target_few])
        y = np.concatenate([y_source, y_target_few])
        n_s, n_t = X_source.shape[0], X_target_few.shape[0]
        w_t = self.target_weight_ratio * n_s / max(1, n_t)
        weights = np.concatenate([np.ones(n_s), np.full(n_t, w_t)])
        self.scaler_ = fit_scaler(X)
        self.model_ = self.model_factory()
        self.model_.fit(self.scaler_.transform(X), y, sample_weight=weights)
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "model_")
        return self.model_.predict(self.scaler_.transform(X))


@register_estimator("fine-tune")
class FineTune(DAMethod):
    """Pre-train an MLP on source, then fine-tune all parameters on target.

    Model-specific (MLP only, matching §VI-B: "The Fine-Tune approach is only
    applicable to the MLP model ... we re-optimize all the MLP parameters").
    """

    model_agnostic = False
    _fitted_attr = "model_"
    _state_estimators = ("scaler_", "model_")

    def __init__(
        self,
        *,
        hidden_sizes: tuple[int, ...] = (128, 64),
        epochs: int = 40,
        fine_tune_epochs: int = 40,
        random_state=None,
    ) -> None:
        self.hidden_sizes = hidden_sizes
        self.epochs = epochs
        self.fine_tune_epochs = fine_tune_epochs
        self.random_state = random_state
        self.model_ = None

    def fit(self, X_source, y_source, X_target_few, y_target_few):
        X_source, y_source, X_target_few, y_target_few = self._validate(
            X_source, y_source, X_target_few, y_target_few
        )
        self.scaler_ = fit_scaler(X_source)
        self.model_ = MLPClassifier(
            hidden_sizes=self.hidden_sizes,
            epochs=self.epochs,
            random_state=self.random_state,
        )
        self.model_.fit(self.scaler_.transform(X_source), y_source)
        self.model_.fine_tune(
            self.scaler_.transform(X_target_few),
            y_target_few,
            epochs=self.fine_tune_epochs,
        )
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "model_")
        return self.model_.predict(self.scaler_.transform(X))
